"""Differential suite for the incremental delta engine.

``DeltaGraph.materialize()`` promises a snapshot *byte-identical* to a
full ``TemporalGraph`` rebuild at the same cutoff.  This suite enforces
that on hypothesis-generated streams after every random batch — columns,
stream index, CSR structure, degrees, candidate enumeration order, CN /
AA / RA / JC scores, idle times — plus chunking invariance (the same
stream applied in different batch splits yields identical state), pickle
round-trips, batch hygiene (duplicates / self-loops / bad timestamps),
and a dict-of-sets reference triangulation so the delta engine and the
columnar core cannot drift together.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.delta import DeltaGraph
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric
from repro.metrics.candidates import two_hop_pairs
from repro.temporal.activity import node_idle_times

SCORED = ("CN", "AA", "RA", "JC")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def traces(draw, max_nodes=10, max_edges=24):
    """Random streams with sparse ids, duplicate pairs, AND self-loops.

    Unlike the columnar-core suite's strategy, self-loop events are kept:
    ``TemporalGraph.add_edge`` rejects them but ``DeltaGraph.apply`` must
    *skip and count* them, so the raw stream exercises that path.
    """
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    count = draw(st.integers(min_value=1, max_value=max_edges))
    raw = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=count,
            max_size=count,
        ).filter(lambda pairs: any(a != b for a, b in pairs))
    )
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 50, allow_nan=False, allow_infinity=False),
                min_size=len(raw),
                max_size=len(raw),
            )
        )
    )
    # Sparse ids exercise the remap table; duplicates exercise dedup.
    return [(3 * a + 7, 3 * b + 7, t) for (a, b), t in zip(raw, times)]


@st.composite
def chunked_traces(draw):
    """A stream plus random batch boundaries over it."""
    stream = draw(traces())
    cuts = draw(
        st.lists(st.integers(0, len(stream)), max_size=6).map(sorted)
    )
    bounds = [0] + cuts + [len(stream)]
    return stream, [
        stream[a:b] for a, b in zip(bounds, bounds[1:])
    ]


# ---------------------------------------------------------------------------
# The byte-identity oracle
# ---------------------------------------------------------------------------
def rebuilt_snapshot(trace: TemporalGraph) -> Snapshot:
    """A from-scratch snapshot of the same stream, sharing no state."""
    u, v, t = trace.columns()
    clean = TemporalGraph.from_columns(
        u.copy(), v.copy(), t.copy(), validated=True
    )
    return Snapshot(clean, clean.num_edges)


def assert_byte_identical(delta: DeltaGraph) -> None:
    """Materialized snapshot == full rebuild, down to the bytes."""
    snap = delta.materialize()
    ref = rebuilt_snapshot(delta.trace)
    for got, want in zip(snap.trace.columns(), ref.trace.columns()):
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()
    assert snap.node_ids.dtype == ref.node_ids.dtype
    assert np.array_equal(snap.node_ids, ref.node_ids)
    got_ptr, got_idx = snap.csr_structure()
    want_ptr, want_idx = ref.csr_structure()
    assert got_ptr.tobytes() == want_ptr.tobytes()
    assert got_idx.tobytes() == want_idx.tobytes()
    assert snap.degree_array().tobytes() == ref.degree_array().tobytes()
    got_pairs, want_pairs = two_hop_pairs(snap), two_hop_pairs(ref)
    assert got_pairs.dtype == want_pairs.dtype
    assert np.array_equal(got_pairs, want_pairs)
    for name in SCORED:
        got_scores = get_metric(name).fit(snap).score(got_pairs)
        want_scores = get_metric(name).fit(ref).score(want_pairs)
        # tobytes comparison is deliberately stricter than array_equal:
        # it distinguishes -0.0 from 0.0 and would catch NaN smuggling.
        assert got_scores.tobytes() == want_scores.tobytes(), name
    assert (
        node_idle_times(snap).tobytes() == node_idle_times(ref).tobytes()
    )


# ---------------------------------------------------------------------------
# Differential: delta apply vs full rebuild
# ---------------------------------------------------------------------------
class TestByteIdentity:
    @given(chunked_traces())
    @settings(max_examples=60, deadline=None)
    def test_identical_after_every_batch(self, stream_and_chunks):
        _, chunks = stream_and_chunks
        delta = DeltaGraph()
        for chunk in chunks:
            delta.apply(chunk)
            report = delta.audit()
            assert report.ok, report.summary()
            if delta.num_edges:
                assert_byte_identical(delta)

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_warm_start_from_existing_trace(self, stream):
        """Wrapping a pre-built trace then continuing incrementally."""
        half = len(stream) // 2
        prefix = [(u, v, t) for u, v, t in stream[:half] if u != v]
        delta = DeltaGraph(TemporalGraph.from_stream(prefix))
        delta.apply(stream[half:])
        assert delta.audit().ok
        if delta.num_edges:
            assert_byte_identical(delta)

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_delta_backed_scores_match_matrix_path(self, stream):
        """The seeded score tables == the A @ diag(w) @ A path, per pair."""
        delta = DeltaGraph()
        delta.apply(stream)
        if not delta.num_edges:
            return
        snap = delta.materialize()
        ref = rebuilt_snapshot(delta.trace)
        pairs = two_hop_pairs(snap)
        # Also score a shuffled subset: table lookup must not depend on
        # the query order matching the maintained key order.
        subset = pairs[::-1]
        for name in ("CN", "AA", "RA"):
            want = get_metric(name).fit(ref).score(subset)
            got = get_metric(name).fit(snap).score(subset)
            assert got.tobytes() == want.tobytes()


class TestChunkingInvariance:
    @given(chunked_traces())
    @settings(max_examples=60, deadline=None)
    def test_splits_converge_to_identical_state(self, stream_and_chunks):
        stream, chunks = stream_and_chunks
        one_shot = DeltaGraph()
        one_shot.apply(stream)
        single = DeltaGraph()
        for event in stream:
            single.apply([event])
        random_chunks = DeltaGraph()
        for chunk in chunks:
            random_chunks.apply(chunk)
        for other in (single, random_chunks):
            assert np.array_equal(other._node_ids, one_shot._node_ids)
            assert other._cu.tobytes() == one_shot._cu.tobytes()
            assert other._cv.tobytes() == one_shot._cv.tobytes()
            assert other._ct.tobytes() == one_shot._ct.tobytes()
            assert np.array_equal(other._adj_keys, one_shot._adj_keys)
            assert np.array_equal(other._deg, one_shot._deg)
            assert np.array_equal(other._cand_keys, one_shot._cand_keys)
            assert np.array_equal(other._cand_cn, one_shot._cand_cn)
            assert other._last_active.tobytes() == one_shot._last_active.tobytes()
        if one_shot.num_edges:
            for engine in (one_shot, single, random_chunks):
                assert_byte_identical(engine)


# ---------------------------------------------------------------------------
# Reference triangulation: a third, independent implementation
# ---------------------------------------------------------------------------
class TestReferenceTriangulation:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_degrees_and_two_hop_set_match_dict_reference(self, stream):
        delta = DeltaGraph()
        delta.apply(stream)
        adj: dict[int, set[int]] = {}
        for u, v, _ in stream:
            if u == v or (v in adj.get(u, ())):
                continue
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        assert delta.num_nodes == len(adj)
        assert list(delta._node_ids) == sorted(adj)
        for pos, node in enumerate(delta._node_ids.tolist()):
            assert delta._deg[pos] == len(adj[node])
        expected = set()
        cn: dict[tuple[int, int], int] = {}
        for u in adj:
            for w in adj[u]:
                for v in adj[w]:
                    if v > u and v not in adj[u]:
                        expected.add((u, v))
                        cn[(u, v)] = cn.get((u, v), 0) + 1
        if delta.num_edges:
            snap = delta.materialize()
            pairs = two_hop_pairs(snap).tolist()
            assert {tuple(p) for p in pairs} == expected
            # _cand_keys is sorted row-major, exactly the enumeration
            # order, so counts align positionally with the pairs.
            for count, pair in zip(delta._cand_cn.tolist(), pairs):
                assert count == cn[tuple(pair)]


# ---------------------------------------------------------------------------
# Pickle round-trips
# ---------------------------------------------------------------------------
class TestPickle:
    @given(chunked_traces())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_then_continue(self, stream_and_chunks):
        _, chunks = stream_and_chunks
        delta = DeltaGraph()
        for chunk in chunks[: len(chunks) // 2 + 1]:
            delta.apply(chunk)
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.audit().ok
        assert np.array_equal(clone._cand_keys, delta._cand_keys)
        assert np.array_equal(clone._cand_cn, delta._cand_cn)
        for chunk in chunks[len(chunks) // 2 + 1 :]:
            delta.apply(chunk)
            clone.apply(chunk)
        assert clone._ct.tobytes() == delta._ct.tobytes()
        if clone.num_edges:
            assert_byte_identical(clone)


# ---------------------------------------------------------------------------
# Batch hygiene: skipping, counting, and failing atomically
# ---------------------------------------------------------------------------
class TestBatchHygiene:
    def test_report_counts_duplicates_and_self_loops(self):
        delta = DeltaGraph()
        report = delta.apply(
            [(1, 2, 0.0), (3, 3, 0.5), (2, 1, 1.0), (2, 3, 1.5)]
        )
        assert report.applied == 2
        assert report.self_loops == 1
        assert report.duplicates == 1
        assert report.new_nodes == 3
        assert delta.num_edges == 2
        assert delta.audit().ok

    def test_empty_batch_is_a_no_op(self):
        delta = DeltaGraph()
        delta.apply([(1, 2, 0.0)])
        before = delta._ct.tobytes()
        report = delta.apply([])
        assert report.applied == 0
        assert delta._ct.tobytes() == before
        assert delta.audit().ok

    @pytest.mark.parametrize(
        "bad",
        [
            [(1, 2, 5.0), (3, 4, 1.0)],  # out of order within the batch
            [(3, 4, float("nan"))],
            [(3, 4, float("inf"))],
            [(3, 4, -1.0)],
        ],
    )
    def test_bad_batch_rejected_before_any_mutation(self, bad):
        delta = DeltaGraph()
        delta.apply([(1, 2, 2.0), (2, 3, 3.0)])
        columns = delta._ct.tobytes()
        with pytest.raises(ValueError):
            delta.apply(bad)
        assert delta.num_edges == 2
        assert delta._ct.tobytes() == columns
        assert delta.audit().ok
        assert_byte_identical(delta)

    def test_batch_older_than_stream_end_rejected(self):
        delta = DeltaGraph()
        delta.apply([(1, 2, 5.0)])
        with pytest.raises(ValueError, match="non-decreasing"):
            delta.apply([(2, 3, 4.0)])
        assert delta.num_edges == 1

    def test_external_trace_mutation_detected(self):
        delta = DeltaGraph()
        delta.apply([(1, 2, 0.0)])
        delta.trace.add_edge(2, 3, 1.0)
        with pytest.raises(RuntimeError, match="outside the DeltaGraph"):
            delta.apply([(3, 4, 2.0)])
        with pytest.raises(RuntimeError, match="outside the DeltaGraph"):
            delta.materialize()

    def test_empty_engine_cannot_materialize(self):
        with pytest.raises(ValueError, match="empty stream"):
            DeltaGraph().materialize()

    def test_unknown_track_scores_rejected(self):
        with pytest.raises(ValueError, match="untrackable"):
            DeltaGraph(track_scores=("CN", "katz"))

    def test_cn_only_tracking_skips_float_tables(self):
        delta = DeltaGraph(track_scores=("CN",))
        delta.apply([(1, 2, 0.0), (2, 3, 1.0), (3, 4, 2.0)])
        assert delta._scores == {}
        assert delta.audit().ok
        snap = delta.materialize()
        ref = rebuilt_snapshot(delta.trace)
        pairs = two_hop_pairs(snap)
        got = get_metric("CN").fit(snap).score(pairs)
        want = get_metric("CN").fit(ref).score(two_hop_pairs(ref))
        assert got.tobytes() == want.tobytes()
        # AA has no warm table here, so it must fall back to the matrix
        # path — and still agree with the rebuild.
        got_aa = get_metric("AA").fit(snap).score(pairs)
        want_aa = get_metric("AA").fit(ref).score(two_hop_pairs(ref))
        assert got_aa.tobytes() == want_aa.tobytes()
