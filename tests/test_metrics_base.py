"""Tests for the metric registry and shared precomputation cache."""

import numpy as np
import pytest

import repro.metrics  # noqa: F401  (registers all metrics)
from repro.metrics.base import (
    adjacency,
    all_metric_names,
    cached,
    degrees,
    dense_adjacency,
    get_metric,
    matrix_values,
    pairs_to_indices,
    two_hop_matrix,
)

EXPECTED_NAMES = {
    "CN", "JC", "AA", "RA", "BCN", "BAA", "BRA",
    "LP", "SP", "PA", "PPR", "LRW", "Katz_lr", "Katz_sc", "Rescal",
    "WCN", "WAA", "WRA",
}


class TestRegistry:
    def test_all_eighteen_registered(self):
        assert set(all_metric_names()) == EXPECTED_NAMES

    def test_get_metric_returns_fresh_instance(self):
        a = get_metric("CN")
        b = get_metric("CN")
        assert a is not b
        assert a.name == "CN"

    def test_get_metric_kwargs(self):
        katz = get_metric("Katz_lr", beta=0.01, rank=5)
        assert katz.beta == 0.01
        assert katz.rank == 5

    def test_unknown_metric(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("FOO")

    def test_every_metric_declares_strategy(self):
        for name in all_metric_names():
            assert get_metric(name).candidate_strategy in ("two_hop", "all")

    def test_score_before_fit_raises(self):
        metric = get_metric("CN")
        with pytest.raises(RuntimeError, match="fit"):
            metric.score(np.asarray([[0, 1]]))


class TestCache:
    def test_cached_computes_once(self, tiny_snapshot):
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cached(tiny_snapshot, "k", compute) == "value"
        assert cached(tiny_snapshot, "k", compute) == "value"
        assert len(calls) == 1

    def test_shared_blocks_are_cached(self, tiny_snapshot):
        assert adjacency(tiny_snapshot) is adjacency(tiny_snapshot)
        assert dense_adjacency(tiny_snapshot) is dense_adjacency(tiny_snapshot)
        assert two_hop_matrix(tiny_snapshot) is two_hop_matrix(tiny_snapshot)
        assert degrees(tiny_snapshot) is degrees(tiny_snapshot)

    def test_dense_matches_sparse(self, tiny_snapshot):
        assert np.array_equal(
            dense_adjacency(tiny_snapshot), adjacency(tiny_snapshot).toarray()
        )

    def test_two_hop_matrix_counts_paths(self, tiny_snapshot):
        a = dense_adjacency(tiny_snapshot)
        assert np.array_equal(two_hop_matrix(tiny_snapshot).toarray(), a @ a)


class TestIndexHelpers:
    def test_pairs_to_indices_roundtrip(self, tiny_snapshot):
        pairs = np.asarray([[0, 3], [2, 6]], dtype=np.int64)
        rows, cols = pairs_to_indices(tiny_snapshot, pairs)
        nl = tiny_snapshot.node_list
        assert [nl[r] for r in rows] == [0, 2]
        assert [nl[c] for c in cols] == [3, 6]

    def test_matrix_values_extracts(self, tiny_snapshot):
        m = two_hop_matrix(tiny_snapshot)
        pairs = np.asarray([[0, 4], [5, 7]], dtype=np.int64)
        rows, cols = pairs_to_indices(tiny_snapshot, pairs)
        values = matrix_values(m, rows, cols)
        dense = m.toarray()
        assert values[0] == dense[rows[0], cols[0]]
        assert values[1] == dense[rows[1], cols[1]]

    def test_matrix_values_empty(self, tiny_snapshot):
        m = two_hop_matrix(tiny_snapshot)
        empty = np.zeros(0, dtype=np.int64)
        assert matrix_values(m, empty, empty).shape == (0,)
