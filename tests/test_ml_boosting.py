"""Tests for the boosted ensembles (AdaBoost, gradient boosting)."""

import numpy as np
import pytest

from repro.ml import AdaBoostClassifier, GradientBoostingClassifier, accuracy_score
from repro.ml.tree import DecisionTreeClassifier
from tests.test_ml_linear import make_blobs


class TestAdaBoost:
    def test_separable_data(self):
        x, y = make_blobs(sep=2.5, seed=2)
        model = AdaBoostClassifier(n_estimators=20, seed=0).fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.9

    def test_boosting_beats_single_stump(self):
        """A diagonal boundary needs more than one axis-aligned split."""
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(800, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        boosted = AdaBoostClassifier(n_estimators=30, max_depth=1, seed=0).fit(x, y)
        assert accuracy_score(y, boosted.predict(x)) > accuracy_score(
            y, stump.predict(x)
        )

    def test_decision_function_sign_matches_predict(self):
        x, y = make_blobs(seed=3)
        model = AdaBoostClassifier(n_estimators=10, seed=0).fit(x, y)
        scores = model.decision_function(x)
        assert np.array_equal(model.predict(x) == model.classes_[1], scores > 0)

    def test_rejects_multiclass(self):
        x, _ = make_blobs()
        with pytest.raises(ValueError, match="binary"):
            AdaBoostClassifier(seed=0).fit(x, np.arange(len(x)) % 3)

    def test_deterministic(self):
        x, y = make_blobs(n=200, seed=5)
        a = AdaBoostClassifier(n_estimators=8, seed=4).fit(x, y).decision_function(x)
        b = AdaBoostClassifier(n_estimators=8, seed=4).fit(x, y).decision_function(x)
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(RuntimeError):
            AdaBoostClassifier().decision_function(np.zeros((1, 2)))


class TestGradientBoosting:
    def test_separable_data(self):
        x, y = make_blobs(sep=2.5, seed=2)
        model = GradientBoostingClassifier(n_estimators=30, seed=0).fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.9

    def test_more_stages_fit_better(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(600, 2))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0.1).astype(int)
        short = GradientBoostingClassifier(n_estimators=2, seed=0).fit(x, y)
        long = GradientBoostingClassifier(n_estimators=40, seed=0).fit(x, y)
        assert accuracy_score(y, long.predict(x)) >= accuracy_score(
            y, short.predict(x)
        )

    def test_proba_bounds_and_monotonicity(self):
        x, y = make_blobs(seed=4)
        model = GradientBoostingClassifier(n_estimators=15, seed=0).fit(x, y)
        proba = model.predict_proba(x)
        assert (proba >= 0).all() and (proba <= 1).all()
        order = np.argsort(model.decision_function(x))
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_prior_initialisation(self):
        """With no informative features, the score is the class-prior logit."""
        x = np.zeros((100, 2))
        y = np.asarray([1] * 90 + [0] * 10)
        model = GradientBoostingClassifier(n_estimators=5, seed=0).fit(x, y)
        assert model.predict(np.zeros((1, 2)))[0] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        x, _ = make_blobs()
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier(seed=0).fit(x, np.arange(len(x)) % 3)


class TestEnsemblesInPipeline:
    def test_usable_as_classification_predictor(self, facebook_snapshots):
        from repro.classify import ClassificationPredictor, sampled_instance

        g2, g1, g0 = facebook_snapshots[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=1.0)
        for name in ("AdaBoost", "GBT"):
            predictor = ClassificationPredictor(name, theta=1 / 10, seed=0)
            result = predictor.evaluate_instance(inst, rng=0)
            assert result.outcome.k == inst.k
            assert result.metric == name
