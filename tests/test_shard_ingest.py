"""Unit + integration suite for the shard subsystem internals.

Covers the planner (line-aligned boundaries, universal-newline line
counts, gzip whole-file shards), the ``repro-shards v1`` manifest and
its result cache (hit on identical bytes, miss on mutation, never a
stale serve), the gzip edge cases of the parallel path (multi-member
gzip, gzip+plain mixed sets, empty shards), per-shard rejects sidecars
round-tripping through ``read_rejects`` on a manifest, the pool driver's
fault tolerance (retry, rebuild, degrade — merged output unchanged),
``$REPRO_JOBS`` resolution, and the ``repro ingest`` / extended
``repro audit`` CLI.
"""

from __future__ import annotations

import gzip
import json
import os
from concurrent.futures import BrokenExecutor, Future

import numpy as np
import pytest

from repro.__main__ import main
from repro.ingest import IngestPolicy, read_rejects, scan_trace
from repro.ingest.shard import (
    JOBS_ENV_VAR,
    ShardIngestError,
    load_shards,
    manifest_sources,
    plan_shards,
    read_manifest,
    read_manifest_rejects,
    resolve_jobs,
    resolve_shard_bytes,
    scan_shards,
    verify_shard,
    write_manifest,
)
from repro.ingest.shard import worker as shard_worker
from repro.ingest.shard.planner import MIN_SHARD_BYTES, _scan_chunk


def write_trace_text(path, n=200, dirty=True, start=0, t0=0.0):
    lines = ["# repro-trace v2"]
    for i in range(n):
        lines.append(f"{start + i} {start + i + 1} {float(t0 + i)!r}")
    if dirty:
        lines.insert(50, "5 5 3.0")      # self_loop
        lines.append("not an event")     # parse_error
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------
class TestPlanner:
    def test_boundaries_are_line_aligned(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=500, dirty=False)
        specs = plan_shards([path], shard_bytes=256)
        data = path.read_bytes()
        assert specs[0].byte_start == 0
        assert specs[-1].byte_end == len(data)
        for prev, cur in zip(specs, specs[1:]):
            assert prev.byte_end == cur.byte_start
            assert data[cur.byte_start - 1 : cur.byte_start] == b"\n"

    @pytest.mark.parametrize("payload, expected_lines", [
        (b"", 0),
        (b"a\nb\nc\n", 3),
        (b"a\nb\nc", 3),          # no trailing terminator
        (b"a\r\nb\r\nc\r\n", 3),  # CRLF
        (b"a\rb\rc", 3),          # bare CR
        (b"a\r\n\r\nb", 3),       # blank CRLF line in the middle
        (b"\n", 1),
    ])
    def test_line_counts_match_text_mode(self, tmp_path, payload, expected_lines):
        path = tmp_path / "t.txt"
        path.write_bytes(payload)
        with open(path, "rb") as fh:
            _checksum, lines = _scan_chunk(fh, 0, len(payload))
        assert lines == expected_lines
        with open(path, encoding="utf-8") as fh:
            assert lines == sum(1 for _ in fh)

    def test_crlf_never_straddles_a_buffer_seam(self, tmp_path):
        # \r\n pairs positioned around the 1 MiB scan-buffer boundary.
        path = tmp_path / "t.txt"
        payload = b"x" * ((1 << 20) - 1) + b"\r\n" + b"y\r\n"
        path.write_bytes(payload)
        with open(path, "rb") as fh:
            _checksum, lines = _scan_chunk(fh, 0, len(payload))
        assert lines == 2

    def test_start_lines_accumulate(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=300, dirty=False)
        specs = plan_shards([path], shard_bytes=512)
        assert len(specs) > 2
        assert specs[0].start_line == 1
        for prev, cur in zip(specs, specs[1:]):
            assert cur.start_line == prev.start_line + prev.line_count
        total = specs[-1].start_line + specs[-1].line_count - 1
        with open(path, encoding="utf-8") as fh:
            assert total == sum(1 for _ in fh)

    def test_gzip_is_one_whole_file_shard(self, tmp_path):
        plain = write_trace_text(tmp_path / "a.txt", n=50, dirty=False)
        gz = tmp_path / "b.txt.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        specs = plan_shards([plain, gz], shard_bytes=128)
        gz_specs = [s for s in specs if s.gzip]
        assert len(gz_specs) == 1
        assert gz_specs[0].line_count == -1
        assert gz_specs[0].byte_start == 0
        assert gz_specs[0].byte_end == gz.stat().st_size

    def test_empty_file_gets_one_empty_shard(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_bytes(b"")
        specs = plan_shards([path], shard_bytes=64)
        assert len(specs) == 1
        assert (specs[0].byte_start, specs[0].byte_end) == (0, 0)

    def test_resolve_shard_bytes(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=100, dirty=False)
        assert resolve_shard_bytes([str(path)], shard_bytes=123) == 123
        derived = resolve_shard_bytes([str(path)], jobs=4)
        assert derived == MIN_SHARD_BYTES  # tiny file clamps up
        with pytest.raises(ValueError):
            resolve_shard_bytes([str(path)], shard_bytes=0)


# ---------------------------------------------------------------------------
# Manifest + cache
# ---------------------------------------------------------------------------
class TestManifest:
    def test_round_trip(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=200, dirty=False)
        specs = plan_shards([path], shard_bytes=512)
        manifest = tmp_path / "t.shards.json"
        write_manifest(manifest, specs, 512)
        payload = read_manifest(manifest)
        assert payload["shard_bytes"] == 512
        assert payload["shards"] == specs
        assert manifest_sources(manifest) == [str(path)]
        assert all(verify_shard(spec) for spec in specs)

    def test_verify_shard_detects_mutation(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=200, dirty=False)
        specs = plan_shards([path], shard_bytes=512)
        data = bytearray(path.read_bytes())
        data[specs[1].byte_start] = ord("9")
        path.write_bytes(bytes(data))
        assert verify_shard(specs[0])
        assert not verify_shard(specs[1])

    def test_bad_format_rejected(self, tmp_path):
        bogus = tmp_path / "m.json"
        bogus.write_text(json.dumps({"format": "something else"}))
        with pytest.raises(ValueError, match="repro-shards"):
            read_manifest(bogus)

    def test_cache_hits_and_invalidation(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=400, dirty=True)
        manifest = tmp_path / "t.shards.json"
        first = scan_shards(
            [path], policy=IngestPolicy.repair(), jobs=1,
            shard_bytes=1024, manifest=manifest,
        )
        assert os.path.isdir(f"{manifest}.cache")
        second = scan_shards(
            [path], policy=IngestPolicy.repair(), jobs=1, manifest=manifest
        )
        rows = [r for r in second[3].shard_timings if r["shard"] != "plan"]
        assert rows and all(row["cached"] for row in rows)
        assert second[3].checksum == first[3].checksum
        assert second[0].tobytes() == first[0].tobytes()
        # a different policy must not reuse the cached parses
        other = scan_shards(
            [path], policy=IngestPolicy.quarantine(), jobs=1, manifest=manifest
        )
        rows = [r for r in other[3].shard_timings if r["shard"] != "plan"]
        assert not any(row["cached"] for row in rows)
        # same-length mutation (boundaries unmoved): exactly one shard's
        # checksum changes, it re-parses, and the output reflects the edit
        data = path.read_text(encoding="utf-8")
        mutated = data.replace("7 8 7.0", "7 8 9.5", 1)
        assert mutated != data and len(mutated) == len(data)
        path.write_text(mutated, encoding="utf-8")
        third = scan_shards(
            [path], policy=IngestPolicy.repair(), jobs=1, manifest=manifest
        )
        rows = [r for r in third[3].shard_timings if r["shard"] != "plan"]
        assert any(row["cached"] for row in rows)
        assert not all(row["cached"] for row in rows)
        serial = scan_trace(path, policy=IngestPolicy.repair())
        assert third[3].checksum == serial[3].checksum
        assert third[2].tobytes() == serial[2].tobytes()

    def test_corrupt_cache_entry_is_reparsed(self, tmp_path):
        path = write_trace_text(tmp_path / "t.txt", n=300, dirty=False)
        manifest = tmp_path / "t.shards.json"
        scan_shards([path], jobs=1, shard_bytes=1024, manifest=manifest)
        cache_dir = f"{manifest}.cache"
        entries = sorted(os.listdir(cache_dir))
        assert entries
        with open(os.path.join(cache_dir, entries[0]), "wb") as fh:
            fh.write(b"garbage, not an npz")
        us, vs, ts, report = scan_shards([path], jobs=1, manifest=manifest)
        serial = scan_trace(path)
        assert report.checksum == serial[3].checksum


# ---------------------------------------------------------------------------
# Rejects sidecars across shard sets (satellite a)
# ---------------------------------------------------------------------------
class TestShardRejects:
    def test_per_source_sidecars_round_trip_via_manifest(self, tmp_path):
        a = write_trace_text(tmp_path / "a.txt", n=80, dirty=True)
        b = write_trace_text(tmp_path / "b.txt", n=80, dirty=True, start=500)
        manifest = tmp_path / "set.shards.json"
        us, vs, ts, report = scan_shards(
            [a, b], policy=IngestPolicy.quarantine(), jobs=2,
            shard_bytes=256, manifest=manifest,
        )
        assert report.quarantine_paths == [f"{a}.rejects", f"{b}.rejects"]
        records = read_manifest_rejects(manifest)
        assert records == read_rejects(manifest)  # loader sniffs manifests
        assert {r.path for r in records} == {str(a), str(b)}
        # lossless: every record's raw line is byte-identical to its source
        for record in records:
            with open(record.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
            assert lines[record.lineno - 1] == record.line
        # per-source linenos overlap across files; path disambiguates
        linenos = [(r.path, r.lineno) for r in records]
        assert len(set(linenos)) == len(linenos)

    def test_single_source_honours_quarantine_path(self, tmp_path):
        a = write_trace_text(tmp_path / "a.txt", n=80, dirty=True)
        sidecar = tmp_path / "custom.rejects"
        _, _, _, report = scan_shards(
            [a], policy=IngestPolicy.quarantine(), jobs=1,
            shard_bytes=256, quarantine_path=sidecar,
        )
        assert report.quarantine_path == str(sidecar)
        assert sidecar.exists()

    def test_multi_source_rejects_custom_path(self, tmp_path):
        a = write_trace_text(tmp_path / "a.txt", n=20)
        b = write_trace_text(tmp_path / "b.txt", n=20)
        with pytest.raises(ValueError, match="single-source"):
            scan_shards(
                [a, b], policy=IngestPolicy.quarantine(),
                quarantine_path=tmp_path / "x.rejects",
            )


# ---------------------------------------------------------------------------
# Gzip edge cases in parallel mode (satellite c)
# ---------------------------------------------------------------------------
class TestGzipParallel:
    def _parity(self, paths, tmp_path, jobs=3):
        policy = IngestPolicy.repair()
        serial = scan_shards(paths, policy=policy, jobs=1, shard_bytes=256)
        parallel = scan_shards(paths, policy=policy, jobs=jobs, shard_bytes=256)
        assert parallel[3].checksum == serial[3].checksum
        for i in range(3):
            assert parallel[i].tobytes() == serial[i].tobytes()
        return parallel

    def test_multi_member_gzip(self, tmp_path):
        half1 = "\n".join(f"{i} {i + 1} {float(i)!r}" for i in range(50))
        half2 = "\n".join(f"{i} {i + 1} {float(i)!r}" for i in range(50, 100))
        gz = tmp_path / "multi.txt.gz"
        gz.write_bytes(
            gzip.compress((half1 + "\n").encode())
            + gzip.compress((half2 + "\n").encode())
        )
        us, vs, ts, report = self._parity([gz], tmp_path)
        assert report.events_accepted == 100  # both members read

    def test_mixed_gzip_and_plain_shard_set(self, tmp_path):
        plain = write_trace_text(tmp_path / "a.txt", n=120, dirty=True)
        gz_src = write_trace_text(tmp_path / "b.txt", n=120, dirty=True,
                                  start=900)
        gz = tmp_path / "b.txt.gz"
        gz.write_bytes(gzip.compress(gz_src.read_bytes()))
        gz_src.unlink()
        us, vs, ts, report = self._parity([plain, gz], tmp_path)
        assert report.gzip is True
        assert report.sources == [str(plain), str(gz)]

    def test_empty_shard_in_a_set(self, tmp_path):
        plain = write_trace_text(tmp_path / "a.txt", n=60, dirty=False)
        empty = tmp_path / "empty.txt"
        empty.write_bytes(b"")
        us, vs, ts, report = self._parity([plain, empty], tmp_path)
        assert report.events_accepted == 60
        # and an empty file alone is a valid (empty) stream
        eu, ev, et, ereport = scan_shards([empty], jobs=2)
        assert len(et) == 0 and ereport.events_accepted == 0


# ---------------------------------------------------------------------------
# Pool fault tolerance
# ---------------------------------------------------------------------------
class _FlakyPool:
    """Inline stand-in for ProcessPoolExecutor whose first ``fail_budget``
    futures resolve to BrokenExecutor — deterministic crash injection."""

    fail_budget = 0
    created = 0

    def __init__(self, max_workers=None, initializer=None):
        type(self).created += 1
        self._initializer = initializer

    def submit(self, fn, *args):
        future = Future()
        if type(self).fail_budget > 0:
            type(self).fail_budget -= 1
            future.set_exception(BrokenExecutor("simulated worker crash"))
        else:
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # task errors land in the future
                future.set_exception(exc)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


@pytest.fixture()
def flaky_pool(monkeypatch):
    _FlakyPool.fail_budget = 0
    _FlakyPool.created = 0
    monkeypatch.setattr(shard_worker, "ProcessPoolExecutor", _FlakyPool)
    return _FlakyPool


def _specs_and_serial(tmp_path):
    path = write_trace_text(tmp_path / "t.txt", n=400, dirty=True)
    specs = plan_shards([path], shard_bytes=1024)
    assert len(specs) >= 3
    serial = scan_trace(path, policy=IngestPolicy.repair())
    return path, specs, serial


class TestPoolFaultTolerance:
    def test_broken_pool_rebuilds_and_completes(self, tmp_path, flaky_pool):
        path, specs, serial = _specs_and_serial(tmp_path)
        flaky_pool.fail_budget = 1
        us, vs, ts, report = scan_shards(
            [path], policy=IngestPolicy.repair(), jobs=2, shard_bytes=1024
        )
        assert flaky_pool.created >= 2  # the pool was rebuilt
        assert report.checksum == serial[3].checksum
        assert ts.tobytes() == serial[2].tobytes()

    def test_persistent_crashes_degrade_to_inline(self, tmp_path, flaky_pool):
        path, specs, serial = _specs_and_serial(tmp_path)
        flaky_pool.fail_budget = 10_000
        us, vs, ts, report = scan_shards(
            [path], policy=IngestPolicy.repair(), jobs=2, shard_bytes=1024
        )
        assert report.checksum == serial[3].checksum  # still correct

    def test_task_error_retries_then_raises(self, tmp_path, flaky_pool, monkeypatch):
        path, specs, serial = _specs_and_serial(tmp_path)
        real_parse = shard_worker.parse_shard
        calls = {"n": 0}

        def flaky_parse(spec_payload, policy_payload):
            calls["n"] += 1
            if spec_payload["index"] == 1 and calls["n"] < 3:
                raise OSError("simulated transient read failure")
            return real_parse(spec_payload, policy_payload)

        monkeypatch.setattr(shard_worker, "parse_shard", flaky_parse)
        us, vs, ts, report = scan_shards(
            [path], policy=IngestPolicy.repair(), jobs=2, shard_bytes=1024
        )
        assert report.checksum == serial[3].checksum

        def always_fails(spec_payload, policy_payload):
            raise OSError("permanent failure")

        monkeypatch.setattr(shard_worker, "parse_shard", always_fails)
        with pytest.raises(ShardIngestError, match="failed after"):
            scan_shards([path], policy=IngestPolicy.repair(), jobs=2,
                        shard_bytes=1024)


# ---------------------------------------------------------------------------
# Jobs resolution
# ---------------------------------------------------------------------------
class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5
        monkeypatch.delenv(JOBS_ENV_VAR)
        assert resolve_jobs(None) == 1

    def test_zero_means_cpu_count(self, monkeypatch):
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_invalid(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs(-2)
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_load_trace_env_opt_in(self, tmp_path, monkeypatch):
        from repro.ingest import load_trace

        path = write_trace_text(tmp_path / "t.txt", n=50, dirty=False)
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        serial = load_trace(path, jobs=1)
        sharded = load_trace(path, jobs=None)  # env decides
        su, sv, st = serial.columns()
        pu, pv, pt = sharded.columns()
        assert pt.tobytes() == st.tobytes()
        assert sharded.ingest_report.checksum == serial.ingest_report.checksum
        # the env-selected load really took the shard path (and jobs=1
        # explicitly really did not)
        assert sharded.ingest_report.shard_timings
        assert not serial.ingest_report.shard_timings


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_ingest_serial_vs_sharded_checksum(self, tmp_path, capsys):
        path = write_trace_text(tmp_path / "t.txt", n=300, dirty=True)
        assert main(["ingest", str(path), "--policy", "repair",
                     "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["ingest", str(path), "--policy", "repair", "--jobs", "2",
                     "--shards", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checksum"] in serial_out
        assert payload["sources"] == [str(path)]
        assert any(r["shard"] == "plan" for r in payload["shard_timings"])

    def test_ingest_writes_manifest(self, tmp_path, capsys):
        path = write_trace_text(tmp_path / "t.txt", n=300, dirty=False)
        manifest = tmp_path / "t.shards.json"
        assert main(["ingest", str(path), "--jobs", "2", "--shards", "4",
                     "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert manifest_sources(manifest) == [str(path)]

    def test_ingest_strict_exit_2_names_offender(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        rows = [f"{i} {i + 1} {float(i)!r}" for i in range(100)]
        rows.insert(30, "4 4 30.0")  # self-loop at line 31
        path.write_text("\n".join(rows) + "\n", encoding="utf-8")
        assert main(["ingest", str(path), "--policy", "strict",
                     "--jobs", "2", "--shards", "4"]) == 2
        err = capsys.readouterr().err
        assert "[self_loop]" in err and ":31:" in err

    def test_audit_shard_set_and_manifest(self, tmp_path, capsys):
        a = write_trace_text(tmp_path / "a.txt", n=100, dirty=False)
        b = write_trace_text(tmp_path / "b.txt", n=100, dirty=False,
                             start=300, t0=100.0)
        manifest = tmp_path / "set.shards.json"
        assert main(["ingest", str(a), str(b), "--jobs", "2",
                     "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["audit", "--manifest", str(manifest), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert main(["audit", "--shards", str(a), str(b)]) == 0
        capsys.readouterr()

    def test_audit_requires_an_input(self, capsys):
        assert main(["audit"]) == 2
        assert "audit needs" in capsys.readouterr().err
