"""Tests for missing-link detection and AUC-mode evaluation."""

import numpy as np
import pytest

from repro.eval.aucmode import auc_ranking, metric_auc
from repro.eval.experiment import prediction_steps
from repro.eval.missing import detect_missing_links, hide_edges, missing_vs_future
from repro.graph.snapshots import Snapshot


class TestHideEdges:
    def test_hides_requested_fraction(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        observed, hidden = hide_edges(s, 0.1, rng=0)
        assert len(hidden) == round(0.1 * s.num_edges)
        assert observed.num_edges == s.num_edges - len(hidden)

    def test_hidden_edges_absent_from_observed(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        observed, hidden = hide_edges(s, 0.15, rng=1)
        for u, v in hidden:
            assert s.has_edge(u, v)
            assert not observed.has_edge(u, v)

    def test_observed_nodes_subset(self, facebook_snapshots):
        """Hiding edges never invents nodes; isolated nodes drop out."""
        s = facebook_snapshots[-1]
        observed, _ = hide_edges(s, 0.3, rng=2)
        assert set(observed.nodes()) <= set(s.nodes())
        # The bulk of the graph survives a 30% removal.
        assert observed.num_nodes >= 0.7 * s.num_nodes

    def test_timestamps_preserved_for_kept_edges(self, tiny_snapshot):
        observed, hidden = hide_edges(tiny_snapshot, 0.2, rng=0)
        for u, v, t in observed.trace.edges():
            assert tiny_snapshot.trace.edge_time(u, v) == t

    def test_fraction_validation(self, tiny_snapshot):
        with pytest.raises(ValueError):
            hide_edges(tiny_snapshot, 0.0)
        with pytest.raises(ValueError):
            hide_edges(tiny_snapshot, 1.0)

    def test_deterministic(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        _, h1 = hide_edges(s, 0.1, rng=7)
        _, h2 = hide_edges(s, 0.1, rng=7)
        assert h1 == h2


class TestDetectMissingLinks:
    def test_recovers_better_than_random(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        observed, hidden = hide_edges(s, 0.1, rng=0)
        outcome = detect_missing_links("RA", observed, hidden, rng=0)
        assert outcome.k == len(hidden)
        assert outcome.ratio > 1.0

    def test_missing_task_easier_than_future(self, facebook_snapshots):
        """The classic effect the paper's protocol choice guards against."""
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        ratios_missing, ratios_future = [], []
        for seed in range(3):
            m, f = missing_vs_future("RA", prev, truth, rng=seed)
            ratios_missing.append(m)
            ratios_future.append(f)
        assert np.mean(ratios_missing) > np.mean(ratios_future)


class TestMetricAuc:
    def test_auc_in_unit_interval(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        auc = metric_auc("RA", prev, truth, rng=0)
        assert 0.0 <= auc <= 1.0

    def test_good_metric_beats_chance(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        assert metric_auc("RA", prev, truth, rng=0) > 0.5

    def test_no_positive_candidates_gives_half(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, _ = steps[-1]
        assert metric_auc("RA", prev, set(), rng=0) == 0.5

    def test_sp_handles_disconnected_scores(self):
        from tests.conftest import build_trace

        trace = build_trace(
            [(0, 1, 0.0), (1, 2, 1.0), (3, 4, 2.0), (4, 5, 3.0), (0, 2, 4.0)]
        )
        s = Snapshot(trace, trace.num_edges)
        truth = {(3, 5)}
        auc = metric_auc("SP", s, truth, rng=0)
        assert 0.0 <= auc <= 1.0

    def test_ranking_returns_all_metrics(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        out = auc_ranking(("CN", "RA", "PA"), prev, truth, rng=0)
        assert set(out) == {"CN", "RA", "PA"}
