"""Shared fixtures: small hand-built graphs plus session-scoped preset traces."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.generators import presets
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, snapshot_sequence

# CI runs the property suites on shared, noisy runners where a single
# slow example would trip hypothesis's default 200 ms deadline; select
# with HYPOTHESIS_PROFILE=ci (see .github/workflows/ci.yml).
settings.register_profile("ci", deadline=2000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def build_trace(events) -> TemporalGraph:
    """Build a TemporalGraph from (u, v, t) tuples."""
    return TemporalGraph.from_stream(events)


@pytest.fixture
def tiny_trace() -> TemporalGraph:
    """A hand-built 8-node trace with known structure and timing.

    Final graph (edges in creation order, times in days):

        0-1 (0.0)   1-2 (1.0)   0-2 (2.0)   2-3 (3.0)   3-4 (4.0)
        0-3 (5.0)   4-5 (6.0)   1-4 (7.0)   5-6 (8.0)   2-6 (9.0)
        6-7 (10.0)  0-7 (11.0)
    """
    return build_trace(
        [
            (0, 1, 0.0),
            (1, 2, 1.0),
            (0, 2, 2.0),
            (2, 3, 3.0),
            (3, 4, 4.0),
            (0, 3, 5.0),
            (4, 5, 6.0),
            (1, 4, 7.0),
            (5, 6, 8.0),
            (2, 6, 9.0),
            (6, 7, 10.0),
            (0, 7, 11.0),
        ]
    )


@pytest.fixture
def tiny_snapshot(tiny_trace) -> Snapshot:
    """Snapshot of the full tiny trace."""
    return Snapshot(tiny_trace, tiny_trace.num_edges)


@pytest.fixture
def triangle_plus_trace() -> TemporalGraph:
    """Triangle 0-1-2 plus pendant 3 attached to 2, then 0-3 closing later.

    Useful for hand-computing CN/AA/RA/LNB scores.
    """
    return build_trace(
        [
            (0, 1, 0.0),
            (1, 2, 1.0),
            (0, 2, 2.0),
            (2, 3, 3.0),
        ]
    )


@pytest.fixture(scope="session")
def small_facebook() -> TemporalGraph:
    """A small facebook-like preset trace, shared across the session."""
    return presets.facebook_like(scale=0.25, seed=7)


@pytest.fixture(scope="session")
def small_youtube() -> TemporalGraph:
    """A small youtube-like preset trace, shared across the session."""
    return presets.youtube_like(scale=0.25, seed=7)


@pytest.fixture(scope="session")
def facebook_snapshots(small_facebook):
    """Snapshot sequence of the small facebook trace (about 12 snapshots)."""
    delta = max(30, small_facebook.num_edges // 12)
    return snapshot_sequence(small_facebook, delta, start=small_facebook.num_edges // 3)
