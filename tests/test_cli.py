"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "youtube", "--out", "x.txt"]
        )
        assert args.dataset == "youtube"
        assert args.out == "x.txt"

    def test_unknown_metric_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--metric", "NOPE"])


class TestCommands:
    def test_generate_then_evaluate(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        assert main(
            ["generate", "--dataset", "facebook", "--scale", "0.1", "--out", str(out)]
        ) == 0
        assert out.exists()
        assert main(["evaluate", "--trace", str(out), "--metric", "CN"]) == 0
        captured = capsys.readouterr().out
        assert "mean accuracy ratio" in captured

    def test_evaluate_verbose_lists_steps(self, capsys):
        assert main(
            [
                "evaluate",
                "--dataset",
                "facebook",
                "--scale",
                "0.1",
                "--metric",
                "RA",
                "-v",
            ]
        ) == 0
        assert "step" in capsys.readouterr().out

    def test_compare_ranks_metrics(self, capsys):
        assert main(
            [
                "compare",
                "--dataset",
                "facebook",
                "--scale",
                "0.1",
                "--metrics",
                "CN,PA",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "CN" in out and "PA" in out

    def test_compare_unknown_metric_errors(self, capsys):
        assert main(
            ["compare", "--dataset", "facebook", "--scale", "0.1", "--metrics", "XX"]
        ) == 2

    def test_suggest_prints_pairs(self, capsys):
        assert main(
            ["suggest", "--dataset", "facebook", "--scale", "0.1", "-k", "4"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 4
        for line in lines:
            u, v = line.split()
            assert int(u) != int(v)
