"""Unit tests for repro.graph.snapshots."""

import numpy as np
import pytest

from repro.graph.snapshots import (
    Snapshot,
    SnapshotView,
    new_edges_between,
    snapshot_sequence,
)


class TestSnapshot:
    def test_full_cutoff(self, tiny_trace):
        s = Snapshot(tiny_trace, tiny_trace.num_edges)
        assert s.num_nodes == 8
        assert s.num_edges == 12
        assert s.time == 11.0

    def test_partial_cutoff(self, tiny_trace):
        s = Snapshot(tiny_trace, 4)
        assert s.num_edges == 4
        assert s.num_nodes == 4  # nodes 0..3
        assert s.time == 3.0
        assert not s.has_edge(3, 4)

    def test_cutoff_bounds(self, tiny_trace):
        with pytest.raises(ValueError):
            Snapshot(tiny_trace, 0)
        with pytest.raises(ValueError):
            Snapshot(tiny_trace, 13)

    def test_neighbors_and_degree(self, tiny_trace):
        s = Snapshot(tiny_trace, 6)
        assert s.neighbors(0) == {1, 2, 3}
        assert s.degree(2) == 3

    def test_node_list_sorted_and_pos_consistent(self, tiny_snapshot):
        nl = tiny_snapshot.node_list
        assert nl == sorted(nl)
        for node, idx in tiny_snapshot.node_pos.items():
            assert nl[idx] == node

    def test_adjacency_matrix_symmetric(self, tiny_snapshot):
        a = tiny_snapshot.adjacency_matrix()
        assert (a != a.T).nnz == 0
        assert a.sum() == 2 * tiny_snapshot.num_edges
        assert a.diagonal().sum() == 0

    def test_degree_array_matches_adjacency(self, tiny_snapshot):
        a = tiny_snapshot.adjacency_matrix()
        assert np.array_equal(
            tiny_snapshot.degree_array(), np.asarray(a.sum(axis=1)).ravel()
        )

    def test_temporal_passthrough(self, tiny_trace):
        s = Snapshot(tiny_trace, 6)  # time = 5.0
        # Node 1's edges before t=5: at 0.0 and 1.0.
        assert s.idle_time(1) == 4.0
        assert s.recent_edge_count(1, window=10.0) == 2

    def test_to_networkx_roundtrip(self, tiny_snapshot):
        g = tiny_snapshot.to_networkx()
        assert g.number_of_nodes() == tiny_snapshot.num_nodes
        assert g.number_of_edges() == tiny_snapshot.num_edges


class TestSnapshotView:
    def test_subgraph_restricts_edges(self, tiny_snapshot):
        view = tiny_snapshot.subgraph({0, 1, 2, 3})
        assert view.num_nodes == 4
        assert view.num_edges == 5  # 0-1,1-2,0-2,2-3,0-3
        assert not view.has_edge(2, 6)

    def test_subgraph_unknown_node_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError):
            tiny_snapshot.subgraph({0, 99})

    def test_view_keeps_snapshot_time(self, tiny_snapshot):
        view = tiny_snapshot.subgraph({0, 1})
        assert view.time == tiny_snapshot.time

    def test_view_temporal_queries_use_full_trace(self, tiny_snapshot):
        view = tiny_snapshot.subgraph({0, 1})
        # Node 0's idle time comes from the full trace, not the view.
        assert view.idle_time(0) == 0.0

    def test_view_is_snapshot(self, tiny_snapshot):
        assert isinstance(tiny_snapshot.subgraph({0, 1}), SnapshotView)


class TestSnapshotSequence:
    def test_constant_delta(self, tiny_trace):
        snaps = snapshot_sequence(tiny_trace, delta=3)
        assert [s.cutoff for s in snaps] == [3, 6, 9, 12]
        assert [s.index for s in snaps] == [0, 1, 2, 3]

    def test_custom_start(self, tiny_trace):
        snaps = snapshot_sequence(tiny_trace, delta=4, start=4)
        assert [s.cutoff for s in snaps] == [4, 8, 12]

    def test_partial_tail_dropped(self, tiny_trace):
        snaps = snapshot_sequence(tiny_trace, delta=5)
        assert [s.cutoff for s in snaps] == [5, 10]

    def test_max_snapshots(self, tiny_trace):
        snaps = snapshot_sequence(tiny_trace, delta=2, max_snapshots=3)
        assert len(snaps) == 3

    def test_invalid_delta(self, tiny_trace):
        with pytest.raises(ValueError):
            snapshot_sequence(tiny_trace, delta=0)

    def test_invalid_start(self, tiny_trace):
        with pytest.raises(ValueError):
            snapshot_sequence(tiny_trace, delta=2, start=0)


class TestNewEdgesBetween:
    def test_excludes_new_node_edges(self, tiny_trace):
        prev = Snapshot(tiny_trace, 4)   # nodes 0..3
        curr = Snapshot(tiny_trace, 8)   # adds 3-4, 0-3, 4-5, 1-4
        truth = new_edges_between(prev, curr)
        # 3-4 involves new node 4; 4-5 and 1-4 involve node 4/5 (new).
        assert truth == {(0, 3)}

    def test_all_existing_nodes(self, tiny_trace):
        prev = Snapshot(tiny_trace, 11)
        curr = Snapshot(tiny_trace, 12)
        assert new_edges_between(prev, curr) == {(0, 7)}

    def test_requires_ordering(self, tiny_trace):
        prev = Snapshot(tiny_trace, 8)
        curr = Snapshot(tiny_trace, 4)
        with pytest.raises(ValueError):
            new_edges_between(prev, curr)

    def test_ground_truth_pairs_are_canonical(self, tiny_trace):
        prev = Snapshot(tiny_trace, 11)
        curr = Snapshot(tiny_trace, 12)
        for u, v in new_edges_between(prev, curr):
            assert u < v
