"""Failure-injection and awkward-input tests across the library.

Each test feeds a component an input at the edge of (or beyond) its
contract and checks for a clean outcome: either a correct result or a
specific, early error — never a silent wrong answer.
"""

import numpy as np
import pytest

from repro.classify import ClassificationPredictor, FeatureExtractor
from repro.eval.experiment import evaluate_step
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics.base import all_metric_names, get_metric
from repro.metrics.candidates import all_nonedge_pairs, two_hop_pairs
from repro.temporal import FilterParams, TemporalFilter
from tests.conftest import build_trace


@pytest.fixture
def disconnected_snapshot():
    """Two components plus a pendant: awkward for walk/path metrics."""
    trace = build_trace(
        [
            (0, 1, 0.0),
            (1, 2, 1.0),
            (0, 2, 2.0),
            (3, 4, 3.0),
            (4, 5, 4.0),
            (5, 3, 5.0),
            (6, 0, 6.0),
        ]
    )
    return Snapshot(trace, trace.num_edges)


class TestDisconnectedGraphs:
    def test_every_metric_scores_cross_component_pairs(self, disconnected_snapshot):
        pairs = np.asarray([[0, 3], [2, 5], [6, 4]], dtype=np.int64)
        for name in all_metric_names():
            scores = get_metric(name).fit(disconnected_snapshot).score(pairs)
            assert scores.shape == (3,)
            # -inf is allowed (SP); NaN never is.
            assert not np.isnan(scores).any(), name

    def test_neighbourhood_metrics_zero_across_components(self, disconnected_snapshot):
        pairs = np.asarray([[0, 3]], dtype=np.int64)
        for name in ("CN", "JC", "AA", "RA", "BCN", "BAA", "BRA", "LP"):
            assert get_metric(name).fit(disconnected_snapshot).score(pairs)[0] == 0.0

    def test_evaluate_step_runs(self, disconnected_snapshot):
        truth = {(0, 3), (2, 6)}
        result = evaluate_step("RA", disconnected_snapshot, truth, rng=0)
        assert result.outcome.k == 2


class TestDegenerateGraphs:
    def test_single_edge_graph(self):
        trace = build_trace([(0, 1, 0.0)])
        s = Snapshot(trace, 1)
        assert len(two_hop_pairs(s)) == 0
        assert len(all_nonedge_pairs(s)) == 0

    def test_star_graph_metrics(self):
        trace = build_trace([(0, i, float(i)) for i in range(1, 6)])
        s = Snapshot(trace, trace.num_edges)
        pairs = two_hop_pairs(s)
        assert len(pairs) == 10  # all leaf pairs
        cn = get_metric("CN").fit(s).score(pairs)
        assert (cn == 1.0).all()
        # RA through the hub: 1/5 each.
        ra = get_metric("RA").fit(s).score(pairs)
        assert ra == pytest.approx(np.full(10, 0.2))

    def test_complete_graph_has_no_candidates(self):
        events = []
        t = 0.0
        for i in range(5):
            for j in range(i + 1, 5):
                events.append((i, j, t))
                t += 1
        s = Snapshot(build_trace(events), len(events))
        assert len(all_nonedge_pairs(s)) == 0
        result = evaluate_step("CN", s, set(), rng=0)
        assert result.outcome.k == 0

    def test_all_simultaneous_timestamps(self):
        trace = build_trace([(0, 1, 5.0), (1, 2, 5.0), (2, 3, 5.0)])
        s = Snapshot(trace, 3)
        assert s.time == 5.0
        assert s.idle_time(0) == 0.0
        assert trace.recent_edge_count(1, now=5.0, window=0.5) == 2


class TestFilterEdgeCases:
    def test_filter_on_fresh_graph_keeps_or_drops_cleanly(self):
        trace = build_trace([(0, 1, 0.0), (1, 2, 0.5), (0, 2, 1.0), (2, 3, 1.5)])
        s = Snapshot(trace, 4)
        filt = TemporalFilter(
            FilterParams(d_act=10, d_inact=10, window=10, min_new_edges=0, d_cn=10)
        )
        mask = filt(s, two_hop_pairs(s))
        assert mask.dtype == bool

    def test_impossible_thresholds_drop_everything(self, disconnected_snapshot):
        filt = TemporalFilter(
            FilterParams(d_act=1e-9, d_inact=1e-9, window=1, min_new_edges=99, d_cn=1)
        )
        pairs = all_nonedge_pairs(disconnected_snapshot)
        assert not filt(disconnected_snapshot, pairs).any()


class TestClassifierEdgeCases:
    def test_training_without_positives_raises(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        predictor = ClassificationPredictor("NB", theta=None)
        # Using the same snapshot as train and label views: no pair can be
        # both unconnected (candidate) and connected (positive).
        with pytest.raises(ValueError, match="positive"):
            predictor.train(s, s)

    def test_feature_extractor_on_single_pair(self, facebook_snapshots):
        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:1]
        features = FeatureExtractor(("CN", "SP")).compute(s, pairs)
        assert features.shape == (1, 2)

    def test_scoring_empty_pair_set(self, facebook_snapshots):
        g2, g1 = facebook_snapshots[-3], facebook_snapshots[-2]
        predictor = ClassificationPredictor("NB", theta=1 / 10, seed=0)
        predictor.train(g2, g1)
        assert predictor.score_pairs(g1, np.zeros((0, 2), dtype=np.int64)).shape == (0,)


class TestSequencingEdgeCases:
    def test_delta_equal_to_trace(self, tiny_trace):
        snaps = snapshot_sequence(tiny_trace, delta=tiny_trace.num_edges)
        assert len(snaps) == 1

    def test_delta_larger_than_trace(self, tiny_trace):
        assert snapshot_sequence(tiny_trace, delta=100) == []

    def test_graph_without_edges_has_empty_sequence(self):
        g = TemporalGraph()
        g.add_node(0)
        assert snapshot_sequence(g, delta=1) == []
