"""Tests for the per-step / per-sequence evaluation loops."""

import numpy as np
import pytest

from repro.eval.experiment import (
    SequenceSummary,
    evaluate_metric_sequence,
    evaluate_step,
    prediction_steps,
)
from repro.graph.snapshots import new_edges_between


class TestPredictionSteps:
    def test_yields_consecutive_pairs(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        assert len(steps) == len(facebook_snapshots) - 1
        for (prev, curr, truth), s_prev, s_curr in zip(
            steps, facebook_snapshots, facebook_snapshots[1:]
        ):
            assert prev is s_prev
            assert curr is s_curr
            assert truth == new_edges_between(s_prev, s_curr)


class TestEvaluateStep:
    def test_predicts_exactly_k(self, facebook_snapshots):
        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))
        result = evaluate_step("RA", prev, truth, rng=0)
        assert len(result.predicted) == len(truth)
        assert result.outcome.k == len(truth)

    def test_predictions_are_nonedges(self, facebook_snapshots):
        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))
        result = evaluate_step("RA", prev, truth, rng=0)
        for u, v in result.predicted:
            assert not prev.has_edge(int(u), int(v))

    def test_accepts_metric_instance(self, facebook_snapshots):
        from repro.metrics.base import get_metric

        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))
        result = evaluate_step(get_metric("CN"), prev, truth, rng=0)
        assert result.metric == "CN"

    def test_random_fill_when_candidates_scarce(self, tiny_snapshot, tiny_trace):
        """With more truth than 2-hop candidates, the filler kicks in."""
        from repro.metrics.candidates import two_hop_pairs

        n_candidates = len(two_hop_pairs(tiny_snapshot))
        truth = {(i, i + 20) for i in range(n_candidates + 2)}  # fake big truth
        result = evaluate_step("CN", tiny_snapshot, truth, rng=0)
        # The tiny graph only has 16 non-edges total, so the filler can add
        # at most 16 - n_candidates pairs beyond the scored candidates.
        assert result.random_fill == 2
        assert len(result.predicted) == n_candidates + 2

    def test_pair_filter_restricts_candidates(self, facebook_snapshots):
        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))

        def block_everything(snapshot, pairs):
            return np.zeros(len(pairs), dtype=bool)

        result = evaluate_step("RA", prev, truth, rng=0, pair_filter=block_everything)
        # All predictions must be random fill.
        assert result.random_fill == len(truth)

    def test_bad_filter_shape_rejected(self, facebook_snapshots):
        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))

        def bad_filter(snapshot, pairs):
            return np.ones(3, dtype=bool)

        with pytest.raises(ValueError, match="mask"):
            evaluate_step("RA", prev, truth, rng=0, pair_filter=bad_filter)

    def test_custom_candidates(self, facebook_snapshots):
        from repro.metrics.candidates import all_nonedge_pairs

        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))
        candidates = all_nonedge_pairs(prev)[:50]
        result = evaluate_step("PA", prev, truth, rng=0, candidates=candidates)
        predicted_set = {tuple(p) for p in result.predicted}
        candidate_set = {tuple(p) for p in candidates}
        non_filler = predicted_set & candidate_set
        assert len(non_filler) + result.random_fill == len(truth)

    def test_deterministic(self, facebook_snapshots):
        prev, _, truth = next(iter(prediction_steps(facebook_snapshots[-2:])))
        a = evaluate_step("BRA", prev, truth, rng=5)
        b = evaluate_step("BRA", prev, truth, rng=5)
        assert a.outcome.hits == b.outcome.hits
        assert np.array_equal(a.predicted, b.predicted)


class TestEvaluateSequence:
    def test_one_result_per_step(self, facebook_snapshots):
        results = evaluate_metric_sequence("RA", facebook_snapshots[:4], rng=0)
        assert len(results) == 3
        assert [r.step for r in results] == [0, 1, 2]

    def test_beats_random_on_average(self, facebook_snapshots):
        """Any neighbourhood metric must clearly beat random overall."""
        results = evaluate_metric_sequence("RA", facebook_snapshots, rng=0)
        assert np.mean([r.ratio for r in results]) > 1.0


class TestSequenceSummary:
    def test_from_results(self, facebook_snapshots):
        results = evaluate_metric_sequence("CN", facebook_snapshots[:4], rng=0)
        summary = SequenceSummary.from_results(results)
        assert summary.metric == "CN"
        assert len(summary.ratios) == 3
        assert summary.best_absolute == max(r.absolute for r in results)

    def test_rejects_mixed_metrics(self, facebook_snapshots):
        a = evaluate_metric_sequence("CN", facebook_snapshots[:3], rng=0)
        b = evaluate_metric_sequence("RA", facebook_snapshots[:3], rng=0)
        with pytest.raises(ValueError, match="mix"):
            SequenceSummary.from_results(a + b)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SequenceSummary.from_results([])
