"""Tests for the high-level facade (repro.core.api)."""

import numpy as np
import pytest

import repro
from repro import LinkPredictor, available_classifiers, available_metrics
from repro.temporal import FilterParams, TemporalFilter


class TestDiscovery:
    def test_available_metrics(self):
        names = available_metrics()
        assert "RA" in names and "Rescal" in names
        assert "WRA" in names  # Section-7 weighted extensions registered too
        assert len(names) == 18

    def test_available_classifiers(self):
        names = available_classifiers()
        # The paper's four, plus the boosted ensembles used for its
        # "larger ensembles don't help" negative result.
        assert {"LR", "NB", "RF", "SVM"} <= set(names)
        assert {"AdaBoost", "GBT"} <= set(names)

    def test_package_exports(self):
        assert repro.__version__
        assert hasattr(repro, "datasets")
        assert hasattr(repro, "TemporalGraph")


class TestLinkPredictor:
    def test_invalid_metric_rejected_eagerly(self):
        with pytest.raises(KeyError):
            LinkPredictor(metric="NOPE")

    def test_suggest_returns_k_nonedges(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        predictor = LinkPredictor(metric="RA", seed=0)
        suggestions = predictor.suggest(s, 10)
        assert len(suggestions) == 10
        for u, v in suggestions:
            assert not s.has_edge(u, v)

    def test_suggest_k_zero(self, facebook_snapshots):
        assert LinkPredictor(seed=0).suggest(facebook_snapshots[-1], 0) == []

    def test_suggest_negative_k(self, facebook_snapshots):
        with pytest.raises(ValueError):
            LinkPredictor(seed=0).suggest(facebook_snapshots[-1], -1)

    def test_suggest_with_filter(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        filt = TemporalFilter(
            FilterParams(d_act=5, d_inact=20, window=10, min_new_edges=0, d_cn=20)
        )
        predictor = LinkPredictor(metric="RA", pair_filter=filt, seed=0)
        suggestions = predictor.suggest(s, 5)
        assert len(suggestions) <= 5

    def test_evaluate_sequence(self, small_facebook):
        predictor = LinkPredictor(metric="BRA", seed=0)
        result = predictor.evaluate_sequence(
            small_facebook, delta=small_facebook.num_edges // 10
        )
        assert result.method == "BRA"
        assert len(result.steps) > 1
        assert result.mean_ratio >= 0
        assert "BRA" in result.summary()

    def test_evaluate_sequence_max_steps(self, small_facebook):
        predictor = LinkPredictor(metric="CN", seed=0)
        result = predictor.evaluate_sequence(
            small_facebook, delta=small_facebook.num_edges // 10, max_steps=2
        )
        assert len(result.steps) == 2

    def test_repr(self):
        assert "RA" in repr(LinkPredictor(metric="RA"))

    def test_deterministic_suggestions(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        a = LinkPredictor(metric="CN", seed=3).suggest(s, 8)
        b = LinkPredictor(metric="CN", seed=3).suggest(s, 8)
        assert a == b


class TestSequenceResult:
    def test_summary_empty(self):
        from repro.core.api import SequenceResult

        result = SequenceResult(method="CN")
        assert result.mean_ratio == 0.0
        assert result.best_absolute == 0.0
