"""Unit tests for trace serialisation (repro.graph.io)."""

import pytest

from repro.graph.io import read_trace, write_trace


class TestRoundTrip:
    def test_write_then_read(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(tiny_trace, path)
        loaded = read_trace(path)
        assert loaded.num_nodes == tiny_trace.num_nodes
        assert loaded.num_edges == tiny_trace.num_edges
        for (u1, v1, t1), (u2, v2, t2) in zip(tiny_trace.edges(), loaded.edges()):
            assert (u1, v1) == (u2, v2)
            assert t1 == pytest.approx(t2, abs=1e-5)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0 1 0.5\n# mid comment\n1 2 1.5\n")
        loaded = read_trace(path)
        assert loaded.num_edges == 2

    def test_unsorted_input_is_sorted(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5 6 9.0\n0 1 1.0\n2 3 4.0\n")
        loaded = read_trace(path)
        times = [t for _, _, t in loaded.edges()]
        assert times == [1.0, 4.0, 9.0]

    def test_two_column_fallback(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n2 3\n")
        loaded = read_trace(path)
        assert loaded.num_edges == 3
        times = [t for _, _, t in loaded.edges()]
        assert times == sorted(times)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(ValueError, match="expected"):
            read_trace(path)
