"""Unit tests for trace serialisation (repro.graph.io)."""

import gzip

import numpy as np
import pytest

from repro.graph.io import (
    TRACE_FORMAT_VERSION,
    iter_trace_lines,
    read_trace,
    write_trace,
)
from repro.ingest import TraceFormatError


class TestRoundTrip:
    def test_write_then_read(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(tiny_trace, path)
        loaded = read_trace(path)
        assert loaded.num_nodes == tiny_trace.num_nodes
        assert loaded.num_edges == tiny_trace.num_edges
        for (u1, v1, t1), (u2, v2, t2) in zip(tiny_trace.edges(), loaded.edges()):
            assert (u1, v1) == (u2, v2)
            assert t1 == pytest.approx(t2, abs=1e-5)

    def test_round_trip_is_float_exact(self, tiny_trace, tmp_path):
        # repr-based serialisation preserves every bit of the float64
        # timestamps, not just six decimal places.
        path = tmp_path / "trace.txt"
        write_trace(tiny_trace, path)
        loaded = read_trace(path)
        _, _, t_ref = tiny_trace.columns()
        _, _, t_loaded = loaded.columns()
        assert t_loaded.tobytes() == t_ref.tobytes()

    def test_sub_second_timestamps_survive(self, tmp_path):
        from repro.graph.dyngraph import TemporalGraph

        times = [0.1, 1 / 3, 0.7000000000000001, 123456.78901234567]
        trace = TemporalGraph.from_stream(
            (i, i + 1, t) for i, t in enumerate(times)
        )
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        _, _, t_loaded = read_trace(path).columns()
        assert t_loaded.tolist() == times

    def test_format_version_header_written(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace(tiny_trace, path)
        first = path.read_text(encoding="utf-8").splitlines()[0]
        assert first == f"# repro-trace v{TRACE_FORMAT_VERSION}"
        assert read_trace(path).ingest_report.format_version == TRACE_FORMAT_VERSION

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0 1 0.5\n# mid comment\n1 2 1.5\n")
        loaded = read_trace(path)
        assert loaded.num_edges == 2

    def test_unsorted_input_is_sorted(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5 6 9.0\n0 1 1.0\n2 3 4.0\n")
        loaded = read_trace(path)
        times = [t for _, _, t in loaded.edges()]
        assert times == [1.0, 4.0, 9.0]

    def test_two_column_fallback(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n2 3\n")
        loaded = read_trace(path)
        assert loaded.num_edges == 3
        times = [t for _, _, t in loaded.edges()]
        assert times == sorted(times)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(ValueError, match="expected"):
            read_trace(path)


class TestGzip:
    def test_gz_suffix_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt.gz"
        write_trace(tiny_trace, path)
        # really gzipped on disk, not just named that way.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = read_trace(path)
        u, v, t = tiny_trace.columns()
        lu, lv, lt = loaded.columns()
        assert np.array_equal(lu, u) and np.array_equal(lv, v)
        assert lt.tobytes() == t.tobytes()
        assert loaded.ingest_report.gzip

    def test_explicit_compress_flag(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"  # no .gz suffix
        write_trace(tiny_trace, path, compress=True)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_trace(path).num_edges == tiny_trace.num_edges

    def test_compress_false_overrides_suffix(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt.gz"
        write_trace(tiny_trace, path, compress=False)
        assert path.read_bytes()[:2] != b"\x1f\x8b"
        assert read_trace(path).num_edges == tiny_trace.num_edges


class TestEncoding:
    def test_utf8_bom_tolerated(self, tmp_path):
        path = tmp_path / "bom.txt"
        path.write_bytes(b"\xef\xbb\xbf0 1 0.5\n1 2 1.5\n")
        assert read_trace(path).num_edges == 2

    def test_non_ascii_comments_tolerated(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# données du réseau 网络\n0 1 0.5\n", encoding="utf-8")
        assert read_trace(path).num_edges == 1


class TestContextualErrors:
    """int()/float() failures surface file, line number, and snippet."""

    def test_bad_int_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\n1 x 1.5\n", encoding="utf-8")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        err = excinfo.value
        assert err.lineno == 2
        assert err.path == str(path)
        assert err.line == "1 x 1.5"
        assert f"{path}:2" in str(err)

    def test_bad_float_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\n1 2 12:30\n", encoding="utf-8")
        with pytest.raises(TraceFormatError, match=r":2:"):
            read_trace(path)

    def test_fractional_node_id_is_bad_node_id(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.5 1 1.0\n", encoding="utf-8")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        assert excinfo.value.error_class == "bad_node_id"


class TestIterTraceLines:
    def test_streams_events_in_file_order(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# c\n0 1 0.5\n1 2 1.5\n", encoding="utf-8")
        assert list(iter_trace_lines(path)) == [(0, 1, 0.5), (1, 2, 1.5)]

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write("0 1 0.5\n")
        assert list(iter_trace_lines(path)) == [(0, 1, 0.5)]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\nnot a line\n", encoding="utf-8")
        events = iter_trace_lines(path)
        assert next(events) == (0, 1, 0.5)
        with pytest.raises(TraceFormatError, match=r":2:"):
            next(events)
