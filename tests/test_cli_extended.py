"""Tests for the report and experiment CLI subcommands."""

import json

import pytest

from repro.__main__ import main


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--dataset", "facebook", "--scale", "0.12"]) == 0
        out = capsys.readouterr().out
        assert "# Link prediction report" in out
        assert "## Metric comparison" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(
            ["report", "--dataset", "facebook", "--scale", "0.12", "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        assert "## Structure" in out_path.read_text()


class TestExperimentCommand:
    def test_spec_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "cli-unit",
                    "dataset": "facebook",
                    "scale": 0.12,
                    "generation_seed": 1,
                    "metrics": ["CN"],
                    "repeats": 1,
                    "max_steps": 2,
                }
            )
        )
        out_path = tmp_path / "result.json"
        assert main(
            ["experiment", "--spec", str(spec_path), "--out", str(out_path)]
        ) == 0
        captured = capsys.readouterr().out
        assert "cli-unit" in captured
        payload = json.loads(out_path.read_text())
        assert "CN" in payload["series"]

    def test_bad_spec_fails_loudly(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"metrics": ["NOPE"]}))
        # spec errors map to exit 2 with a one-line message, not a traceback
        assert main(["experiment", "--spec", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "NOPE" in err


class TestMetricDeterminism:
    def test_all_metrics_deterministic_after_cache_clear(self, facebook_snapshots):
        """Every registered metric reproduces its scores exactly when the
        snapshot's precomputation cache is wiped — no hidden global state."""
        import numpy as np

        from repro.metrics.base import all_metric_names, get_metric
        from repro.metrics.candidates import two_hop_pairs

        s = facebook_snapshots[0]
        pairs = two_hop_pairs(s)[:50].copy()
        first = {
            name: get_metric(name).fit(s).score(pairs) for name in all_metric_names()
        }
        s.cache.clear()
        for name, scores in first.items():
            again = get_metric(name).fit(s).score(pairs)
            assert np.allclose(scores, again, equal_nan=True), name
