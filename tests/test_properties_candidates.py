"""Property-based invariants for candidate-pair enumeration.

``random_nonedge_pairs`` pads every under-supplied prediction and *is* the
paper's random baseline, and ``two_hop_pairs`` defines the candidate
universe of the whole common-neighbourhood family — so both get
hypothesis-driven invariants on arbitrary small graphs rather than a few
hand-picked cases.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.candidates import (
    all_nonedge_pairs,
    num_nonedge_pairs,
    random_nonedge_pairs,
    two_hop_pairs,
)


@st.composite
def snapshots(draw, max_nodes=10, max_edges=24) -> Snapshot:
    """Random small snapshots: unique undirected edges, increasing times."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(min_value=1, max_value=min(max_edges, len(possible))))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    stream = [(possible[i][0], possible[i][1], float(t)) for t, i in enumerate(indices)]
    trace = TemporalGraph.from_stream(stream)
    return Snapshot(trace, trace.num_edges)


class TestRandomNonedgePairsInvariants:
    @given(snapshots(), st.integers(min_value=0, max_value=12), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_no_duplicates_no_edges_canonical(self, snapshot, k, seed):
        pairs = random_nonedge_pairs(snapshot, k, rng=seed)
        assert len(pairs) == len(set(pairs)) == min(k, num_nonedge_pairs(snapshot))
        for u, v in pairs:
            assert u < v
            assert snapshot.has_node(u) and snapshot.has_node(v)
            assert not snapshot.has_edge(u, v)

    @given(snapshots(), st.integers(min_value=1, max_value=8), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_respects_exclude(self, snapshot, k, seed):
        nonedges = [tuple(int(x) for x in p) for p in all_nonedge_pairs(snapshot)]
        exclude = set(nonedges[: len(nonedges) // 2])
        pairs = random_nonedge_pairs(snapshot, k, rng=seed, exclude=exclude)
        assert not (set(pairs) & exclude)
        # excluded pairs shrink the pool, and the result honours the shrunken pool
        assert len(pairs) == min(k, num_nonedge_pairs(snapshot) - len(exclude))

    @given(snapshots(max_nodes=6), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_k_shrinks_to_exhausted_pool(self, snapshot, seed):
        """Asking for more pairs than exist returns exactly the whole pool."""
        available = num_nonedge_pairs(snapshot)
        pairs = random_nonedge_pairs(snapshot, available + 25, rng=seed)
        assert len(pairs) == available
        assert set(pairs) == {tuple(int(x) for x in p) for p in all_nonedge_pairs(snapshot)}


class TestTwoHopPairsInvariants:
    @given(snapshots())
    @settings(max_examples=60, deadline=None)
    def test_exactly_the_common_neighbour_nonedges(self, snapshot):
        """Soundness + completeness: the 2-hop set is precisely the
        unconnected pairs sharing at least one neighbour (a symmetric
        relation, so canonical u < v storage loses nothing)."""
        ours = {tuple(int(x) for x in p) for p in two_hop_pairs(snapshot)}
        expected = set()
        for u, v in (tuple(int(x) for x in p) for p in all_nonedge_pairs(snapshot)):
            if snapshot.neighbors(u) & snapshot.neighbors(v):
                expected.add((u, v))
        assert ours == expected

    @given(snapshots())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_from_edges_and_canonical(self, snapshot):
        pairs = two_hop_pairs(snapshot)
        if len(pairs):
            assert (pairs[:, 0] < pairs[:, 1]).all()
        seen = {tuple(int(x) for x in p) for p in pairs}
        assert len(seen) == len(pairs)
        edges = {tuple(sorted(e)) for e in snapshot.edges()}
        assert not (seen & edges)

    @given(snapshots())
    @settings(max_examples=30, deadline=None)
    def test_symmetry_under_endpoint_swap(self, snapshot):
        """Membership is symmetric: (u, v) two-hop iff (v, u) two-hop —
        verified against the A^2 matrix both ways round."""
        a = snapshot.adjacency_matrix().toarray()
        a2 = a @ a
        pos = snapshot.node_pos
        for u, v in {tuple(int(x) for x in p) for p in two_hop_pairs(snapshot)}:
            assert a2[pos[u], pos[v]] > 0
            assert a2[pos[v], pos[u]] > 0
            assert a[pos[u], pos[v]] == 0
