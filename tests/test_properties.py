"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.ranking import top_k_pairs
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, new_edges_between, snapshot_sequence
from repro.ml.metrics import roc_auc_score
from repro.utils.pairs import canonical_pair


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def edge_streams(draw, max_nodes=12, max_edges=30):
    """Random valid edge streams: unique undirected pairs, sorted times."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(min_value=1, max_value=min(max_edges, len(possible))))
    indices = draw(
        st.lists(
            st.integers(0, len(possible) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 100, allow_nan=False, allow_infinity=False),
                min_size=count,
                max_size=count,
            )
        )
    )
    return [(possible[i][0], possible[i][1], t) for i, t in zip(indices, times)]


# ---------------------------------------------------------------------------
# TemporalGraph invariants
# ---------------------------------------------------------------------------
class TestGraphInvariants:
    @given(edge_streams())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, stream):
        g = TemporalGraph.from_stream(stream)
        assert sum(g.degree(u) for u in g.nodes()) == 2 * g.num_edges

    @given(edge_streams())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_symmetry(self, stream):
        g = TemporalGraph.from_stream(stream)
        for u in g.nodes():
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @given(edge_streams())
    @settings(max_examples=60, deadline=None)
    def test_prefix_monotone(self, stream):
        g = TemporalGraph.from_stream(stream)
        for cut in range(1, g.num_edges + 1):
            p = g.prefix(cut)
            assert p.num_edges == cut
            assert p.num_nodes <= g.num_nodes

    @given(edge_streams(), st.floats(0, 120, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_idle_time_non_negative_after_any_event(self, stream, now):
        g = TemporalGraph.from_stream(stream)
        now = max(now, g.end_time)
        for u in g.nodes():
            assert g.idle_time(u, now) >= 0

    @given(edge_streams())
    @settings(max_examples=40, deadline=None)
    def test_recent_count_window_monotone(self, stream):
        g = TemporalGraph.from_stream(stream)
        now = g.end_time
        for u in list(g.nodes())[:5]:
            small = g.recent_edge_count(u, now, 1.0)
            large = g.recent_edge_count(u, now, 1000.0)
            assert small <= large
            assert large == len(g.node_edge_times(u))


# ---------------------------------------------------------------------------
# Snapshot sequencing invariants
# ---------------------------------------------------------------------------
class TestSnapshotInvariants:
    @given(edge_streams(max_edges=25), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_sequence_cutoffs_constant_delta(self, stream, delta):
        g = TemporalGraph.from_stream(stream)
        snaps = snapshot_sequence(g, delta)
        cutoffs = [s.cutoff for s in snaps]
        assert all(b - a == delta for a, b in zip(cutoffs, cutoffs[1:]))

    @given(edge_streams(max_edges=25))
    @settings(max_examples=50, deadline=None)
    def test_ground_truth_edges_within_prev_nodes(self, stream):
        g = TemporalGraph.from_stream(stream)
        if g.num_edges < 4:
            return
        half = g.num_edges // 2
        prev = Snapshot(g, half)
        curr = Snapshot(g, g.num_edges)
        for u, v in new_edges_between(prev, curr):
            assert prev.has_node(u) and prev.has_node(v)
            assert not prev.has_edge(u, v)
            assert curr.has_edge(u, v)


# ---------------------------------------------------------------------------
# Metric invariants on random graphs
# ---------------------------------------------------------------------------
class TestMetricInvariants:
    @given(edge_streams(max_nodes=10, max_edges=25), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_neighbourhood_scores_symmetric_and_nonnegative(self, stream, which):
        from repro.metrics.base import get_metric
        from repro.metrics.candidates import all_nonedge_pairs

        name = ("CN", "JC", "AA", "RA")[which]
        g = TemporalGraph.from_stream(stream)
        s = Snapshot(g, g.num_edges)
        pairs = all_nonedge_pairs(s)
        if len(pairs) == 0:
            return
        metric = get_metric(name).fit(s)
        scores = metric.score(pairs)
        assert (scores >= 0).all()
        flipped = metric.score(pairs[:, ::-1])
        assert np.allclose(scores, flipped)

    @given(edge_streams(max_nodes=10, max_edges=25))
    @settings(max_examples=25, deadline=None)
    def test_cn_bounded_by_min_degree(self, stream):
        from repro.metrics.base import get_metric
        from repro.metrics.candidates import all_nonedge_pairs

        g = TemporalGraph.from_stream(stream)
        s = Snapshot(g, g.num_edges)
        pairs = all_nonedge_pairs(s)
        if len(pairs) == 0:
            return
        scores = get_metric("CN").fit(s).score(pairs)
        for (u, v), score in zip(pairs, scores):
            assert score <= min(s.degree(int(u)), s.degree(int(v)))

    @given(edge_streams(max_nodes=10, max_edges=25))
    @settings(max_examples=25, deadline=None)
    def test_jc_in_unit_interval(self, stream):
        from repro.metrics.base import get_metric
        from repro.metrics.candidates import all_nonedge_pairs

        g = TemporalGraph.from_stream(stream)
        s = Snapshot(g, g.num_edges)
        pairs = all_nonedge_pairs(s)
        if len(pairs) == 0:
            return
        scores = get_metric("JC").fit(s).score(pairs)
        assert (scores >= 0).all() and (scores <= 1).all()


# ---------------------------------------------------------------------------
# Ranking invariants
# ---------------------------------------------------------------------------
class TestRankingInvariants:
    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=60
        ),
        st.integers(0, 70),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_top_k_returns_maximal_scores(self, scores, k, seed):
        scores = np.asarray(scores)
        pairs = np.column_stack(
            [np.zeros(len(scores), dtype=np.int64), np.arange(1, len(scores) + 1)]
        )
        top = top_k_pairs(pairs, scores, k, rng=seed)
        assert len(top) == min(k, len(scores))
        if 0 < k < len(scores):
            chosen = {int(v) - 1 for v in top[:, 1]}
            threshold = np.sort(scores)[::-1][k - 1]
            # Every chosen score >= every unchosen score.
            unchosen = [s for i, s in enumerate(scores) if i not in chosen]
            if unchosen:
                assert min(scores[list(chosen)]) >= max(unchosen) - 1e-9
            assert min(scores[list(chosen)]) >= threshold - 1e-9


# ---------------------------------------------------------------------------
# AUC properties
# ---------------------------------------------------------------------------
class TestAucProperties:
    @given(
        st.lists(st.booleans(), min_size=4, max_size=100),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_auc_complement_under_score_negation(self, labels, seed):
        y = np.asarray(labels, dtype=int)
        if y.sum() in (0, len(y)):
            y[0] = 1 - y[0]
        rng = np.random.default_rng(seed)
        scores = rng.random(len(y))
        auc = roc_auc_score(y, scores)
        assert roc_auc_score(y, -scores) == np.float64(1.0) - auc or abs(
            roc_auc_score(y, -scores) + auc - 1.0
        ) < 1e-12

    @given(st.integers(1, 50), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_auc_bounds(self, n_pos, n_neg):
        rng = np.random.default_rng(n_pos * 100 + n_neg)
        y = np.concatenate([np.ones(n_pos, int), np.zeros(n_neg, int)])
        scores = rng.random(len(y))
        assert 0.0 <= roc_auc_score(y, scores) <= 1.0


# ---------------------------------------------------------------------------
# Pair canonicalisation
# ---------------------------------------------------------------------------
class TestPairProperties:
    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_canonical_pair_idempotent_and_sorted(self, u, v):
        if u == v:
            return
        pair = canonical_pair(u, v)
        assert pair[0] < pair[1]
        assert canonical_pair(*pair) == pair
        assert canonical_pair(v, u) == pair
