"""Tests for the linear classifiers (SVM, logistic regression)."""

import numpy as np
import pytest

from repro.ml import LinearSVM, LogisticRegression, StandardScaler, accuracy_score


def make_blobs(n=600, d=4, sep=2.0, seed=0):
    """Two Gaussian blobs separated along the first axis."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = (rng.random(n) < 0.5).astype(int)
    x[:, 0] += sep * (2 * y - 1)
    return x, y


class TestLinearSVM:
    def test_separable_data_high_accuracy(self):
        x, y = make_blobs(sep=3.0)
        model = LinearSVM().fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.95

    def test_decision_function_sign_matches_predict(self):
        x, y = make_blobs()
        model = LinearSVM().fit(x, y)
        scores = model.decision_function(x)
        assert np.array_equal(model.predict(x), (scores > 0).astype(int))

    def test_coef_identifies_informative_feature(self):
        x, y = make_blobs(sep=3.0)
        model = LinearSVM().fit(x, y)
        assert np.argmax(np.abs(model.coef_)) == 0

    def test_normalized_coefficients_sum_to_one(self):
        x, y = make_blobs()
        model = LinearSVM().fit(x, y)
        assert model.normalized_coefficients().sum() == pytest.approx(1.0)
        assert (model.normalized_coefficients() >= 0).all()

    def test_balanced_class_weight_on_imbalance(self):
        """Balanced weighting must recover minority recall on 1:50 data."""
        rng = np.random.default_rng(1)
        n_pos, n_neg = 20, 1000
        x = np.vstack(
            [rng.normal(2.0, 1.0, size=(n_pos, 2)), rng.normal(-1.0, 1.0, size=(n_neg, 2))]
        )
        y = np.concatenate([np.ones(n_pos, dtype=int), np.zeros(n_neg, dtype=int)])
        balanced = LinearSVM(class_weight="balanced").fit(x, y)
        recall = balanced.predict(x)[:n_pos].mean()
        assert recall > 0.8

    def test_label_encoding_arbitrary_binary(self):
        x, y = make_blobs()
        model = LinearSVM().fit(x, np.where(y == 1, 7, -3))
        assert set(model.classes_) == {-3, 7}

    def test_rejects_non_binary(self):
        x, _ = make_blobs()
        with pytest.raises(ValueError, match="2 classes"):
            LinearSVM().fit(x, np.arange(len(x)) % 3)

    def test_rejects_nan(self):
        x, y = make_blobs(n=10)
        x[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            LinearSVM().fit(x, y)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(C=0.0)
        with pytest.raises(ValueError):
            LinearSVM(class_weight="bogus")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 2)))


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self):
        x, y = make_blobs(sep=3.0)
        model = LogisticRegression().fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.95

    def test_proba_in_unit_interval(self):
        x, y = make_blobs()
        model = LogisticRegression().fit(x, y)
        proba = model.predict_proba(x)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_proba_monotone_in_score(self):
        x, y = make_blobs()
        model = LogisticRegression().fit(x, y)
        scores = model.decision_function(x)
        proba = model.predict_proba(x)
        order = np.argsort(scores)
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_agrees_with_svm_on_easy_data(self):
        x, y = make_blobs(sep=3.0)
        xs = StandardScaler().fit_transform(x)
        svm_pred = LinearSVM().fit(xs, y).predict(xs)
        lr_pred = LogisticRegression().fit(xs, y).predict(xs)
        assert np.mean(svm_pred == lr_pred) > 0.97

    def test_regularization_shrinks_weights(self):
        x, y = make_blobs()
        loose = LogisticRegression(C=100.0).fit(x, y)
        tight = LogisticRegression(C=0.001).fit(x, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=-1.0)
