"""Tests for the directed link prediction extension."""

import numpy as np
import pytest

from repro.extensions.directed import (
    DirectedPreferentialAttachment,
    DirectedView,
    SharedFollowees,
    SharedFollowers,
    TransitivePaths,
    generate_directed_trace,
)
from repro.generators.subscription import subscription_config
from repro.graph.snapshots import Snapshot
from tests.conftest import build_trace


@pytest.fixture
def fan_graph():
    """Hand-built directed structure.

    Directions: 0->1, 0->2, 3->1, 3->2, 1->4, 2->4.
    (0 and 3 both follow 1 and 2; both 1 and 2 point at 4.)
    """
    trace = build_trace(
        [
            (0, 1, 0.0),
            (0, 2, 1.0),
            (1, 3, 2.0),
            (2, 3, 3.0),
            (1, 4, 4.0),
            (2, 4, 5.0),
        ]
    )
    snapshot = Snapshot(trace, trace.num_edges)
    directions = {
        (0, 1): (0, 1),
        (0, 2): (0, 2),
        (1, 3): (3, 1),
        (2, 3): (3, 2),
        (1, 4): (1, 4),
        (2, 4): (2, 4),
    }
    return snapshot, directions


class TestDirectedView:
    def test_degrees(self, fan_graph):
        snapshot, directions = fan_graph
        dv = DirectedView(snapshot, directions)
        assert dv.out_degree(0) == 2
        assert dv.in_degree(0) == 0
        assert dv.in_degree(4) == 2
        assert dv.out_degree(4) == 0
        assert dv.in_degree(1) == 2  # from 0 and 3
        assert dv.out_degree(1) == 1  # to 4

    def test_degree_arrays_align(self, fan_graph):
        snapshot, directions = fan_graph
        dv = DirectedView(snapshot, directions)
        for node in snapshot.nodes():
            idx = snapshot.node_pos[node]
            assert dv.out_degrees[idx] == dv.out_degree(node)
            assert dv.in_degrees[idx] == dv.in_degree(node)

    def test_mismatched_direction_rejected(self, fan_graph):
        snapshot, directions = fan_graph
        bad = dict(directions)
        bad[(0, 1)] = (0, 9)
        with pytest.raises(ValueError, match="does not match"):
            DirectedView(snapshot, bad)

    def test_default_orientation_for_missing_pairs(self, fan_graph):
        snapshot, _ = fan_graph
        dv = DirectedView(snapshot, {})
        # Canonical orientation u -> v for every pair.
        assert dv.out_degree(0) == 2
        assert dv.in_degree(4) == 2

    def test_first_creation_reciprocity_zero(self, fan_graph):
        snapshot, directions = fan_graph
        assert DirectedView(snapshot, directions).reciprocity() == 0.0


class TestDirectedMetrics:
    def test_shared_followees(self, fan_graph):
        snapshot, directions = fan_graph
        metric = SharedFollowees(directions).fit(snapshot)
        # out(0) = {1,2}, out(3) = {1,2}: overlap 2.
        assert metric.score(np.asarray([[0, 3]]))[0] == 2.0

    def test_shared_followers(self, fan_graph):
        snapshot, directions = fan_graph
        metric = SharedFollowers(directions).fit(snapshot)
        # in(1) = {0,3}, in(2) = {0,3}: overlap 2.
        assert metric.score(np.asarray([[1, 2]]))[0] == 2.0

    def test_transitive_paths(self, fan_graph):
        snapshot, directions = fan_graph
        metric = TransitivePaths(directions).fit(snapshot)
        # 0 -> {1,2} -> 4: two directed 2-paths.
        assert metric.score(np.asarray([[0, 4]]))[0] == 2.0

    def test_directed_pa(self, fan_graph):
        snapshot, directions = fan_graph
        metric = DirectedPreferentialAttachment(directions).fit(snapshot)
        # Best orientation 0 -> 1: out(0)=2, in(1)=2 -> 4.
        assert metric.score(np.asarray([[0, 1]]))[0] == 4.0

    def test_orientation_symmetry(self, fan_graph):
        snapshot, directions = fan_graph
        for cls in (SharedFollowees, SharedFollowers, TransitivePaths,
                    DirectedPreferentialAttachment):
            metric = cls(directions).fit(snapshot)
            a = metric.score(np.asarray([[0, 4]]))
            b = metric.score(np.asarray([[4, 0]]))
            assert a[0] == b[0], cls.name

    def test_empty_pairs(self, fan_graph):
        snapshot, directions = fan_graph
        metric = SharedFollowees(directions).fit(snapshot)
        assert metric.score(np.zeros((0, 2), dtype=np.int64)).shape == (0,)


class TestGeneratedDirections:
    def test_every_edge_has_a_direction(self):
        config = subscription_config(
            total_nodes=200, total_edges=600, duration_days=30
        )
        trace, directions = generate_directed_trace(config, seed=0)
        assert set(directions) == {(u, v) if u < v else (v, u) for u, v, _ in trace.edges()}
        for pair, (src, dst) in directions.items():
            assert {src, dst} == set(pair)

    def test_subscription_directions_point_at_creators(self):
        """In-degree concentrates far above out-degree on a subscription
        network — the asymmetry undirected PA cannot see."""
        config = subscription_config(
            total_nodes=400, total_edges=1200, duration_days=40
        )
        trace, directions = generate_directed_trace(config, seed=1)
        snapshot = Snapshot(trace, trace.num_edges)
        dv = DirectedView(snapshot, directions)
        assert dv.in_degrees.max() > 2 * dv.out_degrees.max()

    def test_metrics_run_in_pipeline(self):
        from repro.eval.experiment import evaluate_step, prediction_steps
        from repro.graph.snapshots import snapshot_sequence

        config = subscription_config(
            total_nodes=300, total_edges=900, duration_days=40
        )
        trace, directions = generate_directed_trace(config, seed=2)
        snaps = snapshot_sequence(trace, trace.num_edges // 6)
        prev, _, truth = list(prediction_steps(snaps))[-1]
        result = evaluate_step(
            DirectedPreferentialAttachment(directions), prev, truth, rng=0
        )
        assert result.metric == "dPA"
        assert result.outcome.k == len(truth)
