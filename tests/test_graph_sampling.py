"""Unit tests for snowball sampling (repro.graph.sampling)."""

import numpy as np
import pytest

from repro.graph.sampling import snowball_sample
from repro.graph.snapshots import Snapshot


class TestSnowballSample:
    def test_target_size(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        sample = snowball_sample(s, fraction=0.3, rng=0)
        assert len(sample) == round(0.3 * s.num_nodes)

    def test_full_fraction_returns_everything(self, tiny_snapshot):
        sample = snowball_sample(tiny_snapshot, fraction=1.0, seed_node=0)
        assert sample == set(tiny_snapshot.nodes())

    def test_contains_seed(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        seed = s.node_list[0]
        sample = snowball_sample(s, fraction=0.2, seed_node=seed)
        assert seed in sample

    def test_bfs_locality(self, tiny_snapshot):
        # From node 5, a 3-node sample must stay in its BFS vicinity.
        sample = snowball_sample(tiny_snapshot, fraction=3 / 8, seed_node=5)
        assert 5 in sample
        assert sample <= {5, 4, 6, 2, 7, 3, 1}

    def test_deterministic_with_seed_node(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        seed = s.node_list[3]
        a = snowball_sample(s, fraction=0.25, seed_node=seed)
        b = snowball_sample(s, fraction=0.25, seed_node=seed)
        assert a == b

    def test_invalid_fraction(self, tiny_snapshot):
        with pytest.raises(ValueError):
            snowball_sample(tiny_snapshot, fraction=0.0)
        with pytest.raises(ValueError):
            snowball_sample(tiny_snapshot, fraction=1.5)

    def test_unknown_seed_node(self, tiny_snapshot):
        with pytest.raises(ValueError):
            snowball_sample(tiny_snapshot, fraction=0.5, seed_node=999)

    def test_disconnected_graph_restarts(self):
        from tests.conftest import build_trace

        # Two components: 0-1-2 and 3-4.
        trace = build_trace([(0, 1, 0.0), (1, 2, 1.0), (3, 4, 2.0)])
        s = Snapshot(trace, trace.num_edges)
        sample = snowball_sample(s, fraction=1.0, seed_node=0)
        assert sample == {0, 1, 2, 3, 4}

    def test_same_seed_grows_consistently(self, small_facebook):
        """Re-sampling a later snapshot with the same seed stays aligned
        (Section 5.1's train/test population overlap)."""
        early = Snapshot(small_facebook, small_facebook.num_edges // 2)
        late = Snapshot(small_facebook, small_facebook.num_edges)
        seed = early.node_list[0]
        a = snowball_sample(early, fraction=0.3, seed_node=seed)
        b = snowball_sample(late, fraction=0.3, seed_node=seed)
        overlap = len(a & b) / len(a)
        assert overlap > 0.5
