"""Tests for candidate-pair enumeration."""

import networkx as nx
import numpy as np
import pytest

from repro.metrics.candidates import (
    all_nonedge_pairs,
    candidate_pairs,
    num_nonedge_pairs,
    random_nonedge_pairs,
    seed_candidate_cache,
    two_hop_pairs,
)


class TestTwoHopPairs:
    def test_matches_networkx_distance_two(self, tiny_snapshot):
        g = tiny_snapshot.to_networkx()
        expected = set()
        for u in g:
            lengths = nx.single_source_shortest_path_length(g, u, cutoff=2)
            for v, d in lengths.items():
                if d == 2:
                    expected.add((min(u, v), max(u, v)))
        ours = {tuple(p) for p in two_hop_pairs(tiny_snapshot)}
        assert ours == expected

    def test_no_existing_edges(self, facebook_snapshots):
        s = facebook_snapshots[0]
        for u, v in two_hop_pairs(s)[:200]:
            assert not s.has_edge(int(u), int(v))

    def test_canonical_and_unique(self, facebook_snapshots):
        s = facebook_snapshots[0]
        pairs = two_hop_pairs(s)
        assert (pairs[:, 0] < pairs[:, 1]).all()
        assert len({tuple(p) for p in pairs}) == len(pairs)


class TestSeedCandidateCache:
    """Validation/canonicalisation of externally seeded candidate arrays."""

    def test_canonical_array_installed_by_identity(self, tiny_snapshot):
        canon = two_hop_pairs(tiny_snapshot).copy()
        seed_candidate_cache(tiny_snapshot, canon)
        assert two_hop_pairs(tiny_snapshot) is canon

    def test_swapped_columns_are_canonicalised(self, tiny_snapshot):
        canon = two_hop_pairs(tiny_snapshot).copy()
        seed_candidate_cache(tiny_snapshot, canon[:, ::-1])
        assert np.array_equal(two_hop_pairs(tiny_snapshot), canon)

    def test_shuffled_rows_are_resorted(self, tiny_snapshot):
        canon = two_hop_pairs(tiny_snapshot).copy()
        rng = np.random.default_rng(0)
        seed_candidate_cache(tiny_snapshot, canon[rng.permutation(len(canon))])
        assert np.array_equal(two_hop_pairs(tiny_snapshot), canon)

    def test_bad_shape_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError, match="shape"):
            seed_candidate_cache(tiny_snapshot, np.asarray([0, 1, 2]))

    def test_float_dtype_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError, match="integer"):
            seed_candidate_cache(tiny_snapshot, np.asarray([[0.5, 1.5]]))

    def test_self_pair_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError, match="self-pair"):
            seed_candidate_cache(tiny_snapshot, np.asarray([[3, 3]]))

    def test_unknown_node_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError, match="unknown node"):
            seed_candidate_cache(tiny_snapshot, np.asarray([[0, 999]]))

    def test_duplicate_pair_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError, match="duplicate"):
            seed_candidate_cache(tiny_snapshot, np.asarray([[0, 4], [4, 0]]))

    def test_empty_seed_accepted(self, tiny_snapshot):
        seed_candidate_cache(tiny_snapshot, np.zeros((0, 2), dtype=np.int64))
        assert len(two_hop_pairs(tiny_snapshot)) == 0


class TestAllNonedgePairs:
    def test_count_formula(self, tiny_snapshot):
        pairs = all_nonedge_pairs(tiny_snapshot)
        n = tiny_snapshot.num_nodes
        assert len(pairs) == n * (n - 1) // 2 - tiny_snapshot.num_edges
        assert len(pairs) == num_nonedge_pairs(tiny_snapshot)

    def test_superset_of_two_hop(self, tiny_snapshot):
        all_set = {tuple(p) for p in all_nonedge_pairs(tiny_snapshot)}
        two_set = {tuple(p) for p in two_hop_pairs(tiny_snapshot)}
        assert two_set <= all_set


class TestCandidateDispatch:
    def test_strategies(self, tiny_snapshot):
        assert len(candidate_pairs(tiny_snapshot, "all")) >= len(
            candidate_pairs(tiny_snapshot, "two_hop")
        )

    def test_unknown_strategy(self, tiny_snapshot):
        with pytest.raises(ValueError, match="unknown candidate strategy"):
            candidate_pairs(tiny_snapshot, "five_hop")


class TestRandomNonedgePairs:
    def test_returns_k_distinct_nonedges(self, tiny_snapshot):
        pairs = random_nonedge_pairs(tiny_snapshot, 5, rng=0)
        assert len(pairs) == 5
        assert len(set(pairs)) == 5
        for u, v in pairs:
            assert u < v
            assert not tiny_snapshot.has_edge(u, v)

    def test_respects_exclusion(self, tiny_snapshot):
        exclude = {tuple(p) for p in all_nonedge_pairs(tiny_snapshot)[:10]}
        pairs = random_nonedge_pairs(tiny_snapshot, 6, rng=0, exclude=exclude)
        assert not (set(pairs) & exclude)

    def test_caps_at_available(self, tiny_snapshot):
        available = num_nonedge_pairs(tiny_snapshot)
        pairs = random_nonedge_pairs(tiny_snapshot, available + 50, rng=0)
        assert len(pairs) == available

    def test_deterministic(self, tiny_snapshot):
        a = random_nonedge_pairs(tiny_snapshot, 4, rng=3)
        b = random_nonedge_pairs(tiny_snapshot, 4, rng=3)
        assert a == b
