"""Tests for top-k ranking and accuracy accounting."""

import numpy as np
import pytest

from repro.eval.accuracy import (
    StepOutcome,
    absolute_accuracy,
    accuracy_ratio,
    expected_random_hits,
    score_prediction,
)
from repro.eval.ranking import top_k_pairs
from repro.metrics.candidates import num_nonedge_pairs


class TestTopKPairs:
    def test_picks_highest_scores(self):
        pairs = np.asarray([[0, 1], [0, 2], [0, 3], [0, 4]])
        scores = np.asarray([0.1, 0.9, 0.5, 0.7])
        top = top_k_pairs(pairs, scores, 2, rng=0)
        assert {tuple(p) for p in top} == {(0, 2), (0, 4)}

    def test_k_larger_than_input_returns_all(self):
        pairs = np.asarray([[0, 1], [0, 2]])
        top = top_k_pairs(pairs, np.asarray([1.0, 2.0]), 10, rng=0)
        assert len(top) == 2

    def test_k_zero(self):
        pairs = np.asarray([[0, 1]])
        assert len(top_k_pairs(pairs, np.asarray([1.0]), 0, rng=0)) == 0

    def test_tie_breaking_is_random(self):
        pairs = np.asarray([[0, i] for i in range(1, 101)])
        scores = np.ones(100)
        a = {tuple(p) for p in top_k_pairs(pairs, scores, 10, rng=1)}
        b = {tuple(p) for p in top_k_pairs(pairs, scores, 10, rng=2)}
        assert a != b  # overwhelmingly likely

    def test_ties_do_not_displace_strictly_better(self):
        pairs = np.asarray([[0, 1], [0, 2], [0, 3], [0, 4]])
        scores = np.asarray([5.0, 1.0, 1.0, 1.0])
        for seed in range(5):
            top = top_k_pairs(pairs, scores, 2, rng=seed)
            assert (0, 1) in {tuple(p) for p in top}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            top_k_pairs(np.asarray([[0, 1]]), np.asarray([1.0, 2.0]), 1)

    def test_deterministic_given_seed(self):
        pairs = np.asarray([[0, i] for i in range(1, 51)])
        scores = np.ones(50)
        a = top_k_pairs(pairs, scores, 5, rng=7).tolist()
        b = top_k_pairs(pairs, scores, 5, rng=7).tolist()
        assert a == b


class TestExpectedRandomHits:
    def test_formula(self, tiny_snapshot):
        m = num_nonedge_pairs(tiny_snapshot)
        assert expected_random_hits(tiny_snapshot, 4) == pytest.approx(16 / m)

    def test_truth_size_override(self, tiny_snapshot):
        m = num_nonedge_pairs(tiny_snapshot)
        assert expected_random_hits(tiny_snapshot, 4, truth_size=2) == pytest.approx(
            8 / m
        )

    def test_negative_k_rejected(self, tiny_snapshot):
        with pytest.raises(ValueError):
            expected_random_hits(tiny_snapshot, -1)

    def test_monte_carlo_agreement(self, tiny_snapshot):
        """The analytic expectation matches simulated random prediction."""
        from repro.metrics.candidates import all_nonedge_pairs, random_nonedge_pairs

        rng = np.random.default_rng(0)
        nonedges = [tuple(p) for p in all_nonedge_pairs(tiny_snapshot)]
        truth = set(nonedges[:5])
        k = 5
        trials = 3000
        hits = sum(
            len(set(random_nonedge_pairs(tiny_snapshot, k, rng)) & truth)
            for _ in range(trials)
        )
        analytic = expected_random_hits(tiny_snapshot, k, truth_size=len(truth))
        assert hits / trials == pytest.approx(analytic, rel=0.15)


class TestAccuracyHelpers:
    def test_absolute(self):
        assert absolute_accuracy(3, 10) == 0.3
        assert absolute_accuracy(0, 0) == 0.0

    def test_ratio(self):
        assert accuracy_ratio(4, 2.0) == 2.0
        assert accuracy_ratio(4, 0.0) == 0.0

    def test_score_prediction(self, tiny_snapshot):
        truth = {(0, 4), (0, 5), (1, 7)}
        predicted = {(0, 4), (2, 7), (1, 7)}
        outcome = score_prediction(tiny_snapshot, predicted, truth)
        assert outcome.hits == 2
        assert outcome.k == 3
        assert outcome.correct == {(0, 4), (1, 7)}
        assert outcome.absolute == pytest.approx(2 / 3)
        assert outcome.ratio == outcome.hits / outcome.expected_random

    def test_outcome_properties(self):
        outcome = StepOutcome(k=10, hits=5, expected_random=0.5, correct=set())
        assert outcome.absolute == 0.5
        assert outcome.ratio == 10.0
