"""Equivalence suite for the columnar array-backed core.

Every query the columnar ``TemporalGraph`` / ``Snapshot`` stack answers with
``searchsorted`` / CSR / scatter kernels is checked here against an
independent dict-of-sets reference implementation built edge-by-edge from
the same hypothesis-generated stream — adjacency, degrees, candidate
enumeration, temporal activity, snapshot deltas, and views.  A pickle
round-trip section covers the compact worker-transport state.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, SnapshotView, new_edges_between, snapshot_sequence
from repro.metrics.candidates import all_nonedge_pairs, two_hop_pairs
from repro.temporal.activity import node_idle_times, node_recent_edges


# ---------------------------------------------------------------------------
# Independent dict-of-sets reference core
# ---------------------------------------------------------------------------
class ReferenceCore:
    """Naive per-event reference: dict-of-sets adjacency + Python loops."""

    def __init__(self, stream, cutoff):
        self.events = list(stream)[:cutoff]
        self.adj: dict[int, set[int]] = {}
        self.edge_time: dict[tuple[int, int], float] = {}
        self.node_times: dict[int, list[float]] = {}
        for u, v, t in self.events:
            a, b = (u, v) if u < v else (v, u)
            self.adj.setdefault(a, set()).add(b)
            self.adj.setdefault(b, set()).add(a)
            self.edge_time[(a, b)] = t
            self.node_times.setdefault(a, []).append(t)
            self.node_times.setdefault(b, []).append(t)
        self.time = self.events[-1][2] if self.events else 0.0

    def nodes(self):
        return sorted(self.adj)

    def degree(self, u):
        return len(self.adj[u])

    def two_hop(self):
        pairs = set()
        for u in self.adj:
            for w in self.adj[u]:
                for v in self.adj[w]:
                    if v > u and v not in self.adj[u]:
                        pairs.add((u, v))
        return pairs

    def nonedges(self):
        nodes = self.nodes()
        return {
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if v not in self.adj[u]
        }

    def idle(self, u, now):
        times = [t for t in self.node_times[u] if t <= now]
        return now - max(times) if times else np.inf

    def recent(self, u, now, window):
        return sum(1 for t in self.node_times[u] if now - window < t <= now)


@st.composite
def traces(draw, max_nodes=10, max_edges=24):
    """Random streams with sparse non-contiguous ids and duplicate pairs."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    count = draw(st.integers(min_value=1, max_value=max_edges))
    raw = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=count,
            max_size=count,
        ).filter(lambda pairs: any(a != b for a, b in pairs))
    )
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 50, allow_nan=False, allow_infinity=False),
                min_size=len(raw),
                max_size=len(raw),
            )
        )
    )
    # Sparse ids exercise the remap table; duplicates exercise dedup.
    return [
        (3 * a + 7, 3 * b + 7, t) for (a, b), t in zip(raw, times) if a != b
    ]


def build_both(stream, cutoff=None):
    trace = TemporalGraph.from_stream(stream)
    cutoff = trace.num_edges if cutoff is None else cutoff
    snapshot = Snapshot(trace, cutoff)
    # The reference must see the deduplicated stream the trace kept.
    reference = ReferenceCore(trace.edges(), cutoff)
    return trace, snapshot, reference


# ---------------------------------------------------------------------------
# Structural equivalence
# ---------------------------------------------------------------------------
class TestStructure:
    @given(traces())
    @settings(max_examples=80, deadline=None)
    def test_nodes_degrees_neighbors(self, stream):
        _, snapshot, ref = build_both(stream)
        assert snapshot.node_list == ref.nodes()
        for u in ref.nodes():
            assert snapshot.degree(u) == ref.degree(u)
            assert snapshot.neighbors(u) == ref.adj[u]

    @given(traces())
    @settings(max_examples=80, deadline=None)
    def test_has_edge_matches(self, stream):
        _, snapshot, ref = build_both(stream)
        nodes = ref.nodes()
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue  # self-pairs raise by contract
                expected = (min(u, v), max(u, v)) in ref.edge_time
                assert snapshot.has_edge(u, v) == expected

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_matrix_matches(self, stream):
        _, snapshot, ref = build_both(stream)
        matrix = snapshot.adjacency_matrix().toarray()
        nodes = ref.nodes()
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                assert matrix[i, j] == (1.0 if v in ref.adj[u] else 0.0)

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_prefix_snapshot_matches(self, stream):
        trace = TemporalGraph.from_stream(stream)
        for cutoff in range(1, trace.num_edges + 1):
            snapshot = Snapshot(trace, cutoff)
            ref = ReferenceCore(trace.edges(), cutoff)
            assert snapshot.node_list == ref.nodes()
            assert {
                (u, v) for u, v in snapshot.edges()
            } == set(ref.edge_time)


# ---------------------------------------------------------------------------
# Candidate enumeration equivalence
# ---------------------------------------------------------------------------
class TestCandidates:
    @given(traces())
    @settings(max_examples=80, deadline=None)
    def test_two_hop_pairs_match(self, stream):
        _, snapshot, ref = build_both(stream)
        got = {tuple(p) for p in two_hop_pairs(snapshot).tolist()}
        assert got == ref.two_hop()

    @given(traces())
    @settings(max_examples=80, deadline=None)
    def test_all_nonedge_pairs_match(self, stream):
        _, snapshot, ref = build_both(stream)
        got = {tuple(p) for p in all_nonedge_pairs(snapshot).tolist()}
        assert got == ref.nonedges()

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_candidate_order_is_row_major(self, stream):
        """Pair order feeds RNG tie-breaking, so it must be deterministic:
        sorted by snapshot position of u, then of v."""
        _, snapshot, _ = build_both(stream)
        for pairs in (two_hop_pairs(snapshot), all_nonedge_pairs(snapshot)):
            if len(pairs) < 2:
                continue
            rows = snapshot.positions_of(pairs[:, 0])
            cols = snapshot.positions_of(pairs[:, 1])
            keys = list(zip(rows.tolist(), cols.tolist()))
            assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Temporal equivalence
# ---------------------------------------------------------------------------
class TestTemporal:
    @given(traces(), st.floats(0.5, 20))
    @settings(max_examples=80, deadline=None)
    def test_idle_and_recent_match_reference(self, stream, window):
        trace, snapshot, ref = build_both(stream)
        idle = node_idle_times(snapshot)
        recent = node_recent_edges(snapshot, window)
        for i, u in enumerate(snapshot.node_list):
            assert idle[i] == ref.idle(u, snapshot.time)
            assert recent[i] == ref.recent(u, snapshot.time, window)
            # And the scalar trace API agrees with the vectorised kernel.
            assert idle[i] == trace.idle_time(u, snapshot.time)
            assert recent[i] == trace.recent_edge_count(u, snapshot.time, window)

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_new_edges_between_matches(self, stream):
        trace = TemporalGraph.from_stream(stream)
        if trace.num_edges < 2:
            return
        mid = trace.num_edges // 2
        previous = Snapshot(trace, mid)
        current = Snapshot(trace, trace.num_edges)
        known = set(previous.node_list)
        expected = {
            (u, v)
            for u, v, _ in trace.edge_slice(mid, trace.num_edges)
            if u in known and v in known
        }
        assert new_edges_between(previous, current) == expected


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------
class TestViews:
    @given(traces(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_view_matches_filtered_reference(self, stream, rnd):
        _, snapshot, ref = build_both(stream)
        nodes = ref.nodes()
        keep = sorted(rnd.sample(nodes, max(1, len(nodes) // 2)))
        view = SnapshotView(snapshot, keep)
        assert view.node_list == keep
        kept = set(keep)
        expected_edges = {
            (u, v) for (u, v) in ref.edge_time if u in kept and v in kept
        }
        assert set(view.edges()) == expected_edges
        for u in keep:
            assert view.neighbors(u) == ref.adj[u] & kept


# ---------------------------------------------------------------------------
# Pickle round-trips (worker transport)
# ---------------------------------------------------------------------------
class TestPickle:
    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_trace_round_trip(self, stream):
        trace = TemporalGraph.from_stream(stream)
        clone = pickle.loads(pickle.dumps(trace))
        assert list(clone.edges()) == list(trace.edges())
        assert sorted(clone.nodes()) == sorted(trace.nodes())
        for u in trace.nodes():
            assert clone.neighbors(u) == trace.neighbors(u)
            assert clone.node_arrival_time(u) == trace.node_arrival_time(u)

    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_snapshot_round_trip_drops_cache(self, stream):
        trace = TemporalGraph.from_stream(stream)
        snapshot = Snapshot(trace, trace.num_edges)
        two_hop_pairs(snapshot)  # populate the cache
        assert snapshot.cache
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.cache == {}
        assert clone.node_list == snapshot.node_list
        assert list(clone.edges()) == list(snapshot.edges())
        assert clone.time == snapshot.time
        np.testing.assert_array_equal(
            clone.degree_array(), snapshot.degree_array()
        )

    def test_trace_pickle_preserves_isolated_nodes(self):
        trace = TemporalGraph.from_stream([(1, 2, 0.0), (2, 3, 1.0)])
        trace.add_node(99, t=0.5)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.has_node(99)
        assert clone.node_arrival_time(99) == 0.5

    def test_snapshot_sequence_snapshots_pickle_compactly(self):
        stream = [(i, i + 1, float(i)) for i in range(20)]
        trace = TemporalGraph.from_stream(stream)
        for snapshot in snapshot_sequence(trace, delta=5):
            clone = pickle.loads(pickle.dumps(snapshot))
            assert clone.node_list == snapshot.node_list
            assert clone.cutoff == snapshot.cutoff
