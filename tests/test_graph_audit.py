"""Graph-integrity auditor: clean graphs pass, every hand-broken
columnar invariant is caught by name.

Each breakage test corrupts the graph's internals the way a buggy kernel
or deserialiser would, invalidates the column/index caches so the auditor
sees the corrupted state, and asserts the *specific* invariant fires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import presets
from repro.graph import TemporalGraph, audit_graph
from repro.graph.audit import AuditReport, TraceAuditError, require_clean
from repro.graph.dyngraph import StreamIndex


@pytest.fixture()
def graph():
    return presets.facebook_like(scale=0.1, seed=3)


def _invalidate(g: TemporalGraph) -> None:
    """Force columns() and stream_index() to rebuild from the raw lists."""
    g._cols = None
    g._index = None


def violated(report: AuditReport) -> set:
    return {v.invariant for v in report.violations}


# ---------------------------------------------------------------------------
# Clean graphs
# ---------------------------------------------------------------------------
class TestCleanGraphs:
    def test_generated_preset_is_clean(self, graph):
        report = audit_graph(graph)
        assert report.ok
        assert report.num_edges == graph.num_edges
        assert len(report.checks_run) == 12
        assert "ok" in report.summary()

    def test_empty_graph_is_clean(self):
        report = audit_graph(TemporalGraph())
        assert report.ok
        assert len(report.checks_run) == 12

    def test_snapshot_check_can_be_skipped(self, graph):
        report = audit_graph(graph, snapshot_check=False)
        assert report.ok
        assert "csr_degree_total" not in report.checks_run

    def test_require_clean_passes_silently(self, graph):
        require_clean(graph)


# ---------------------------------------------------------------------------
# One test per hand-broken invariant
# ---------------------------------------------------------------------------
class TestBrokenInvariants:
    def test_nonfinite_time(self, graph):
        graph._ts[0] = float("nan")
        _invalidate(graph)
        assert "time_finite" in violated(audit_graph(graph))

    def test_negative_time(self, graph):
        graph._ts[0] = -4.25
        _invalidate(graph)
        assert "time_nonnegative" in violated(audit_graph(graph))

    def test_unsorted_time(self, graph):
        graph._ts[0] = graph._ts[-1] + 1.0
        _invalidate(graph)
        assert "time_sorted" in violated(audit_graph(graph))

    def test_self_loop(self, graph):
        graph._vs[0] = graph._us[0]
        _invalidate(graph)
        assert "no_self_loops" in violated(audit_graph(graph))

    def test_non_canonical_pair(self, graph):
        i = next(
            k for k in range(graph.num_edges) if graph._us[k] != graph._vs[k]
        )
        graph._us[i], graph._vs[i] = graph._vs[i], graph._us[i]
        _invalidate(graph)
        assert "canonical_pairs" in violated(audit_graph(graph))

    def test_duplicate_edge(self, graph):
        assert (graph._us[0], graph._vs[0]) != (graph._us[1], graph._vs[1])
        graph._us[1] = graph._us[0]
        graph._vs[1] = graph._vs[0]
        _invalidate(graph)
        assert "no_duplicate_edges" in violated(audit_graph(graph))

    def _forged_index(self, graph, **overrides) -> StreamIndex:
        real = graph.stream_index()
        fields = {
            "node_ids": real.node_ids,
            "eu": real.eu,
            "ev": real.ev,
            "first_seen": real.first_seen,
        }
        fields.update(overrides)
        return StreamIndex(**fields)

    def _install_index(self, graph, index) -> None:
        graph._index = index
        graph._index_len = graph.num_edges

    def test_unsorted_remap_ids(self, graph):
        forged = self._forged_index(
            graph, node_ids=graph.stream_index().node_ids[::-1].copy()
        )
        self._install_index(graph, forged)
        report = audit_graph(graph)
        assert "remap_ids_sorted" in violated(report)

    def test_non_bijective_remap(self, graph):
        eu = graph.stream_index().eu.copy()
        eu[0] = (eu[0] + 1) % len(graph.stream_index().node_ids)
        self._install_index(graph, self._forged_index(graph, eu=eu))
        assert "remap_bijective" in violated(audit_graph(graph))

    def test_inconsistent_first_seen(self, graph):
        first_seen = graph.stream_index().first_seen.copy()
        first_seen[0] += 1
        self._install_index(
            graph, self._forged_index(graph, first_seen=first_seen)
        )
        assert "first_seen_consistent" in violated(audit_graph(graph))

    def test_adjacency_degree_total(self, graph):
        node = next(iter(graph._adj))
        graph._adj[node].add(10**9)
        assert "adjacency_degree_total" in violated(audit_graph(graph))

    def test_edge_time_table(self, graph):
        key = next(iter(graph._edge_times))
        del graph._edge_times[key]
        assert "edge_time_table" in violated(audit_graph(graph))

    def test_csr_degree_total(self, graph, monkeypatch):
        from repro.graph.snapshots import Snapshot

        def doctored(self):
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            return indptr, np.zeros(0, dtype=np.int64)

        monkeypatch.setattr(Snapshot, "csr_structure", doctored)
        assert "csr_degree_total" in violated(audit_graph(graph))

    def test_violation_reports_name_count_and_example(self, graph):
        graph._ts[0] = float("nan")
        graph._ts[1] = float("nan")
        _invalidate(graph)
        report = audit_graph(graph)
        v = next(x for x in report.violations if x.invariant == "time_finite")
        assert v.count == 2
        assert "non-finite" in v.detail
        assert "2 offenders" in str(v)
        assert "VIOLATED" in report.summary()


# ---------------------------------------------------------------------------
# Delta-engine audit: clean engines pass, each corrupted structure is named
# ---------------------------------------------------------------------------
class TestDeltaAudit:
    @pytest.fixture()
    def delta(self, graph):
        from repro.graph.delta import DeltaGraph

        events = list(graph.edges())
        engine = DeltaGraph()
        engine.apply(events[: len(events) // 2])
        engine.apply(events[len(events) // 2 :])
        return engine

    def test_clean_delta_passes_all_checks(self, delta):
        from repro.graph import audit_delta

        report = audit_delta(delta)
        assert report.ok, report.summary()
        # the 12 core invariants plus the 5 delta-structure checks.
        assert len(report.checks_run) == 17

    def test_empty_delta_is_clean(self):
        from repro.graph import DeltaGraph, audit_delta

        report = audit_delta(DeltaGraph())
        assert report.ok
        assert len(report.checks_run) == 17

    def test_stale_csr_row(self, delta):
        delta._adj_keys = delta._adj_keys.copy()
        delta._adj_keys[0] += 1
        assert "delta_csr_adjacency" in violated(delta.audit())

    def test_orphan_candidate_pair(self, delta):
        # Forge a candidate entry for a pair that is actually an edge.
        key = int(delta._adj_keys[0])
        at = int(np.searchsorted(delta._cand_keys, key))
        delta._cand_keys = np.insert(delta._cand_keys, at, key)
        delta._cand_cn = np.insert(delta._cand_cn, at, 1)
        delta._dirty = np.insert(delta._dirty, at, False)
        delta._scores = {
            name: np.insert(arr, at, 0.0)
            for name, arr in delta._scores.items()
        }
        assert "delta_candidates" in violated(delta.audit())

    def test_wrong_cn_count(self, delta):
        delta._cand_cn = delta._cand_cn.copy()
        delta._cand_cn[0] += 1
        assert "delta_candidates" in violated(delta.audit())

    def test_wrong_degree(self, delta):
        delta._deg = delta._deg.copy()
        delta._deg[0] += 1
        assert "delta_degrees" in violated(delta.audit())

    def test_wrong_last_active(self, delta):
        delta._last_active = delta._last_active.copy()
        delta._last_active[0] -= 1.0
        assert "delta_last_active" in violated(delta.audit())

    def test_wrong_first_seen(self, delta):
        forged = delta._first_seen.copy()
        forged[0] += 1
        delta.trace._install_stream_caches(
            (delta._cu, delta._cv, delta._ct),
            StreamIndex(delta._node_ids, delta._eu, delta._ev, forged),
        )
        assert "first_seen_consistent" in violated(delta.audit())

    def test_uninstalled_column_cache(self, delta):
        # Replacing a maintained column with a copy breaks the identity
        # between the engine's arrays and the trace's cache.
        delta._cu = delta._cu.copy()
        assert "delta_columns_installed" in violated(delta.audit())


# ---------------------------------------------------------------------------
# require_clean and the experiment-runner pre-flight
# ---------------------------------------------------------------------------
class TestRequireClean:
    def test_raises_trace_audit_error_with_context(self, graph):
        graph._ts[0] = float("nan")
        _invalidate(graph)
        with pytest.raises(TraceAuditError, match="time_finite") as excinfo:
            require_clean(graph, context="unit test")
        assert str(excinfo.value).startswith("unit test: ")
        assert not excinfo.value.report.ok
        # a ValueError subclass, so the CLI's error handler catches it.
        assert isinstance(excinfo.value, ValueError)

    def test_build_plan_preflight_rejects_corrupted_trace(
        self, graph, monkeypatch
    ):
        import repro.eval.runner as runner

        graph._ts[0] = float("nan")
        _invalidate(graph)
        monkeypatch.setattr(runner, "_load_trace", lambda spec: graph)
        spec = runner.ExperimentSpec(dataset="facebook", scale=0.1)
        with pytest.raises(TraceAuditError, match="pre-flight audit"):
            runner.build_plan(spec)

    def test_build_plan_preflight_accepts_clean_trace(self, monkeypatch):
        import repro.eval.runner as runner

        spec = runner.ExperimentSpec(dataset="facebook", scale=0.1, repeats=1)
        plan = runner.build_plan(spec)
        assert plan.steps
