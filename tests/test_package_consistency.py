"""Cross-module consistency checks.

These catch drift between constants defined in different modules — the
kind of breakage unit tests scoped to one module never see.
"""

import importlib
import pkgutil

import repro
from repro.eval.meta import FEATURE_NAMES
from repro.generators import presets
from repro.graph.stats import GraphFeatures
from repro.metrics import CLASSIFIER_FEATURES, FIGURE5_METRICS
from repro.metrics.base import all_metric_names
from repro.ml import CLASSIFIERS


class TestMetricConstants:
    def test_figure5_metrics_are_registered(self):
        assert set(FIGURE5_METRICS) <= set(all_metric_names())

    def test_classifier_features_are_registered(self):
        assert set(CLASSIFIER_FEATURES) <= set(all_metric_names())

    def test_classifier_features_has_fourteen(self):
        """The paper feeds exactly 14 similarity metrics to classifiers."""
        assert len(CLASSIFIER_FEATURES) == 14

    def test_figure5_has_both_katz_variants(self):
        assert "Katz_lr" in FIGURE5_METRICS
        assert "Katz_sc" in FIGURE5_METRICS


class TestFeatureNames:
    def test_meta_features_match_dataclass(self):
        assert tuple(FEATURE_NAMES) == tuple(
            GraphFeatures.__dataclass_fields__["FIELD_NAMES"].default
        )

    def test_every_feature_is_an_attribute(self):
        fields = set(GraphFeatures.__dataclass_fields__)
        assert set(FEATURE_NAMES) <= fields


class TestPresets:
    def test_dataset_names_align_with_deltas(self):
        assert set(presets.DATASETS) == set(presets.SNAPSHOT_DELTAS)

    def test_paper_filter_params_cover_datasets(self):
        from repro.temporal.filters import PAPER_PARAMS

        assert set(PAPER_PARAMS) == set(presets.DATASETS)


class TestClassifiers:
    def test_registry_instantiable(self):
        for name, factory in CLASSIFIERS.items():
            model = factory()
            assert hasattr(model, "fit"), name
            assert hasattr(model, "decision_function"), name


class TestImports:
    def test_every_module_imports(self):
        """Every submodule of repro imports cleanly (no stale imports)."""
        failures = []
        for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                importlib.import_module(module.name)
            except Exception as exc:  # pragma: no cover - report only
                failures.append((module.name, exc))
        assert not failures, failures

    def test_public_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
