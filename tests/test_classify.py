"""Tests for classification-based prediction (features, sampling, pipeline)."""

import numpy as np
import pytest

from repro.classify import (
    ClassificationPredictor,
    FeatureExtractor,
    labeled_pairs,
    sampled_instance,
    undersample,
)
from repro.classify.sampling import true_imbalance
from repro.eval.experiment import prediction_steps
from repro.metrics import CLASSIFIER_FEATURES
from repro.metrics.candidates import all_nonedge_pairs


@pytest.fixture(scope="module")
def fb_steps(facebook_snapshots):
    return list(prediction_steps(facebook_snapshots))


@pytest.fixture(scope="module")
def instance(facebook_snapshots):
    g2, g1, g0 = facebook_snapshots[-3:]
    return sampled_instance(g2, g1, g0, fraction=1.0)


class TestFeatureExtractor:
    def test_shape_and_column_order(self, facebook_snapshots):
        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:40]
        extractor = FeatureExtractor(("CN", "JC", "PA"), log_transform=False)
        features = extractor.compute(s, pairs)
        assert features.shape == (40, 3)
        from repro.metrics.base import get_metric

        assert features[:, 0] == pytest.approx(get_metric("CN").fit(s).score(pairs))
        assert features[:, 2] == pytest.approx(get_metric("PA").fit(s).score(pairs))

    def test_log_transform_on_nonnegative_columns(self, facebook_snapshots):
        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:40]
        from repro.metrics.base import get_metric

        raw = get_metric("PA").fit(s).score(pairs)
        logged = FeatureExtractor(("PA",), log_transform=True).compute(s, pairs)
        assert logged[:, 0] == pytest.approx(np.log1p(raw))

    def test_log_transform_skips_signed_columns(self, facebook_snapshots):
        """BCN takes negative values, so log1p must not touch it."""
        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:40]
        from repro.metrics.base import get_metric

        raw = get_metric("BCN").fit(s).score(pairs)
        if raw.min() >= 0:
            pytest.skip("BCN non-negative on this snapshot")
        logged = FeatureExtractor(("BCN",), log_transform=True).compute(s, pairs)
        assert logged[:, 0] == pytest.approx(raw)

    def test_all_fourteen_features_finite(self, facebook_snapshots):
        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:30]
        features = FeatureExtractor().compute(s, pairs)
        assert features.shape == (30, len(CLASSIFIER_FEATURES))
        assert np.isfinite(features).all()

    def test_sp_infinities_mapped_to_sentinels(self):
        from tests.conftest import build_trace
        from repro.graph.snapshots import Snapshot

        trace = build_trace([(0, 1, 0.0), (2, 3, 1.0)])
        s = Snapshot(trace, trace.num_edges)
        pairs = np.asarray([[0, 2], [0, 3], [1, 2]])
        features = FeatureExtractor(("SP",)).compute(s, pairs)
        assert np.isfinite(features).all()

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(())

    def test_bad_pair_shape_rejected(self, facebook_snapshots):
        with pytest.raises(ValueError):
            FeatureExtractor(("CN",)).compute(
                facebook_snapshots[0], np.zeros((3, 3), dtype=np.int64)
            )


class TestLabeling:
    def test_labels_future_edges(self, fb_steps):
        prev, curr, truth = fb_steps[-1]
        pairs = all_nonedge_pairs(prev)
        labels = labeled_pairs(prev, curr, pairs)
        positive = {tuple(p) for p, l in zip(pairs.tolist(), labels) if l == 1}
        assert positive == truth

    def test_imbalance_matches_label_counts(self, fb_steps):
        prev, curr, _ = fb_steps[-1]
        ratio = true_imbalance(prev, curr)
        pairs = all_nonedge_pairs(prev)
        labels = labeled_pairs(prev, curr, pairs)
        assert ratio == pytest.approx(labels.sum() / (len(labels) - labels.sum()))


class TestUndersample:
    def _data(self, n_pos=20, n_neg=5000):
        pairs = np.arange(2 * (n_pos + n_neg)).reshape(-1, 2)
        labels = np.concatenate([np.ones(n_pos, int), np.zeros(n_neg, int)])
        return pairs, labels

    def test_ratio_respected(self):
        pairs, labels = self._data()
        _, sampled = undersample(pairs, labels, theta=1 / 50, rng=0)
        assert sampled.sum() == 20
        assert (sampled == 0).sum() == 1000

    def test_keeps_all_positives(self):
        pairs, labels = self._data()
        out_pairs, out_labels = undersample(pairs, labels, theta=1.0, rng=0)
        pos_original = {tuple(p) for p, l in zip(pairs.tolist(), labels) if l == 1}
        pos_sampled = {tuple(p) for p, l in zip(out_pairs.tolist(), out_labels) if l == 1}
        assert pos_sampled == pos_original

    def test_saturates_at_available_negatives(self):
        pairs, labels = self._data(n_pos=100, n_neg=50)
        _, sampled = undersample(pairs, labels, theta=1 / 10000, rng=0)
        assert (sampled == 0).sum() == 50

    def test_validation(self):
        pairs, labels = self._data()
        with pytest.raises(ValueError):
            undersample(pairs, labels, theta=0.0)
        with pytest.raises(ValueError):
            undersample(pairs, np.zeros(len(labels), int), theta=1.0)


class TestSampledInstance:
    def test_full_fraction_reuses_snapshots(self, facebook_snapshots):
        g2, g1, g0 = facebook_snapshots[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=1.0)
        assert inst.train_view is g2
        assert inst.test_view is g1
        assert inst.k == len(inst.truth)

    def test_partial_fraction_samples(self, facebook_snapshots):
        g2, g1, g0 = facebook_snapshots[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=0.5, rng=0)
        assert inst.test_view.num_nodes == round(0.5 * g1.num_nodes)
        # Truth restricted to sampled nodes.
        for u, v in inst.truth:
            assert inst.test_view.has_node(u)
            assert inst.test_view.has_node(v)

    def test_same_seed_aligns_views(self, facebook_snapshots):
        g2, g1, g0 = facebook_snapshots[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=0.4, rng=1)
        train_nodes = set(inst.train_view.nodes())
        test_nodes = set(inst.test_view.nodes())
        assert len(train_nodes & test_nodes) / len(train_nodes) > 0.5


class TestClassificationPredictor:
    def test_svm_beats_random_clearly(self, instance):
        pred = ClassificationPredictor("SVM", theta=1 / 50, seed=0)
        result = pred.evaluate_instance(instance, rng=0)
        assert result.ratio > 2.0

    def test_all_four_classifiers_run(self, instance):
        for name in ("SVM", "LR", "NB", "RF"):
            pred = ClassificationPredictor(name, theta=1 / 20, seed=0)
            result = pred.evaluate_instance(instance, rng=0)
            assert result.outcome.k == instance.k
            assert result.metric == name

    def test_feature_weights_for_linear(self, instance):
        pred = ClassificationPredictor("SVM", theta=1 / 20, seed=0)
        pred.train(instance.train_view, instance.label_view)
        weights = pred.feature_weights()
        assert weights.shape == (len(CLASSIFIER_FEATURES),)
        assert weights.sum() == pytest.approx(1.0)

    def test_feature_weights_rejected_for_forest(self, instance):
        pred = ClassificationPredictor("RF", theta=1 / 20, seed=0)
        pred.train(instance.train_view, instance.label_view)
        with pytest.raises(RuntimeError, match="coefficients"):
            pred.feature_weights()

    def test_unknown_classifier(self):
        with pytest.raises(KeyError, match="unknown classifier"):
            ClassificationPredictor("XGB")

    def test_predict_before_train(self, instance):
        pred = ClassificationPredictor("SVM")
        with pytest.raises(RuntimeError, match="train"):
            pred.predict_step(instance.test_view, instance.truth, rng=0)

    def test_theta_none_uses_full_set(self, facebook_snapshots):
        g2, g1, g0 = facebook_snapshots[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=0.35, rng=0)
        pred = ClassificationPredictor("NB", theta=None, seed=0)
        result = pred.evaluate_instance(inst, rng=0)
        assert result.outcome.k == inst.k
