"""Correctness tests for SP / LP / Katz_lr / Katz_sc."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.snapshots import Snapshot
from repro.metrics.base import dense_adjacency, get_metric
from repro.metrics.candidates import all_nonedge_pairs


class TestShortestPath:
    def test_scores_are_negated_hops(self, tiny_snapshot):
        g = tiny_snapshot.to_networkx()
        pairs = all_nonedge_pairs(tiny_snapshot)
        scores = get_metric("SP").fit(tiny_snapshot).score(pairs)
        for (u, v), score in zip(pairs, scores):
            assert score == -nx.shortest_path_length(g, int(u), int(v))

    def test_disconnected_pair_is_minus_inf(self):
        from tests.conftest import build_trace

        trace = build_trace([(0, 1, 0.0), (2, 3, 1.0)])
        s = Snapshot(trace, trace.num_edges)
        scores = get_metric("SP").fit(s).score(np.asarray([[0, 2]]))
        assert scores[0] == -np.inf

    def test_two_hop_pairs_share_top_score(self, tiny_snapshot):
        """The paper's point: SP cannot distinguish 2-hop pairs."""
        from repro.metrics.candidates import two_hop_pairs

        pairs = two_hop_pairs(tiny_snapshot)
        scores = get_metric("SP").fit(tiny_snapshot).score(pairs)
        assert (scores == -2.0).all()


class TestLocalPath:
    def test_matches_matrix_powers(self, tiny_snapshot):
        a = dense_adjacency(tiny_snapshot)
        a2, a3 = a @ a, a @ a @ a
        eps = 1e-4
        pairs = all_nonedge_pairs(tiny_snapshot)
        scores = get_metric("LP").fit(tiny_snapshot).score(pairs)
        pos = tiny_snapshot.node_pos
        for (u, v), score in zip(pairs, scores):
            i, j = pos[int(u)], pos[int(v)]
            assert score == pytest.approx(a2[i, j] + eps * a3[i, j])

    def test_epsilon_breaks_ties_only(self, facebook_snapshots):
        """With the paper's eps=1e-4, any pair with more 2-hop paths must
        outrank any pair with fewer, regardless of 3-hop counts."""
        from repro.metrics.candidates import two_hop_pairs

        s = facebook_snapshots[0]
        pairs = two_hop_pairs(s)[:1000]
        cn = get_metric("CN").fit(s).score(pairs)
        lp = get_metric("LP").fit(s).score(pairs)
        order = np.argsort(-lp, kind="stable")
        sorted_cn = cn[order]
        # CN counts must be non-increasing along the LP ranking.
        assert (np.diff(sorted_cn) <= 1e-9).all() or (
            sorted_cn[:-1] >= sorted_cn[1:] - 1e-9
        ).all()

    def test_custom_epsilon_validation(self):
        with pytest.raises(ValueError):
            get_metric("LP", epsilon=-0.1)


class TestKatzLowRank:
    def test_full_rank_matches_closed_form(self, tiny_snapshot):
        """With rank ~ n, the spectral form equals (I - bA)^-1 - I."""
        beta = 1e-3
        a = dense_adjacency(tiny_snapshot)
        n = a.shape[0]
        closed = np.linalg.inv(np.eye(n) - beta * a) - np.eye(n)
        pairs = all_nonedge_pairs(tiny_snapshot)
        metric = get_metric("Katz_lr", beta=beta, rank=n)
        scores = metric.fit(tiny_snapshot).score(pairs)
        pos = tiny_snapshot.node_pos
        for (u, v), score in zip(pairs, scores):
            assert score == pytest.approx(closed[pos[int(u)], pos[int(v)]], abs=1e-9)

    def test_low_rank_approximates(self, facebook_snapshots):
        s = facebook_snapshots[0]
        beta = 1e-3
        a = dense_adjacency(s)
        n = a.shape[0]
        closed = np.linalg.inv(np.eye(n) - beta * a) - np.eye(n)
        pairs = all_nonedge_pairs(s)[:500]
        rank = s.num_nodes - 4  # drop a few eigenpairs only
        scores = get_metric("Katz_lr", beta=beta, rank=rank).fit(s).score(pairs)
        pos = s.node_pos
        exact = np.asarray([closed[pos[int(u)], pos[int(v)]] for u, v in pairs])
        # With beta this small the index is dominated by short paths, which
        # spectral truncation reproduces only approximately — require a
        # strong rank correlation when few eigenpairs are dropped.
        from scipy.stats import spearmanr

        assert spearmanr(scores, exact).statistic > 0.7

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            get_metric("Katz_lr", beta=0.0)
        with pytest.raises(ValueError):
            get_metric("Katz_lr", rank=0)


class TestKatzTruncated:
    def test_matches_truncated_series(self, tiny_snapshot):
        beta, l_max = 1e-3, 4
        a = dense_adjacency(tiny_snapshot)
        total = np.zeros_like(a)
        power = np.eye(a.shape[0])
        for l in range(1, l_max + 1):
            power = power @ a
            total += beta**l * power
        pairs = all_nonedge_pairs(tiny_snapshot)
        scores = get_metric("Katz_sc", beta=beta, max_length=l_max).fit(
            tiny_snapshot
        ).score(pairs)
        pos = tiny_snapshot.node_pos
        for (u, v), score in zip(pairs, scores):
            assert score == pytest.approx(total[pos[int(u)], pos[int(v)]])

    def test_correlates_with_low_rank(self, facebook_snapshots):
        """The two Katz implementations must agree on ranking (they
        approximate the same index)."""
        from scipy.stats import spearmanr

        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:800]
        lr = get_metric("Katz_lr", rank=s.num_nodes - 4).fit(s).score(pairs)
        sc = get_metric("Katz_sc").fit(s).score(pairs)
        assert spearmanr(lr, sc).statistic > 0.7

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            get_metric("Katz_sc", max_length=1)
