"""Correctness tests for PPR and LRW."""

import networkx as nx
import numpy as np
import pytest

from repro.metrics.base import get_metric
from repro.metrics.candidates import all_nonedge_pairs
from repro.metrics.walks import transition_matrix


class TestTransitionMatrix:
    def test_rows_stochastic(self, tiny_snapshot):
        p = transition_matrix(tiny_snapshot)
        assert p.sum(axis=1) == pytest.approx(np.ones(p.shape[0]))

    def test_entries(self, tiny_snapshot):
        p = transition_matrix(tiny_snapshot)
        pos = tiny_snapshot.node_pos
        # Node 7 has neighbours {6, 0}: each transition prob 1/2.
        assert p[pos[7], pos[6]] == pytest.approx(0.5)
        assert p[pos[7], pos[0]] == pytest.approx(0.5)
        assert p[pos[7], pos[1]] == 0.0


class TestPPR:
    def test_matches_networkx_pagerank(self, tiny_snapshot):
        """pi_{u,.} must match networkx's personalised PageRank from u."""
        alpha = 0.15
        metric = get_metric("PPR", alpha=alpha).fit(tiny_snapshot)
        g = tiny_snapshot.to_networkx()
        pos = tiny_snapshot.node_pos
        for u in [0, 4, 7]:
            expected = nx.pagerank(
                g, alpha=1 - alpha, personalization={u: 1.0}, tol=1e-12, max_iter=500
            )
            for v in tiny_snapshot.nodes():
                assert metric._pi[pos[u], pos[v]] == pytest.approx(
                    expected[v], abs=1e-8
                )

    def test_score_is_symmetric_sum(self, tiny_snapshot):
        metric = get_metric("PPR").fit(tiny_snapshot)
        a = metric.score(np.asarray([[0, 5]]))
        b = metric.score(np.asarray([[5, 0]]))
        assert a[0] == pytest.approx(b[0])

    def test_rows_sum_to_one(self, tiny_snapshot):
        metric = get_metric("PPR").fit(tiny_snapshot)
        assert metric._pi.sum(axis=1) == pytest.approx(
            np.ones(tiny_snapshot.num_nodes)
        )

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            get_metric("PPR", alpha=0.0)
        with pytest.raises(ValueError):
            get_metric("PPR", alpha=1.0)


class TestLRW:
    def test_matches_matrix_power(self, tiny_snapshot):
        m = 3
        p = transition_matrix(tiny_snapshot)
        pm = np.linalg.matrix_power(p, m)
        deg = tiny_snapshot.degree_array()
        two_e = 2.0 * tiny_snapshot.num_edges
        metric = get_metric("LRW", steps=m).fit(tiny_snapshot)
        pairs = all_nonedge_pairs(tiny_snapshot)
        scores = metric.score(pairs)
        pos = tiny_snapshot.node_pos
        for (u, v), score in zip(pairs, scores):
            i, j = pos[int(u)], pos[int(v)]
            expected = deg[i] / two_e * pm[i, j] + deg[j] / two_e * pm[j, i]
            assert score == pytest.approx(expected)

    def test_one_step_is_zero_on_nonedges(self, tiny_snapshot):
        """A 1-step walk cannot reach a non-neighbour."""
        metric = get_metric("LRW", steps=1).fit(tiny_snapshot)
        pairs = all_nonedge_pairs(tiny_snapshot)
        assert (metric.score(pairs) == 0.0).all()

    def test_symmetry(self, tiny_snapshot):
        metric = get_metric("LRW").fit(tiny_snapshot)
        a = metric.score(np.asarray([[1, 5]]))
        b = metric.score(np.asarray([[5, 1]]))
        assert a[0] == pytest.approx(b[0])

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            get_metric("LRW", steps=0)
