"""Tests for the shared benchmark result-writer (benchmarks/_common.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import _common
from _common import (
    BENCH_SCHEMA_VERSION,
    BenchReportError,
    build_report,
    validate_report,
    write_report,
)


def _entries():
    return [{"label": "small", "value": 1}, {"label": "large", "value": 2}]


class TestValidation:
    def test_build_report_envelope(self):
        report = build_report("demo", _entries())
        assert report["bench"] == "demo"
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert isinstance(report["cpus"], int)
        assert validate_report(report) is report

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda r: r.pop("cpus"), "missing keys"),
            (lambda r: r.update(schema=99), "schema"),
            (lambda r: r.update(bench=""), "non-empty string"),
            (lambda r: r.update(sizes=[]), "non-empty list"),
            (lambda r: r.update(sizes=["nope"]), "must be a dict"),
            (lambda r: r.update(sizes=[{"value": 1}]), "label"),
            (
                lambda r: r.update(
                    sizes=[{"label": "a"}, {"label": "a"}]
                ),
                "unique",
            ),
            (
                lambda r: r.update(sizes=[{"label": "a", "x": float("nan")}]),
                "JSON-safe",
            ),
            (
                lambda r: r.update(sizes=[{"label": "a", "x": object()}]),
                "JSON-safe",
            ),
        ],
    )
    def test_schema_violations_raise(self, mutate, match):
        report = build_report("demo", _entries())
        mutate(report)
        with pytest.raises(BenchReportError, match=match):
            validate_report(report)


class TestWriter:
    @pytest.fixture(autouse=True)
    def _sandbox(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_common, "REPO_ROOT", tmp_path)
        monkeypatch.setattr(_common, "RESULTS_DIR", tmp_path / "results")

    def test_writes_json_named_after_bench(self, tmp_path):
        path = write_report(build_report("demo", _entries()))
        assert path == tmp_path / "BENCH_demo.json"
        payload = json.loads(path.read_text())
        assert payload["bench"] == "demo"
        assert [e["label"] for e in payload["sizes"]] == ["small", "large"]
        assert not path.with_name(path.name + ".tmp").exists()

    def test_json_stem_override_keeps_bench_name(self, tmp_path):
        path = write_report(build_report("core_scaling", _entries()), json_stem="core")
        assert path == tmp_path / "BENCH_core.json"
        assert json.loads(path.read_text())["bench"] == "core_scaling"

    def test_line_formatter_writes_text_summary(self, tmp_path):
        write_report(
            build_report("demo", _entries()),
            line_formatter=lambda e: f"{e['label']}: {e['value']}",
        )
        text = (tmp_path / "results" / "demo.txt").read_text()
        assert text == "small: 1\nlarge: 2\n"

    def test_invalid_report_never_touches_disk(self, tmp_path):
        report = build_report("demo", _entries())
        report["sizes"] = []
        with pytest.raises(BenchReportError):
            write_report(report)
        assert not (tmp_path / "BENCH_demo.json").exists()


class TestBenchModulesUseTheWriter:
    def test_all_three_benchmarks_import_the_shared_writer(self):
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for name in (
            "bench_core_scaling.py",
            "bench_ingest.py",
            "bench_telemetry_overhead.py",
        ):
            source = (bench_dir / name).read_text(encoding="utf-8")
            assert "from _common import build_report, write_report" in source
