"""CLI hardening tests: exit codes, one-line errors, journal plumbing."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main
from repro.eval.runner import ExperimentSpec


def write_spec(tmp_path, **overrides):
    base = dict(
        name="cli", dataset="facebook", scale=0.1, generation_seed=3,
        metrics=("CN",), repeats=2, max_steps=2,
    )
    base.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(ExperimentSpec(**base).to_json())
    return path


class TestErrorMapping:
    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["experiment", "--spec", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_invalid_json_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["experiment", "--spec", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_metrics_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"metrics": []}))
        assert main(["experiment", "--spec", str(path)]) == 2
        assert "at least one metric" in capsys.readouterr().err

    def test_unreadable_trace_exits_2(self, tmp_path, capsys):
        assert main(
            ["evaluate", "--trace", str(tmp_path / "ghost.txt"), "--metric", "CN"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestKeyboardInterrupt:
    def test_interrupt_with_journal_prints_resume_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        spec_path = write_spec(tmp_path)

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.eval.runner.run_experiment", boom)
        code = main(
            ["experiment", "--spec", str(spec_path),
             "--journal", str(tmp_path / "j.jsonl")]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "resume with --journal" in err
        assert str(tmp_path / "j.jsonl") in err

    def test_interrupt_without_journal_suggests_one(
        self, tmp_path, monkeypatch, capsys
    ):
        spec_path = write_spec(tmp_path)
        monkeypatch.setattr(
            "repro.eval.runner.run_experiment",
            lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert main(["experiment", "--spec", str(spec_path)]) == 130
        assert "--journal" in capsys.readouterr().err

    def test_interrupt_in_other_commands_exits_130(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.__main__.cmd_generate",
            lambda args: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        args = ["generate", "--dataset", "facebook", "--out", "x.txt"]
        assert main(args) == 130
        assert "interrupted" in capsys.readouterr().err


class TestJournalFlag:
    def test_journaled_cli_run_resumes_to_identical_output(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path)
        journal = tmp_path / "j.jsonl"
        out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
        assert main(
            ["experiment", "--spec", str(spec_path),
             "--journal", str(journal), "--out", str(out1)]
        ) == 0
        assert journal.exists()
        assert main(
            ["experiment", "--spec", str(spec_path),
             "--journal", str(journal), "--out", str(out2)]
        ) == 0
        assert out1.read_bytes() == out2.read_bytes()
        # the resumed run surfaces the journal restore in the summary
        assert "from journal" in capsys.readouterr().out

    def test_journal_for_different_spec_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        spec_a = write_spec(tmp_path)
        assert main(
            ["experiment", "--spec", str(spec_a), "--journal", str(journal)]
        ) == 0
        (tmp_path / "spec.json").write_text(
            ExperimentSpec(
                name="cli", dataset="facebook", scale=0.1, generation_seed=4,
                metrics=("CN",), repeats=2, max_steps=2,
            ).to_json()
        )
        assert main(
            ["experiment", "--spec", str(spec_a), "--journal", str(journal)]
        ) == 2
        assert "different spec" in capsys.readouterr().err


class TestRetryFlags:
    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["experiment", "--spec", "s.json"])
        assert args.journal is None
        assert args.cell_timeout is None
        assert args.max_attempts == 3

    def test_flags_parse_explicit(self):
        args = build_parser().parse_args(
            ["experiment", "--spec", "s.json", "--journal", "j.jsonl",
             "--cell-timeout", "2.5", "--max-attempts", "5"]
        )
        assert args.journal == "j.jsonl"
        assert args.cell_timeout == 2.5
        assert args.max_attempts == 5

    def test_bad_max_attempts_exits_2(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path)
        assert main(
            ["experiment", "--spec", str(spec_path), "--max-attempts", "0"]
        ) == 2
        assert "max_attempts" in capsys.readouterr().err


class TestUnknownSpecKeys:
    def test_unknown_keys_warn_but_run(self, tmp_path, capsys):
        payload = json.loads(write_spec(tmp_path).read_text())
        payload["comment"] = "forward-compat field"
        path = tmp_path / "annotated.json"
        path.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="comment"):
            assert main(["experiment", "--spec", str(path)]) == 0
        assert "experiment: cli" in capsys.readouterr().out
