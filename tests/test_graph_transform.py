"""Tests for trace transformations."""

import pytest

from repro.graph.dyngraph import TemporalGraph
from repro.graph.transform import merge, rebase_time, relabel, time_window
from tests.conftest import build_trace


class TestTimeWindow:
    def test_selects_interval(self, tiny_trace):
        window = time_window(tiny_trace, 3.0, 8.0)
        times = [t for _, _, t in window.edges()]
        assert times == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_preserves_timestamps(self, tiny_trace):
        window = time_window(tiny_trace, 3.0, 8.0)
        assert window.start_time == 3.0

    def test_empty_window_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            time_window(tiny_trace, 5.0, 5.0)

    def test_window_outside_range_gives_empty(self, tiny_trace):
        window = time_window(tiny_trace, 100.0, 200.0)
        assert window.num_edges == 0


class TestRelabel:
    def test_ids_compacted(self):
        trace = build_trace([(100, 7, 0.0), (7, 230, 1.0), (100, 230, 2.0)])
        compact, mapping = relabel(trace)
        assert set(compact.nodes()) == {0, 1, 2}
        # Edge pairs are stored in canonical (sorted) order, so node 7 is
        # encountered before 100 in the stream.
        assert mapping == {7: 0, 100: 1, 230: 2}

    def test_structure_preserved(self):
        trace = build_trace([(100, 7, 0.0), (7, 230, 1.0)])
        compact, mapping = relabel(trace)
        assert compact.has_edge(mapping[100], mapping[7])
        assert compact.has_edge(mapping[7], mapping[230])
        assert not compact.has_edge(mapping[100], mapping[230])

    def test_timestamps_preserved(self):
        trace = build_trace([(9, 4, 2.5), (4, 11, 3.5)])
        compact, mapping = relabel(trace)
        assert compact.edge_time(mapping[9], mapping[4]) == 2.5

    def test_isolated_nodes_kept(self):
        trace = TemporalGraph()
        trace.add_edge(5, 6, 0.0)
        trace.add_node(99, 1.0)
        compact, mapping = relabel(trace)
        assert 99 in mapping
        assert compact.has_node(mapping[99])


class TestMerge:
    def test_interleaves_by_time(self):
        a = build_trace([(0, 1, 0.0), (2, 3, 4.0)])
        b = build_trace([(4, 5, 1.0), (6, 7, 5.0)])
        merged = merge([a, b])
        times = [t for _, _, t in merged.edges()]
        assert times == [0.0, 1.0, 4.0, 5.0]
        assert merged.num_edges == 4

    def test_duplicate_edges_keep_earliest(self):
        a = build_trace([(0, 1, 0.0)])
        b = build_trace([(1, 0, 2.0)])
        merged = merge([a, b])
        assert merged.num_edges == 1
        assert merged.edge_time(0, 1) == 0.0

    def test_merge_empty_list(self):
        assert merge([]).num_edges == 0


class TestRebaseTime:
    def test_shifts_to_zero(self):
        trace = build_trace([(0, 1, 10.0), (1, 2, 12.0)])
        rebased = rebase_time(trace)
        assert rebased.start_time == 0.0
        assert rebased.edge_time(1, 2) == 2.0

    def test_empty_trace(self):
        assert rebase_time(TemporalGraph()).num_edges == 0

    def test_roundtrip_with_window(self, tiny_trace):
        rebased = rebase_time(time_window(tiny_trace, 3.0, 8.0))
        assert rebased.start_time == 0.0
        assert rebased.num_edges == 5
