"""Fault-injection suite: every recovery path reduces to exact results.

Uses :mod:`repro.eval.faults` to script the outages a long sweep meets
in the wild — a worker OOM-killed mid-cell, a transient exception, a
slow cell, a wedged C call — and asserts two things each time: the run
*completes*, and its canonical JSON is byte-identical to a clean serial
run's.  Recovery that changes numbers would be worse than no recovery.
"""

from __future__ import annotations

import pytest

from repro.eval import faults
from repro.eval.faults import KILL_EXIT_CODE, FaultPlan, InjectedFault
from repro.eval.retry import (
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    RetryPolicy,
    soft_deadline,
)
from repro.eval.runner import (
    ExperimentSpec,
    build_plan,
    iter_cells,
    run_cells_serial,
    run_experiment,
)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="faulty", dataset="facebook", scale=0.1, generation_seed=3,
        metrics=("CN", "PA"), repeats=2, max_steps=2,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """No fault plan leaks into or out of any test."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def clean_json():
    spec = small_spec()
    return run_experiment(spec, n_jobs=1).to_json()


# fast policy: real backoff shape, test-friendly durations
FAST = dict(backoff_base=0.01, backoff_max=0.05)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            kill={"CN:0:0": 1}, errors={"PA:1:0": 2},
            delays={"CN:1:1": (0.5, 1)}, hangs={"PA:0:0": (1.0, 2)},
            error_probability=0.25, seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan(errors={"CN:0:0": 1}).to_json())
        plan = faults.active_plan()
        assert plan is not None and plan.errors == {"CN:0:0": 1}

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan(errors={"CN:0:0": 1}).to_json())
        faults.install(FaultPlan(errors={"PA:0:0": 1}))
        assert faults.active_plan().errors == {"PA:0:0": 1}

    def test_validate_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="error_probability"):
            FaultPlan(error_probability=1.5).validate()

    def test_counted_error_fires_then_stops(self):
        faults.install(FaultPlan(errors={"CN:0:0": 2}))
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                faults.before_cell(("CN", 0, 0), attempt)
        faults.before_cell(("CN", 0, 0), 2)  # attempt 2: clean
        faults.before_cell(("PA", 0, 0), 0)  # other cells: clean

    def test_probabilistic_errors_are_deterministic(self):
        plan = FaultPlan(error_probability=0.5, seed=11)
        faults.install(plan)
        outcomes = {}
        for step in range(20):
            cell = ("CN", step, 0)
            try:
                faults.before_cell(cell, 0)
                outcomes[cell] = "ok"
            except InjectedFault:
                outcomes[cell] = "fail"
            faults.before_cell(cell, 1)  # attempt > 0 never injected
        assert "fail" in outcomes.values() and "ok" in outcomes.values()
        for cell, outcome in outcomes.items():  # exact repeatability
            try:
                faults.before_cell(cell, 0)
                assert outcome == "ok"
            except InjectedFault:
                assert outcome == "fail"

    def test_kill_is_inert_outside_workers(self):
        """In the driver process a kill fault must not exit the run."""
        faults.install(FaultPlan(kill={"CN:0:0": 99}))
        faults.before_cell(("CN", 0, 0), 0)  # still alive
        assert KILL_EXIT_CODE != 0

    def test_crashes_round_trip_and_validate(self):
        plan = FaultPlan(crashes={"wal.append": 3, "checkpoint.write": 0})
        assert FaultPlan.from_json(plan.to_json()) == plan
        with pytest.raises(ValueError, match="crashes"):
            FaultPlan(crashes={"wal.append": -1}).validate()

    def test_crash_fires_only_on_the_scheduled_invocation(self):
        """Exact-index semantics: attempt != n passes through alive."""
        faults.install(FaultPlan(crashes={"wal.fsync": 5}))
        for attempt in (0, 1, 4, 6, 99):
            faults.before_key("wal.fsync", attempt)  # still alive
        faults.before_key("wal.append", 5)  # other keys: clean

    def test_crash_exits_even_outside_workers(self):
        """Unlike kill, crashes hard-exit the main process too."""
        import os
        import subprocess
        import sys

        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (repo_src, env.get("PYTHONPATH", "")) if p
        )
        env[faults.ENV_VAR] = FaultPlan(crashes={"boom": 0}).to_json()
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.eval import faults; faults.before_key('boom', 0); "
                "print('survived')",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == KILL_EXIT_CODE
        assert "survived" not in proc.stdout


class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
        cell = ("CN", 0, 0)
        series = [policy.backoff_seconds(cell, a) for a in range(1, 6)]
        assert series == [policy.backoff_seconds(cell, a) for a in range(1, 6)]
        assert series == sorted(series)
        assert all(s <= 0.5 * 1.1 for s in series)

    def test_jitter_differs_across_cells(self):
        policy = RetryPolicy(backoff_base=0.1)
        assert policy.backoff_seconds(("CN", 0, 0), 1) != policy.backoff_seconds(
            ("PA", 0, 0), 1
        )

    def test_validate(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ValueError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0).validate()

    def test_hard_deadline_derivation(self):
        assert RetryPolicy().hard_timeout_seconds() is None
        policy = RetryPolicy(timeout_seconds=1.0, hard_timeout_grace=3.0)
        assert policy.hard_timeout_seconds() == 5.0

    def test_soft_deadline_interrupts(self):
        import time

        with pytest.raises(CellTimeoutError):
            with soft_deadline(0.05):
                time.sleep(5.0)

    def test_soft_deadline_none_is_noop(self):
        with soft_deadline(None):
            pass


class TestSerialRecovery:
    def test_transient_error_is_retried(self, clean_json):
        faults.install(FaultPlan(errors={"CN:0:0": 2}))
        result = run_experiment(
            small_spec(), n_jobs=1, retry=RetryPolicy(max_attempts=3, **FAST)
        )
        assert result.to_json() == clean_json
        assert result.timing.retries == 2
        assert result.timing.failure_kinds() == {"exception": 2}

    def test_exhausted_retries_raise_with_history(self):
        faults.install(FaultPlan(errors={"CN:0:0": 99}))
        with pytest.raises(CellExecutionError, match="CN:0:0") as excinfo:
            run_experiment(
                small_spec(), n_jobs=1, retry=RetryPolicy(max_attempts=2, **FAST)
            )
        assert [f.kind for f in excinfo.value.failures] == ["exception", "exception"]

    def test_slow_cell_times_out_and_retries(self, clean_json):
        faults.install(FaultPlan(delays={"PA:1:0": (5.0, 1)}))
        result = run_experiment(
            small_spec(), n_jobs=1,
            retry=RetryPolicy(timeout_seconds=0.3, **FAST),
        )
        assert result.to_json() == clean_json
        assert result.timing.failure_kinds() == {"timeout": 1}

    def test_start_attempts_carries_burned_budget(self):
        """The serial engine honours attempts burned before the hand-off."""
        spec = small_spec(metrics=("CN",), repeats=1, max_steps=1)
        plan = build_plan(spec)
        cells = list(iter_cells(spec, len(plan.steps)))
        faults.install(FaultPlan(errors={"CN:0:0": 99}))
        with pytest.raises(CellExecutionError):
            run_cells_serial(
                plan, cells, RetryPolicy(max_attempts=3, **FAST),
                start_attempts={cells[0]: 2},
            )


class TestParallelRecovery:
    def test_worker_kill_rebuilds_pool(self, monkeypatch, clean_json):
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan(kill={"CN:0:0": 1}).to_json())
        result = run_experiment(
            small_spec(), n_jobs=2, retry=RetryPolicy(max_attempts=4, **FAST)
        )
        assert result.to_json() == clean_json
        assert result.timing.pool_rebuilds >= 1
        assert "crash" in result.timing.failure_kinds()
        assert "[faults]" in result.timing.summary()

    def test_soft_timeout_inside_worker_keeps_pool_alive(
        self, monkeypatch, clean_json
    ):
        monkeypatch.setenv(
            faults.ENV_VAR, FaultPlan(delays={"PA:1:0": (5.0, 1)}).to_json()
        )
        result = run_experiment(
            small_spec(), n_jobs=2,
            retry=RetryPolicy(timeout_seconds=0.5, **FAST),
        )
        assert result.to_json() == clean_json
        assert result.timing.pool_rebuilds == 0
        assert result.timing.failure_kinds() == {"timeout": 1}

    def test_hard_deadline_reclaims_wedged_worker(self, monkeypatch, clean_json):
        """A hang that swallows the soft signal — only the driver-side
        hard deadline (pool teardown + resubmit) can recover it."""
        monkeypatch.setenv(
            faults.ENV_VAR, FaultPlan(hangs={"CN:1:1": (30.0, 1)}).to_json()
        )
        result = run_experiment(
            small_spec(), n_jobs=2,
            retry=RetryPolicy(
                timeout_seconds=0.2, hard_timeout_grace=0.3,
                max_attempts=4, **FAST,
            ),
        )
        assert result.to_json() == clean_json
        assert result.timing.pool_rebuilds >= 1
        assert "timeout" in result.timing.failure_kinds()

    def test_repeated_pool_failure_degrades_to_serial(
        self, monkeypatch, clean_json
    ):
        """A cell that kills every worker it touches: the pool gives up
        after max_pool_rebuilds, but the run still completes serially
        (kill faults are inert in the driver, like a memory-bound cell
        that only fits outside the per-worker footprint)."""
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan(kill={"CN:0:0": 99}).to_json())
        result = run_experiment(
            small_spec(), n_jobs=2,
            retry=RetryPolicy(max_attempts=10, max_pool_rebuilds=2, **FAST),
        )
        assert result.to_json() == clean_json
        assert result.timing.degraded_to_serial
        assert result.timing.pool_rebuilds == 3
        assert "degraded to serial" in result.timing.summary()

    def test_transient_worker_exception_retries_in_pool(
        self, monkeypatch, clean_json
    ):
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan(errors={"PA:0:1": 1}).to_json())
        result = run_experiment(
            small_spec(), n_jobs=2, retry=RetryPolicy(max_attempts=3, **FAST)
        )
        assert result.to_json() == clean_json
        assert result.timing.pool_rebuilds == 0
        assert result.timing.retries == 1


class TestFailureAccounting:
    def test_cell_failure_payload_round_trip(self):
        failure = CellFailure(
            metric="CN", step=1, seed=0, kind="timeout", attempt=2, message="slow"
        )
        assert CellFailure.from_payload(failure.to_payload()) == failure

    def test_failures_ride_run_timing_json(self, tmp_path):
        faults.install(FaultPlan(errors={"CN:0:0": 1}))
        result = run_experiment(
            small_spec(), n_jobs=1, retry=RetryPolicy(max_attempts=2, **FAST)
        )
        path = tmp_path / "out.json"
        result.save(path, include_timing=True)
        from repro.eval.runner import ExperimentResult

        loaded = ExperimentResult.from_json(path.read_text())
        assert loaded.timing.retries == 1
        assert loaded.timing.failures[0]["kind"] == "exception"
        # canonical JSON stays clean of execution metadata
        assert "failures" not in result.to_json()

    def test_summary_table_surfaces_fault_line(self):
        faults.install(FaultPlan(errors={"CN:0:0": 1}))
        result = run_experiment(
            small_spec(), n_jobs=1, retry=RetryPolicy(max_attempts=2, **FAST)
        )
        table = result.summary_table()
        assert "[faults]" in table and "1 retries (1 exception)" in table
