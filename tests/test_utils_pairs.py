"""Unit tests for repro.utils.pairs."""

import numpy as np
import pytest

from repro.utils.pairs import canonical_pair, pair_array, pair_set


class TestCanonicalPair:
    def test_orders_ascending(self):
        assert canonical_pair(5, 2) == (2, 5)

    def test_keeps_sorted_input(self):
        assert canonical_pair(2, 5) == (2, 5)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError, match="self-pair"):
            canonical_pair(3, 3)

    def test_negative_ids_order(self):
        assert canonical_pair(0, -1) == (-1, 0)


class TestPairSet:
    def test_deduplicates_orientations(self):
        assert pair_set([(1, 2), (2, 1), (3, 1)]) == {(1, 2), (1, 3)}

    def test_empty(self):
        assert pair_set([]) == set()


class TestPairArray:
    def test_shape_and_canonical_order(self):
        arr = pair_array([(4, 1), (2, 3)])
        assert arr.shape == (2, 2)
        assert arr.tolist() == [[1, 4], [2, 3]]

    def test_preserves_iteration_order(self):
        arr = pair_array([(9, 8), (1, 2), (7, 3)])
        assert arr.tolist() == [[8, 9], [1, 2], [3, 7]]

    def test_empty_has_two_columns(self):
        arr = pair_array([])
        assert arr.shape == (0, 2)
        assert arr.dtype == np.int64
