"""Server-side durability lifecycle: WAL'd ingest, restart, recovering state.

Complements :mod:`tests.test_wal` (format) and
:mod:`tests.test_crash_recovery` (kill schedules): here the subject is the
*server's* behaviour around its durability layer — acked writes land in
the WAL, drain writes a final checkpoint, a restarted server serves
degraded reads from the checkpoint while the WAL replays in the
background, ingest stays closed until recovery is audited, and a sick WAL
trips the circuit breaker into read-only degradation.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.eval import faults
from repro.graph.wal import scan_wal, wal_fingerprint
from repro.ingest import IngestPolicy
from repro.serve import (
    DEGRADED_HEADER,
    DurabilityManager,
    ScoreStore,
    ServeConfig,
    ServerHarness,
)
from tests.conftest import build_trace

BASE_EVENTS = [
    (0, 1, 1.0),
    (0, 2, 1.5),
    (1, 2, 2.0),
    (2, 3, 3.0),
    (3, 4, 4.0),
    (1, 4, 5.0),
    (4, 5, 6.0),
    (5, 6, 7.0),
    (2, 6, 8.0),
    (0, 6, 9.0),
    (3, 6, 10.0),
    (0, 7, 11.0),
]
BATCHES = [b"1 7 12.0\n2 7 12.5\n", b"5 7 13.0\n8 0 13.5\n", b"4 6 15.0\n"]


def base_trace():
    return build_trace(BASE_EVENTS)


def durable_harness(wal_dir, *, config=None, **knobs):
    """A harness over a WAL-backed store, plus any recovery plan found."""
    trace = base_trace()
    policy = IngestPolicy.repair()
    manager, plan = DurabilityManager.attach(wal_dir, trace, policy, **knobs)
    start = trace
    if plan is not None and plan.start_trace is not None:
        start = plan.start_trace
    store = ScoreStore(start, policy=policy, durability=manager)
    config = config or ServeConfig(port=0, workers=2)
    return ServerHarness(start, config, store=store, recovery=plan)


def wait_until(predicate, timeout_s=10.0, detail="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {detail}")


@pytest.fixture
def fault_plan():
    try:
        yield lambda **kw: faults.install(faults.FaultPlan(**kw))
    finally:
        faults.clear()


class TestDurableIngest:
    def test_acked_batches_reach_the_wal(self, tmp_path):
        wal_dir = tmp_path / "wal"
        h = durable_harness(wal_dir, checkpoint_every=0).start()
        try:
            for body in BATCHES:
                assert h.request("POST", "/ingest", body=body).status == 200
            stats = h.request("GET", "/statz").json()
            assert stats["durability"]["wal_seq"] == len(BATCHES)
            assert stats["durability"]["synced_seq"] == len(BATCHES)
            assert stats["durability"]["pending_records"] == 0
            assert stats["store"]["durable"] is True
        finally:
            h.stop()
        _, records, tail = scan_wal(
            wal_dir / "wal.log",
            wal_fingerprint(base_trace(), IngestPolicy.repair()),
        )
        assert tail.clean and len(records) == len(BATCHES)
        expected = [
            [tuple(map(float, line.split())) for line in body.decode().splitlines()]
            for body in BATCHES
        ]
        got = [
            [(float(u), float(v), t) for u, v, t in r.events()] for r in records
        ]
        assert got == expected

    def test_screened_out_lines_are_not_logged(self, tmp_path):
        h = durable_harness(tmp_path / "wal").start()
        try:
            # self-loops only: the whole batch screens away
            response = h.request("POST", "/ingest", body=b"3 3 12.0\n4 4 12.5\n")
            assert response.status == 200
            assert h.server.store.durability.wal.seq == 0
        finally:
            h.stop()

    def test_interval_fsync_group_commits_in_background(self, tmp_path):
        config = ServeConfig(port=0, workers=2, fsync="interval")
        h = durable_harness(
            tmp_path / "wal",
            config=config,
            fsync="interval",
            fsync_interval_s=0.05,
        ).start()
        try:
            manager = h.server.store.durability
            assert h.request("POST", "/ingest", body=BATCHES[0]).status == 200
            assert manager.wal.seq == 1  # appended immediately...
            wait_until(
                lambda: manager.wal.pending_records == 0,
                detail="background group commit",
            )  # ...fsynced by the durability loop, not the request
        finally:
            h.stop()

    def test_drain_writes_a_final_checkpoint(self, tmp_path):
        wal_dir = tmp_path / "wal"
        h = durable_harness(wal_dir, checkpoint_every=0).start()
        try:
            for body in BATCHES:
                h.request("POST", "/ingest", body=body)
        finally:
            assert h.stop() is True
        ckpts = [n for n in wal_dir.iterdir() if n.suffix == ".ckpt"]
        assert len(ckpts) == 1 and f"{len(BATCHES):012d}" in ckpts[0].name


class TestRestartRecovery:
    def ingest_and_stop(self, wal_dir, drain=True, **knobs):
        h = durable_harness(wal_dir, **knobs).start()
        try:
            for body in BATCHES:
                assert h.request("POST", "/ingest", body=body).status == 200
            return h.request("GET", "/predict?u=7&k=5&metric=CN").json()
        finally:
            # drain=False is the crash stand-in: no final checkpoint, the
            # WAL alone carries the ingested batches into the restart.
            h.stop(drain=drain)

    def test_restart_recovers_and_scores_identically(self, tmp_path):
        wal_dir = tmp_path / "wal"
        before = self.ingest_and_stop(wal_dir, checkpoint_every=2)

        h = durable_harness(wal_dir, checkpoint_every=2)
        assert h.server._recovering is True
        h.start()
        try:
            wait_until(
                lambda: h.request("GET", "/readyz").status == 200,
                detail="recovery to finish",
            )
            after = h.request("GET", "/predict?u=7&k=5&metric=CN").json()
            assert after["predictions"] == before["predictions"]
            assert after["snapshot"]["edges"] == before["snapshot"]["edges"]
            stats = h.request("GET", "/statz").json()
            assert stats["durability"]["recovering"] is False
            recovery = stats["durability"]["recovery"]
            assert recovery["records"] == recovery["records_to_replay"]
            assert recovery["duration_s"] >= 0
            # post-recovery writes are accepted and WAL'd
            assert (
                h.request("POST", "/ingest", body=b"8 9 16.0\n").status == 200
            )
        finally:
            h.stop()

    def test_recovering_server_serves_degraded_reads_only(self, tmp_path):
        """While the WAL replays: reads 200+degraded, writes 503, not ready."""
        wal_dir = tmp_path / "wal"
        self.ingest_and_stop(wal_dir, drain=False, checkpoint_every=0)

        h = durable_harness(wal_dir)
        assert len(h.server._recovery_plan.records) == len(BATCHES)
        gate = threading.Event()
        original = h.store.replay_wal

        def gated_replay(records):
            gate.wait(timeout=30)
            return original(records)

        h.store.replay_wal = gated_replay
        h.start()
        try:
            ready = h.request("GET", "/readyz")
            assert ready.status == 503
            assert "recovering" in json.loads(ready.body)["reasons"]

            read = h.request("GET", "/predict?u=0&k=3&metric=CN")
            assert read.status == 200
            assert read.headers.get(DEGRADED_HEADER.lower()) == "recovering"
            # degraded reads come from the base/checkpoint snapshot, not
            # the not-yet-replayed WAL
            assert read.json()["snapshot"]["edges"] == len(BASE_EVENTS)

            write = h.request("POST", "/ingest", body=b"8 9 16.0\n")
            assert write.status == 503
            assert "write path not yet open" in json.loads(write.body)["detail"]

            gate.set()
            wait_until(
                lambda: h.request("GET", "/readyz").status == 200,
                detail="gated recovery to finish",
            )
            healthy = h.request("GET", "/predict?u=0&k=3&metric=CN")
            assert healthy.headers.get(DEGRADED_HEADER.lower()) is None
            assert healthy.json()["snapshot"]["edges"] > len(BASE_EVENTS)
        finally:
            gate.set()
            h.stop()

    def test_failed_recovery_leaves_a_read_only_server(self, tmp_path):
        wal_dir = tmp_path / "wal"
        self.ingest_and_stop(wal_dir, checkpoint_every=0)

        h = durable_harness(wal_dir)

        def broken_replay(records):
            raise RuntimeError("replay exploded")

        h.store.replay_wal = broken_replay
        h.start()
        try:
            wait_until(
                lambda: h.server._recovery_error is not None,
                detail="recovery failure to register",
            )
            ready = h.request("GET", "/readyz")
            assert ready.status == 503
            reasons = json.loads(ready.body)["reasons"]
            assert any("recovery failed" in r for r in reasons)
            # reads survive, degraded; writes stay closed permanently
            assert h.request("GET", "/predict?u=0&k=3&metric=CN").status == 200
            write = h.request("POST", "/ingest", body=b"8 9 16.0\n")
            assert write.status == 503
            assert "read-only" in json.loads(write.body)["detail"]
        finally:
            h.stop()


class TestWalFailureDegradation:
    def test_wal_write_failure_trips_the_breaker(self, tmp_path, fault_plan):
        """A sick WAL means no acked writes: breaker opens, reads stay up."""
        config = ServeConfig(
            port=0, workers=2, breaker_threshold=2, breaker_cooldown_s=30.0
        )
        h = durable_harness(tmp_path / "wal", config=config).start()
        try:
            fault_plan(errors={"wal.append": 99})
            for _ in range(2):  # each failed WAL append is a 500...
                response = h.request("POST", "/ingest", body=BATCHES[0])
                assert response.status == 500
                assert "wal.append" in json.loads(response.body)["detail"]
            stats = h.request("GET", "/statz").json()
            assert stats["breaker"]["state"] == "open"
            # ...and past the threshold the breaker sheds writes with 503
            shed = h.request("POST", "/ingest", body=BATCHES[0])
            assert shed.status == 503
            assert "circuit breaker" in json.loads(shed.body)["detail"]
            # nothing was acked, so nothing may be in the WAL
            assert h.server.store.durability.wal.seq == 0
            # reads degrade to the last-good snapshot instead of failing
            read = h.request("GET", "/predict?u=0&k=3&metric=CN")
            assert read.status == 200
            assert read.headers.get(DEGRADED_HEADER.lower()) == "stale-snapshot"
        finally:
            faults.clear()
            h.stop()
