"""Tests for repro.ml.metrics and repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml import (
    StandardScaler,
    accuracy_score,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    train_test_split,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 0], [1])


class TestPrecisionRecallF1:
    def test_known_counts(self):
        y_true = [1, 1, 1, 0, 0, 0]
        y_pred = [1, 1, 0, 1, 0, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_predictions_gives_zero_precision(self):
        assert precision_score([1, 1], [0, 0]) == 0.0

    def test_no_positives_gives_zero_recall(self):
        assert recall_score([0, 0], [1, 1]) == 0.0

    def test_f1_zero_when_both_zero(self):
        assert f1_score([1, 0], [0, 0]) == 0.0


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        s = rng.random(4000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.1, 0.9])

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=60)
        if y.sum() in (0, 60):
            y[0] = 1 - y[0]
        s = rng.choice([0.1, 0.3, 0.5, 0.7], size=60)  # plenty of ties
        pos, neg = s[y == 1], s[y == 0]
        brute = np.mean(
            [(1.0 if p > n else 0.5 if p == n else 0.0) for p in pos for n in neg]
        )
        assert roc_auc_score(y, s) == pytest.approx(brute)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(500, 3))
        z = StandardScaler().fit_transform(x)
        assert z.mean(axis=0) == pytest.approx(np.zeros(3), abs=1e-10)
        assert z.std(axis=0) == pytest.approx(np.ones(3))

    def test_constant_feature_maps_to_zero(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10, dtype=float)])
        z = StandardScaler().fit_transform(x)
        assert (z[:, 0] == 0).all()

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.asarray([[0.0], [2.0]]))
        assert scaler.transform(np.asarray([[4.0]]))[0, 0] == pytest.approx(3.0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 1)))


class TestTrainTestSplit:
    def test_sizes(self):
        x = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        xtr, xte, ytr, yte = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert len(xtr) == 75 and len(xte) == 25

    def test_rows_stay_aligned(self):
        x = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        xtr, xte, ytr, yte = train_test_split(x, y, seed=1)
        assert np.array_equal(xtr.ravel(), ytr)
        assert np.array_equal(xte.ravel(), yte)

    def test_partition_is_complete(self):
        x = np.arange(30).reshape(-1, 1)
        y = np.arange(30)
        xtr, xte, _, _ = train_test_split(x, y, seed=2)
        assert sorted(np.concatenate([xtr, xte]).ravel()) == list(range(30))

    def test_validation(self):
        x = np.zeros((4, 1))
        y = np.zeros(4)
        with pytest.raises(ValueError):
            train_test_split(x, y, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(x, np.zeros(3))
