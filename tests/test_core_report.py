"""Tests for the markdown report builder."""

import pytest

from repro.core.report import build_report
from repro.generators import presets


@pytest.fixture(scope="module")
def report_text():
    trace = presets.facebook_like(scale=0.2, seed=5)
    return build_report(trace, metrics=("CN", "RA", "PA"), seed=0, name="unit")


class TestBuildReport:
    def test_contains_all_sections(self, report_text):
        for heading in (
            "# Link prediction report: unit",
            "## Trace",
            "## Structure",
            "## Metric comparison",
        ):
            assert heading in report_text

    def test_metric_table_rows(self, report_text):
        for metric in ("CN", "RA", "PA"):
            assert f"| {metric} |" in report_text

    def test_table_is_ranked(self, report_text):
        rows = [
            line for line in report_text.splitlines()
            if line.startswith("| ") and "x |" in line
        ]
        ratios = [float(r.split("|")[2].strip().rstrip("x")) for r in rows]
        assert ratios == sorted(ratios, reverse=True)

    def test_filter_section_present_or_flagged(self, report_text):
        assert "Temporal filter" in report_text

    def test_too_short_trace_rejected(self):
        trace = presets.facebook_like(scale=0.05, seed=1)
        with pytest.raises(ValueError, match="too short"):
            build_report(trace, delta=trace.num_edges)

    def test_deterministic(self):
        trace = presets.facebook_like(scale=0.2, seed=5)
        a = build_report(trace, metrics=("CN",), seed=3)
        b = build_report(trace, metrics=("CN",), seed=3)
        assert a == b


class TestCollectBenchmarkResults:
    def test_assembles_files(self, tmp_path):
        from repro.core.report import collect_benchmark_results

        (tmp_path / "table2.txt").write_text("row one\nrow two\n")
        (tmp_path / "fig5.txt").write_text("series\n")
        doc = collect_benchmark_results(tmp_path)
        assert "## fig5" in doc and "## table2" in doc
        assert "row one" in doc
        # Sorted by name: fig5 before table2.
        assert doc.index("## fig5") < doc.index("## table2")

    def test_missing_directory(self, tmp_path):
        from repro.core.report import collect_benchmark_results

        with pytest.raises(FileNotFoundError):
            collect_benchmark_results(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        from repro.core.report import collect_benchmark_results

        with pytest.raises(FileNotFoundError):
            collect_benchmark_results(tmp_path)
