"""Serial-vs-sharded ingest parity (repro.ingest.shard).

The sharded pipeline's contract is *byte identity* with the serial one
for every policy and every chunking: same accepted columns, same
``stream_checksum``, same taxonomy counts, same rejects-sidecar bytes,
and — under strict — the same first offender (class, file, line number,
message).  A hypothesis suite drives randomly corrupted traces with
randomly chosen line terminators, BOMs, headers and 2-column legacy
lines (whose synthetic timestamp is the *global* line number — the
sharpest test of shard ``start_line`` bookkeeping) through both paths
at adversarially tiny shard sizes; the suite runs the in-process shard
path (``jobs=1``) for speed, and a smaller non-hypothesis leg repeats
the checks through a real 2-worker process pool.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import IngestPolicy, TraceFormatError, scan_trace
from repro.ingest.shard import scan_shards

POLICIES = ["default", "strict", "repair", "quarantine"]

#: one representative of every corruption the taxonomy classifies, plus
#: shapes that stress shard bookkeeping (legacy 2-column lines take the
#: global line number as timestamp; comments/blanks shift the count).
_HOSTILE_LINES = [
    "not an event",
    "1 2 3 4 5",
    "3.5 7 50.0",
    "-3 7 50.0",
    "1 2 nan",
    "1 2 inf",
    "4 5 -2.5",
    "6 6 50.0",
    "7 8",
    "# a comment",
    "",
    "   ",
]


@st.composite
def hostile_traces(draw):
    """Bytes of a small dirty trace with mixed line terminators."""
    n = draw(st.integers(min_value=0, max_value=30))
    rng_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                      allow_infinity=False, width=32),
            min_size=n, max_size=n,
        )
    )
    lines = []
    if draw(st.booleans()):
        lines.append("# repro-trace v2")
    for i in range(n):
        kind = draw(st.integers(min_value=0, max_value=9))
        if kind < 6:  # mostly events, loosely increasing, some duplicates
            u = draw(st.integers(min_value=0, max_value=8))
            v = draw(st.integers(min_value=0, max_value=8))
            lines.append(f"{u} {v} {rng_times[i]!r}")
        else:
            lines.append(draw(st.sampled_from(_HOSTILE_LINES)))
    text = "".join(
        line + draw(st.sampled_from(["\n", "\r\n", "\r"])) for line in lines
    )
    if lines and draw(st.booleans()):
        text = text[: -len(text.splitlines(keepends=True)[-1])] + lines[-1]
    bom = draw(st.booleans())
    return ("\ufeff" + text if bom else text).encode("utf-8")


def _outcome(fn, *args, **kwargs):
    """(exception-or-None, value-or-None) so strict raises compare too."""
    try:
        return None, fn(*args, **kwargs)
    except TraceFormatError as exc:
        return exc, None


def assert_parity(path, policy_name, shard_bytes, jobs=1, tmp_dir=None):
    policy = IngestPolicy.from_string(policy_name)
    base = tmp_dir if tmp_dir is not None else path.parent
    serial_sidecar = base / "serial.rejects"
    shard_sidecar = base / "shard.rejects"
    serial_exc, serial = _outcome(
        scan_trace, path, policy=policy, quarantine_path=serial_sidecar
    )
    shard_exc, sharded = _outcome(
        scan_shards, [path], policy=policy, quarantine_path=shard_sidecar,
        jobs=jobs, shard_bytes=shard_bytes,
    )
    if serial_exc is not None or shard_exc is not None:
        assert serial_exc is not None and shard_exc is not None, (
            serial_exc, shard_exc,
        )
        assert shard_exc.error_class == serial_exc.error_class
        assert shard_exc.lineno == serial_exc.lineno
        assert shard_exc.path == serial_exc.path
        assert str(shard_exc) == str(serial_exc)
        return
    us, vs, ts, serial_report = serial
    su, sv, st_, shard_report = sharded
    assert su.tobytes() == us.tobytes()
    assert sv.tobytes() == vs.tobytes()
    assert st_.tobytes() == ts.tobytes()
    assert shard_report.checksum == serial_report.checksum
    for field in (
        "lines_total", "blank_lines", "comment_lines", "events_parsed",
        "events_accepted", "format_version", "flagged", "repaired",
        "quarantined", "min_time", "max_time",
    ):
        assert getattr(shard_report, field) == getattr(serial_report, field), field
    assert serial_sidecar.exists() == shard_sidecar.exists()
    if serial_sidecar.exists():
        assert shard_sidecar.read_bytes() == serial_sidecar.read_bytes()
        shard_sidecar.unlink()
    if serial_sidecar.exists():
        serial_sidecar.unlink()


class TestHypothesisParity:
    @settings(max_examples=40, deadline=None)
    @given(payload=hostile_traces(), policy_name=st.sampled_from(POLICIES),
           shard_bytes=st.sampled_from([16, 61, 256, 1 << 16]))
    def test_random_dirty_trace_parity(
        self, tmp_path_factory, payload, policy_name, shard_bytes
    ):
        tmp = tmp_path_factory.mktemp("parity")
        path = tmp / "trace.txt"
        path.write_bytes(payload)
        assert_parity(path, policy_name, shard_bytes, tmp_dir=tmp)

    @settings(max_examples=15, deadline=None)
    @given(payload=hostile_traces())
    def test_chunking_invariance(self, tmp_path_factory, payload):
        """The same file parses identically whatever the shard size."""
        tmp = tmp_path_factory.mktemp("chunks")
        path = tmp / "trace.txt"
        path.write_bytes(payload)
        policy = IngestPolicy.repair()
        reference = None
        for shard_bytes in (8, 33, 190, 1 << 20):
            us, vs, ts, report = scan_shards(
                [path], policy=policy, jobs=1, shard_bytes=shard_bytes
            )
            key = (us.tobytes(), vs.tobytes(), ts.tobytes(), report.checksum)
            if reference is None:
                reference = key
            assert key == reference, shard_bytes


@pytest.mark.parametrize("policy_name", POLICIES)
def test_real_pool_parity(tmp_path, policy_name):
    """The same contract through an actual 2-worker process pool."""
    path = tmp_path / "trace.txt"
    lines = ["# repro-trace v2"]
    for i in range(400):
        lines.append(f"{i % 13} {(i + 1) % 17} {0.5 * i!r}")
        if i % 37 == 0:
            lines.append(_HOSTILE_LINES[i // 37 % len(_HOSTILE_LINES)])
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert_parity(path, policy_name, shard_bytes=512, jobs=2)


def test_multi_file_stream_equals_concatenated_serial(tmp_path):
    """A shard *set* must equal serial ingest of the concatenated stream.

    2-column lines make this sharp: their synthetic timestamp is the
    per-file line number, so the concatenated reference is built from
    per-file serial parses, not from a naive byte concatenation.
    """
    parts = []
    for k in range(3):
        part = tmp_path / f"part{k}.txt"
        rows = [f"{k * 50 + i} {k * 50 + i + 1} {float(100 * k + i)!r}"
                for i in range(40)]
        rows.insert(5, "9 9 1.0")  # self-loop in every file
        part.write_text("\n".join(rows) + "\n", encoding="utf-8")
        parts.append(part)
    policy = IngestPolicy.repair()
    ref_cols = [scan_trace(p, policy=policy)[:3] for p in parts]
    ref_u = np.concatenate([c[0] for c in ref_cols])
    ref_v = np.concatenate([c[1] for c in ref_cols])
    ref_t = np.concatenate([c[2] for c in ref_cols])
    order = np.argsort(ref_t, kind="stable")
    us, vs, ts, report = scan_shards(
        parts, policy=policy, jobs=2, shard_bytes=256
    )
    assert us.tobytes() == ref_u[order].tobytes()
    assert vs.tobytes() == ref_v[order].tobytes()
    assert ts.tobytes() == ref_t[order].tobytes()
    assert report.sources == [str(p) for p in parts]
