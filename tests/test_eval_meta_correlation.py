"""Tests for the Section 4.3 meta-classifier and the lambda_2 correlation."""

import numpy as np
import pytest

from repro.eval.correlation import lambda2_correlations, pearson, two_hop_edge_ratio
from repro.eval.meta import (
    FEATURE_NAMES,
    SnapshotRecord,
    fit_choice_tree,
    fit_suitability_tree,
    suitability_rules,
)
from repro.graph.stats import GraphFeatures


def make_record(network, degree_std, median, winner_ratios):
    features = GraphFeatures(
        num_nodes=1000,
        num_edges=5000,
        avg_degree=10.0,
        degree_std=degree_std,
        degree_p50=median,
        degree_p90=30.0,
        degree_p99=80.0,
        clustering=0.2,
        avg_path_length=3.0,
        assortativity=0.1,
    )
    return SnapshotRecord(network=network, features=features, ratios=winner_ratios)


@pytest.fixture
def records():
    """Synthetic records reproducing the paper's regimes: high degree-std
    snapshots favour Rescal, high-median ones favour BRA, the rest Katz."""
    out = []
    for i in range(8):
        out.append(
            make_record("yt", 80 + i, 3, {"Rescal": 10.0, "BRA": 2.0, "Katz_lr": 1.0})
        )
        out.append(
            make_record("rr", 30 + i, 12, {"Rescal": 2.0, "BRA": 10.0, "Katz_lr": 1.0})
        )
        out.append(
            make_record("fb", 20 + i, 5, {"Rescal": 1.0, "BRA": 2.0, "Katz_lr": 10.0})
        )
    return out


class TestChoiceTree:
    def test_learns_winners(self, records):
        tree, class_names = fit_choice_tree(records, max_depth=3)
        x = np.vstack([r.features.as_array() for r in records])
        predicted = tree.predict(x)
        truth = [class_names.index(r.winner) for r in records]
        assert np.mean(predicted == truth) == 1.0

    def test_export_uses_feature_names(self, records):
        tree, class_names = fit_choice_tree(records)
        text = tree.export_text(list(FEATURE_NAMES), class_names)
        assert "degree_std" in text or "degree_p50" in text

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            fit_choice_tree([])


class TestSuitabilityTrees:
    def test_binary_tree_learns_threshold(self, records):
        tree = fit_suitability_tree(records, "Rescal")
        assert tree is not None
        x = np.vstack([r.features.as_array() for r in records])
        best = np.asarray([max(r.ratios.values()) for r in records])
        y = np.asarray(
            [1 if r.ratios["Rescal"] >= 0.9 * b else 0 for r, b in zip(records, best)]
        )
        assert np.mean(tree.predict(x) == y) == 1.0

    def test_one_sided_labels_return_none(self, records):
        # An algorithm never within 90% of optimum yields one-sided labels.
        for r in records:
            r.ratios["Loser"] = 0.01
        assert fit_suitability_tree(records, "Loser") is None

    def test_rules_dict(self, records):
        rules = suitability_rules(records, ["Rescal", "BRA", "Katz_lr"])
        assert set(rules) == {"Rescal", "BRA", "Katz_lr"}
        for text in rules.values():
            assert "good" in text

    def test_bad_fraction(self, records):
        with pytest.raises(ValueError):
            fit_suitability_tree(records, "Rescal", good_fraction=1.5)


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson([1], [1])
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])


class TestTwoHopEdgeRatio:
    def test_counts_truth_among_two_hop(self, tiny_snapshot):
        from repro.metrics.candidates import two_hop_pairs

        pairs = two_hop_pairs(tiny_snapshot)
        truth = {tuple(int(x) for x in pairs[0]), (98, 99)}
        ratio = two_hop_edge_ratio(tiny_snapshot, truth)
        assert ratio == pytest.approx(1 / len(pairs))

    def test_rises_with_densification(self, facebook_snapshots):
        """lambda_2 on the friendship preset should be well above zero."""
        from repro.eval.experiment import prediction_steps

        values = [
            two_hop_edge_ratio(prev, truth)
            for prev, _, truth in prediction_steps(facebook_snapshots)
        ]
        assert all(v >= 0 for v in values)
        assert max(values) > 0


class TestLambda2Correlations:
    def test_top_n_selection(self):
        lam = [0.1, 0.2, 0.3, 0.4]
        series = {
            "good": [1.0, 2.0, 3.0, 4.0],     # corr +1, mean 2.5
            "weak": [0.1, 0.1, 0.1, 0.12],    # low mean
            "anti": [4.0, 3.0, 2.0, 1.0],     # corr -1, mean 2.5
        }
        avg, per_metric = lambda2_correlations(lam, series, top_n=2)
        assert per_metric["good"] == pytest.approx(1.0)
        assert per_metric["anti"] == pytest.approx(-1.0)
        # Top-2 by mean ratio are good and anti -> average 0.
        assert avg == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            lambda2_correlations([0.1, 0.2], {"a": [1, 2]}, top_n=0)
