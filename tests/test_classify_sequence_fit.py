"""Tests for sequence-level classifier evaluation and generator fitting."""

import numpy as np
import pytest

from repro.classify.sequence import (
    classifier_steps,
    compare_classifiers_on_sequence,
    evaluate_classifier_sequence,
)
from repro.generators.base import generate_trace
from repro.generators.fit import fit_growth_config, measure_mechanisms
from repro.generators.presets import facebook_like, youtube_like
from repro.graph.snapshots import new_edges_between


class TestClassifierSequence:
    def test_steps_are_consecutive_triples(self, facebook_snapshots):
        steps = list(classifier_steps(facebook_snapshots))
        assert len(steps) == len(facebook_snapshots) - 2
        for (g2, g1, truth), s2, s1, s0 in zip(
            steps, facebook_snapshots, facebook_snapshots[1:], facebook_snapshots[2:]
        ):
            assert g2 is s2 and g1 is s1
            assert truth == new_edges_between(s1, s0)

    def test_sequence_results_per_step(self, facebook_snapshots):
        results = evaluate_classifier_sequence(
            "NB", facebook_snapshots[-5:], theta=1 / 10, seed=0
        )
        assert 1 <= len(results) <= 3
        for r in results:
            assert r.metric == "NB"
            assert r.outcome.k > 0

    def test_max_steps(self, facebook_snapshots):
        results = evaluate_classifier_sequence(
            "NB", facebook_snapshots, theta=1 / 10, seed=0, max_steps=2
        )
        assert len(results) <= 2

    def test_compare_returns_all(self, facebook_snapshots):
        out = compare_classifiers_on_sequence(
            ("NB", "LR"), facebook_snapshots[-5:], theta=1 / 10, max_steps=2
        )
        assert set(out) == {"NB", "LR"}
        assert all(v >= 0 for v in out.values())

    def test_deterministic(self, facebook_snapshots):
        a = evaluate_classifier_sequence(
            "NB", facebook_snapshots[-5:], theta=1 / 10, seed=4
        )
        b = evaluate_classifier_sequence(
            "NB", facebook_snapshots[-5:], theta=1 / 10, seed=4
        )
        assert [r.outcome.hits for r in a] == [r.outcome.hits for r in b]


class TestMeasureMechanisms:
    def test_reports_shares_in_unit_interval(self, small_facebook):
        m = measure_mechanisms(small_facebook)
        for key in ("triadic_share", "newcomer_share"):
            assert 0.0 <= m[key] <= 1.0

    def test_friendship_more_triadic_than_subscription(self):
        fb = facebook_like(scale=0.25, seed=4)
        yt = youtube_like(scale=0.25, seed=4)
        assert (
            measure_mechanisms(fb)["triadic_share"]
            > measure_mechanisms(yt)["triadic_share"]
        )

    def test_short_trace_rejected(self, triangle_plus_trace):
        with pytest.raises(ValueError, match="too short"):
            measure_mechanisms(triangle_plus_trace)


class TestFitGrowthConfig:
    def test_fitted_config_is_valid(self, small_facebook):
        config = fit_growth_config(small_facebook)
        config.validate()
        assert config.total_edges == small_facebook.num_edges
        assert config.total_nodes >= config.n_seed

    def test_fitted_config_generates(self, small_facebook):
        config = fit_growth_config(small_facebook)
        synthetic = generate_trace(config, seed=0)
        assert synthetic.num_edges == small_facebook.num_edges

    def test_fit_recovers_triadic_regime(self):
        """Fitting a high-triadic trace yields a high triadic share; a
        low-triadic one yields a low share."""
        fb = facebook_like(scale=0.25, seed=8)
        yt = youtube_like(scale=0.25, seed=8)
        fb_fit = fit_growth_config(fb)
        yt_fit = fit_growth_config(yt)
        fb_peak = max(fb_fit.triadic_prob, fb_fit.triadic_prob_final or 0)
        yt_peak = max(yt_fit.triadic_prob, yt_fit.triadic_prob_final or 0)
        assert fb_peak > yt_peak

    def test_fit_detects_assortative_regime(self):
        fb_fit = fit_growth_config(facebook_like(scale=0.25, seed=8))
        yt_fit = fit_growth_config(youtube_like(scale=0.25, seed=8))
        assert fb_fit.assortative_matching > 0
        assert yt_fit.assortative_matching == 0.0

    def test_round_trip_structure(self):
        """Generating from a fitted config lands in the original's
        structural neighbourhood (triadic share within ~0.2)."""
        original = facebook_like(scale=0.25, seed=12)
        config = fit_growth_config(original)
        synthetic = generate_trace(config, seed=1)
        share_original = measure_mechanisms(original)["triadic_share"]
        share_synthetic = measure_mechanisms(synthetic)["triadic_share"]
        assert abs(share_original - share_synthetic) < 0.25
