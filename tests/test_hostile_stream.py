"""Hostile-stream end-to-end: bursty, out-of-order, corrupted live ingest.

The serving stack must survive an adversarial client: bursts of hundreds
of lines, timestamp inversions, garbage lines, stale events aimed at the
committed past, duplicates, and outright binary junk.  The contract under
test: every request gets an orderly verdict (200 with per-class rejection
counts, or a 4xx — never a crash or a 5xx), the surviving stream is
**exactly** what offline ingest of the same bodies produces (column-level
parity, since `/ingest` and `ScoreStore.ingest_lines` are the same code
path), and a WAL restart after the hostile session recovers the identical
state.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.api import LinkPredictor
from repro.generators import presets
from repro.graph.io import read_trace, write_trace
from repro.graph.wal import recover_state
from repro.ingest import IngestPolicy
from repro.serve import DurabilityManager, ScoreStore, ServeConfig, ServerHarness
from repro.temporal.filters import FilterParams, TemporalFilter
from tests.conftest import build_trace

BASE_EVENTS = [
    (0, 1, 1.0),
    (0, 2, 1.5),
    (1, 2, 2.0),
    (2, 3, 3.0),
    (3, 4, 4.0),
    (1, 4, 5.0),
    (4, 5, 6.0),
    (5, 6, 7.0),
    (2, 6, 8.0),
    (0, 6, 9.0),
    (3, 6, 10.0),
    (0, 7, 11.0),
]


def _burst(start_node: int, start_t: float, count: int) -> str:
    """A clean burst of ``count`` chained edges with increasing times."""
    lines = []
    for i in range(count):
        lines.append(f"{start_node + i} {start_node + i + 1} {start_t + 0.25 * i}\n")
    return "".join(lines)


def _shuffled_burst(start_node: int, start_t: float, count: int) -> str:
    """Same edges, deterministically mis-ordered in time (stride trick)."""
    lines = _burst(start_node, start_t, count).splitlines()
    return "".join(line + "\n" for line in lines[1::2] + lines[0::2])


#: the hostile session: (chunk body, expected status under repair policy).
HOSTILE_CHUNKS = [
    # a large clean burst
    (_burst(8, 12.0, 120), 200),
    # one offender per taxonomy class, plus two clean survivors
    (
        "one two three\n"  # parse garbage
        "2.5 3 40.5\n"  # non-integer node id
        "3 4 nan\n"  # non-finite time
        "4 5 -1.0\n"  # negative time (repair clamps to 0 -> stale -> clamped up)
        "6 6 41.0\n"  # self-loop
        "0 1 41.5\n"  # duplicate of a base edge
        "7 8 0.5\n"  # stale: aimed before the committed stream end
        "1 7 42.0\n"  # clean
        "2 7 42.5\n",  # clean
        200,
    ),
    # binary junk: rejected at the door, nothing changes
    (b"\xff\xfe\x00junk", 400),
    # a bursty out-of-order chunk (every timestamp inverted pairwise)
    (_shuffled_burst(130, 50.0, 80), 200),
    # empty + comments only: a valid no-op
    ("# heartbeat\n\n", 200),
    # a final clean chunk proving the stream is still open for business
    ("3 5 100.0\n4 7 101.0\n", 200),
]


def _bodies():
    return [
        (c if isinstance(c, bytes) else c.encode(), status)
        for c, status in HOSTILE_CHUNKS
    ]


def offline_ingest(policy_name: str):
    """The offline twin: the same chunks through ScoreStore directly."""
    store = ScoreStore(
        build_trace(BASE_EVENTS), policy=IngestPolicy.from_string(policy_name)
    )
    payloads = []
    for body, expected_status in _bodies():
        if expected_status != 200:
            payloads.append(None)
            continue
        payloads.append(store.ingest_lines(body.decode("utf-8")))
    return store, payloads


@pytest.mark.parametrize("policy_name", ["repair", "quarantine"])
class TestHostileStreamParity:
    def test_live_ingest_matches_offline_and_recovers(self, tmp_path, policy_name):
        policy = IngestPolicy.from_string(policy_name)
        trace = build_trace(BASE_EVENTS)
        wal_dir = tmp_path / "wal"
        manager, plan = DurabilityManager.attach(
            wal_dir, trace, policy, checkpoint_every=3
        )
        assert plan is None
        store = ScoreStore(trace, policy=policy, durability=manager)
        h = ServerHarness(
            trace, ServeConfig(port=0, workers=2, queue_size=256), store=store
        )
        h.start()
        online_payloads = []
        try:
            for body, expected_status in _bodies():
                response = h.request("POST", "/ingest", body=body)
                # orderly verdicts only: never a crash, never a 5xx
                assert response.status == expected_status, response.body
                online_payloads.append(
                    response.json() if response.status == 200 else None
                )
            # the server is still fully healthy after the hostile session
            assert h.request("GET", "/readyz").status == 200
            assert h.request("GET", "/predict?u=0&k=3&metric=CN").status == 200
        finally:
            h.stop(drain=False)  # crash-stop: recovery must work from WAL alone

        # --- parity with offline ingest of the same bodies -------------
        offline_store, offline_payloads = offline_ingest(policy_name)
        assert online_payloads == offline_payloads
        ou, ov, ot = offline_store._engine.trace.columns()
        su, sv, st = store._engine.trace.columns()
        assert su.tobytes() == ou.tobytes()
        assert sv.tobytes() == ov.tobytes()
        assert st.tobytes() == ot.tobytes()

        # --- the hostile session is replayable: WAL recovery parity ----
        result = recover_state(wal_dir, build_trace(BASE_EVENTS), policy)
        assert result.clean, result.describe()
        ru, rv, rt = result.engine.trace.columns()
        assert ru.tobytes() == ou.tobytes()
        assert rv.tobytes() == ov.tobytes()
        assert rt.tobytes() == ot.tobytes()

    def test_rejection_counts_are_reported_per_class(self, tmp_path, policy_name):
        policy = IngestPolicy.from_string(policy_name)
        trace = build_trace(BASE_EVENTS)
        h = ServerHarness(
            trace,
            ServeConfig(port=0, workers=2),
            store=ScoreStore(trace, policy=policy),
        )
        h.start()
        try:
            body, _ = _bodies()[1]  # the one-offender-per-class chunk
            payload = h.request("POST", "/ingest", body=body).json()
            rejected = payload["rejected"]
            for error_class in (
                "parse_error",
                "bad_node_id",
                "nonfinite_time",
                "self_loop",
                "duplicate_edge",
                "out_of_order",
            ):
                assert rejected.get(error_class, 0) >= 1, (error_class, rejected)
            assert payload["applied"] >= 2  # the clean survivors landed
        finally:
            h.stop()


class TestStrictPolicyRejectsWholesale:
    def test_strict_batch_rejection_changes_nothing(self, tmp_path):
        trace = build_trace(BASE_EVENTS)
        policy = IngestPolicy.strict()
        wal_dir = tmp_path / "wal"
        manager, _ = DurabilityManager.attach(wal_dir, trace, policy)
        store = ScoreStore(trace, policy=policy, durability=manager)
        h = ServerHarness(trace, ServeConfig(port=0, workers=2), store=store)
        h.start()
        try:
            body, _ = _bodies()[1]
            response = h.request("POST", "/ingest", body=body)
            assert response.status == 400
            detail = json.loads(response.body)["detail"]
            assert "parse_error" in detail
            # nothing applied, nothing logged
            assert store._engine.trace.num_edges == len(BASE_EVENTS)
            assert manager.wal.seq == 0
            # and the write path is still open for clean batches
            clean = h.request("POST", "/ingest", body=b"1 7 12.0\n")
            assert clean.status == 200
            assert manager.wal.seq == 1
        finally:
            h.stop()


class TestHostileStreamAccuracy:
    """End-to-end accuracy leg: a bursty, corrupted stream is repaired by
    ingest, filtered by the temporal filter, and still *predicts* — the
    accuracy ratio stays within a bounded delta of the clean stream's,
    rather than collapsing to random.  The corrupted load goes through the
    sharded parallel path, so the whole hostile pipeline (shard ingest ->
    temporal filter -> prediction) is exercised in one pass.
    """

    FILTER = FilterParams(
        d_act=60.0, d_inact=90.0, window=45.0, min_new_edges=0.0, d_cn=90.0
    )

    def _evaluate(self, trace):
        predictor = LinkPredictor(
            "CN", pair_filter=TemporalFilter(self.FILTER), seed=7
        )
        return predictor.evaluate_sequence(trace, delta=60, max_steps=4)

    def _corrupt(self, clean_path, dirty_path):
        """Jitter, duplicate bursts, garbage, and self-loops — seeded."""
        rng = np.random.default_rng(3)
        hostile = []
        for i, line in enumerate(
            clean_path.read_text(encoding="utf-8").splitlines()
        ):
            if line.startswith("#"):
                hostile.append(line)
                continue
            u, v, t_raw = line.split()
            t = float(t_raw)
            if i % 9 == 0:  # bursty timestamp jitter (stays small)
                t = max(0.0, t + float(rng.uniform(-0.3, 0.3)))
            hostile.append(f"{u} {v} {t!r}")
            if i % 17 == 0:
                hostile.append(f"{u} {v} {t!r}")  # duplicate burst
            if i % 23 == 0:
                hostile.append("xx yy zz")  # garbage
            if i % 29 == 0:
                hostile.append(f"{u} {u} {t!r}")  # self-loop
        dirty_path.write_text("\n".join(hostile) + "\n", encoding="utf-8")

    def test_bounded_accuracy_delta_under_corruption(self, tmp_path):
        reference = presets.facebook_like(scale=0.2, seed=11)
        clean_path = tmp_path / "clean.txt"
        dirty_path = tmp_path / "dirty.txt"
        write_trace(reference, clean_path)
        self._corrupt(clean_path, dirty_path)

        clean = read_trace(clean_path)
        dirty = read_trace(dirty_path, policy=IngestPolicy.repair(), jobs=2)
        report = dirty.ingest_report
        # the corruption was real and classified, not silently absorbed
        assert sum(report.flagged.values()) > 0
        assert set(report.flagged) >= {"parse_error", "self_loop",
                                       "duplicate_edge"}

        clean_result = self._evaluate(clean)
        dirty_result = self._evaluate(dirty)
        assert len(clean_result.steps) == len(dirty_result.steps) > 0
        # the clean pipeline beats random, and the repaired hostile stream
        # is in the same regime: bounded delta, no collapse to ~0
        assert clean_result.mean_ratio > 1.0
        assert dirty_result.mean_ratio > 0.5 * clean_result.mean_ratio
        delta = abs(dirty_result.mean_ratio - clean_result.mean_ratio)
        assert delta <= 0.5 * clean_result.mean_ratio + 1.0
