"""Naive reference implementations of every similarity metric.

These are deliberately slow, loop-based, dictionary-level transliterations
of the Table 3 formulas — independent of the vectorised implementations in
``repro.metrics`` (no shared code paths beyond the Snapshot accessors).
``tests/test_metrics_reference.py`` cross-checks the two on randomised
graphs; a bug would have to appear identically in both formulations to
slip through.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.snapshots import Snapshot


def common_neighbors(s: Snapshot, u: int, v: int) -> float:
    return float(len(s.neighbors(u) & s.neighbors(v)))


def jaccard(s: Snapshot, u: int, v: int) -> float:
    union = s.neighbors(u) | s.neighbors(v)
    if not union:
        return 0.0
    return len(s.neighbors(u) & s.neighbors(v)) / len(union)


def adamic_adar(s: Snapshot, u: int, v: int) -> float:
    total = 0.0
    for w in s.neighbors(u) & s.neighbors(v):
        d = s.degree(w)
        if d > 1:
            total += 1.0 / math.log(d)
    return total


def resource_allocation(s: Snapshot, u: int, v: int) -> float:
    return sum(1.0 / s.degree(w) for w in s.neighbors(u) & s.neighbors(v))


def _triangles(s: Snapshot, w: int) -> int:
    neigh = list(s.neighbors(w))
    count = 0
    for i, a in enumerate(neigh):
        for b in neigh[i + 1 :]:
            if s.has_edge(a, b):
                count += 1
    return count


def _role(s: Snapshot, w: int) -> float:
    deg = s.degree(w)
    tri = _triangles(s, w)
    non_tri = deg * (deg - 1) / 2.0 - tri
    return (tri + 1.0) / (non_tri + 1.0)


def _prior(s: Snapshot) -> float:
    n, e = s.num_nodes, s.num_edges
    return n * (n - 1) / (2.0 * e) - 1.0


def bayes_common_neighbors(s: Snapshot, u: int, v: int) -> float:
    common = s.neighbors(u) & s.neighbors(v)
    log_s = math.log(_prior(s))
    return len(common) * log_s + sum(math.log(_role(s, w)) for w in common)


def bayes_adamic_adar(s: Snapshot, u: int, v: int) -> float:
    log_s = math.log(_prior(s))
    total = 0.0
    for w in s.neighbors(u) & s.neighbors(v):
        d = s.degree(w)
        if d > 1:
            total += (log_s + math.log(_role(s, w))) / math.log(d)
    return total


def bayes_resource_allocation(s: Snapshot, u: int, v: int) -> float:
    log_s = math.log(_prior(s))
    return sum(
        (log_s + math.log(_role(s, w))) / s.degree(w)
        for w in s.neighbors(u) & s.neighbors(v)
    )


def preferential_attachment(s: Snapshot, u: int, v: int) -> float:
    return float(s.degree(u) * s.degree(v))


def _count_walks(s: Snapshot, u: int, v: int, length: int) -> int:
    """Number of walks of exactly ``length`` hops from u to v (DFS)."""
    if length == 0:
        return 1 if u == v else 0
    return sum(_count_walks(s, w, v, length - 1) for w in s.neighbors(u))


def local_path(s: Snapshot, u: int, v: int, epsilon: float = 1e-4) -> float:
    return _count_walks(s, u, v, 2) + epsilon * _count_walks(s, u, v, 3)


def katz_truncated(s: Snapshot, u: int, v: int, beta: float = 1e-3, l_max: int = 4) -> float:
    return sum(beta**l * _count_walks(s, u, v, l) for l in range(1, l_max + 1))


def shortest_path_score(s: Snapshot, u: int, v: int) -> float:
    """Negated BFS hop count; -inf when unreachable."""
    if u == v:
        return 0.0
    frontier = {u}
    seen = {u}
    hops = 0
    while frontier:
        hops += 1
        frontier = {w for x in frontier for w in s.neighbors(x)} - seen
        if v in frontier:
            return float(-hops)
        seen |= frontier
    return float("-inf")


def lrw(s: Snapshot, u: int, v: int, steps: int = 3) -> float:
    """Local random walk score via explicit distribution propagation."""
    def propagate(start: int) -> dict[int, float]:
        dist = {start: 1.0}
        for _ in range(steps):
            nxt: dict[int, float] = {}
            for node, mass in dist.items():
                deg = s.degree(node)
                if deg == 0:
                    continue
                share = mass / deg
                for w in s.neighbors(node):
                    nxt[w] = nxt.get(w, 0.0) + share
            dist = nxt
        return dist

    two_e = 2.0 * s.num_edges
    pi_uv = propagate(u).get(v, 0.0)
    pi_vu = propagate(v).get(u, 0.0)
    return s.degree(u) / two_e * pi_uv + s.degree(v) / two_e * pi_vu


def ppr(s: Snapshot, u: int, v: int, alpha: float = 0.15, iterations: int = 2000) -> float:
    """PPR score via plain power iteration on dictionaries."""
    def stationary(start: int) -> dict[int, float]:
        dist = {start: 1.0}
        for _ in range(iterations):
            nxt = {start: alpha}
            for node, mass in dist.items():
                deg = s.degree(node)
                if deg == 0:
                    continue
                share = (1.0 - alpha) * mass / deg
                for w in s.neighbors(node):
                    nxt[w] = nxt.get(w, 0.0) + share
            if all(
                abs(nxt.get(k, 0.0) - dist.get(k, 0.0)) < 1e-12
                for k in set(nxt) | set(dist)
            ):
                dist = nxt
                break
            dist = nxt
        return dist

    return stationary(u).get(v, 0.0) + stationary(v).get(u, 0.0)


#: name -> reference scorer taking (snapshot, u, v).
REFERENCES = {
    "CN": common_neighbors,
    "JC": jaccard,
    "AA": adamic_adar,
    "RA": resource_allocation,
    "BCN": bayes_common_neighbors,
    "BAA": bayes_adamic_adar,
    "BRA": bayes_resource_allocation,
    "PA": preferential_attachment,
    "LP": local_path,
    "Katz_sc": katz_truncated,
    "SP": shortest_path_score,
    "LRW": lrw,
    "PPR": ppr,
}
