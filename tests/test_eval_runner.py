"""Tests for the declarative experiment runner."""

import json

import pytest

from repro.eval.runner import (
    ExperimentResult,
    ExperimentSpec,
    MetricSeries,
    RunTiming,
    run_experiment,
)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="unit",
        dataset="facebook",
        scale=0.15,
        generation_seed=3,
        metrics=("CN", "PA"),
        repeats=2,
        max_steps=3,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_round_trip_json(self):
        spec = small_spec()
        loaded = ExperimentSpec.from_json(spec.to_json())
        assert loaded == spec

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(small_spec().to_json())
        assert ExperimentSpec.load(path) == small_spec()

    def test_validation_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            small_spec(metrics=("CN", "WAT")).validate()

    def test_validation_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            small_spec(repeats=0).validate()

    def test_validation_rejects_empty_metrics(self):
        """metrics=() used to pass validate() and crash later in max()."""
        with pytest.raises(ValueError, match="at least one metric"):
            small_spec(metrics=()).validate()
        with pytest.raises(ValueError, match="at least one metric"):
            ExperimentSpec.from_json(json.dumps({"metrics": []}))

    def test_from_json_validates(self):
        bad = json.dumps({"metrics": ["NOPE"]})
        with pytest.raises(ValueError):
            ExperimentSpec.from_json(bad)

    def test_from_json_warns_and_ignores_unknown_keys(self):
        payload = json.loads(small_spec().to_json())
        payload["comment"] = "written by a future version"
        payload["priority"] = 9
        with pytest.warns(UserWarning, match=r"\['comment', 'priority'\]"):
            spec = ExperimentSpec.from_json(json.dumps(payload))
        assert spec == small_spec()


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return run_experiment(small_spec())

    def test_series_per_metric(self, result):
        assert set(result.series) == {"CN", "PA"}
        for series in result.series.values():
            assert len(series.ratios) == result.steps_evaluated == 3
            assert len(series.absolutes) == 3

    def test_ranking_sorted(self, result):
        ranking = result.ranking()
        means = [result.series[m].mean_ratio for m in ranking]
        assert means == sorted(means, reverse=True)

    def test_summary_table_contains_metrics(self, result):
        table = result.summary_table()
        assert "CN" in table and "PA" in table

    def test_result_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        result.save(path)
        loaded = ExperimentResult.from_json(path.read_text())
        assert loaded.spec == result.spec
        assert loaded.steps_evaluated == result.steps_evaluated
        for name in result.series:
            assert loaded.series[name].ratios == result.series[name].ratios

    def test_with_filter_populates_filtered_series(self):
        result = run_experiment(small_spec(with_filter=True, metrics=("RA",)))
        series = result.series["RA"]
        assert series.filtered_ratios is not None
        assert len(series.filtered_ratios) == result.steps_evaluated
        assert series.mean_filtered_ratio is not None

    def test_deterministic(self):
        a = run_experiment(small_spec())
        b = run_experiment(small_spec())
        assert a.to_json() == b.to_json()

    def test_trace_file_dataset(self, tmp_path):
        from repro.generators import presets
        from repro.graph.io import write_trace

        path = tmp_path / "trace.txt"
        write_trace(presets.facebook_like(scale=0.15, seed=1), path)
        result = run_experiment(
            small_spec(dataset=str(path), metrics=("CN",), max_steps=2)
        )
        assert result.steps_evaluated == 2

    def test_degenerate_spec_rejected(self):
        with pytest.raises(ValueError, match="no prediction steps"):
            run_experiment(small_spec(delta=10**9))


class TestMetricSeries:
    def test_empty_series_means(self):
        series = MetricSeries(metric="CN")
        assert series.mean_ratio == 0.0
        assert series.mean_filtered_ratio is None


class TestResultRoundTrip:
    """`ExperimentResult.from_json` -> `MetricSeries` edge cases."""

    def make_result(self, **series_kwargs) -> ExperimentResult:
        result = ExperimentResult(
            spec=small_spec(), num_snapshots=4, steps_evaluated=3
        )
        result.series["CN"] = MetricSeries(
            metric="CN", ratios=[1.0, 2.0, 3.0], absolutes=[0.1, 0.2, 0.3],
            **series_kwargs,
        )
        return result

    def test_filtered_none_survives_round_trip(self):
        loaded = ExperimentResult.from_json(
            self.make_result(filtered_ratios=None).to_json()
        )
        assert loaded.series["CN"].filtered_ratios is None
        assert loaded.series["CN"].mean_filtered_ratio is None

    def test_filtered_empty_list_survives_round_trip(self):
        """`filtered_ratios=[]` (filter on, zero steps recorded) must not
        collapse to None: the distinction encodes whether the filter ran."""
        loaded = ExperimentResult.from_json(
            self.make_result(filtered_ratios=[]).to_json()
        )
        assert loaded.series["CN"].filtered_ratios == []
        assert loaded.series["CN"].filtered_ratios is not None

    def test_filtered_values_survive_round_trip(self):
        loaded = ExperimentResult.from_json(
            self.make_result(filtered_ratios=[1.5, 2.5, 3.5]).to_json()
        )
        assert loaded.series["CN"].filtered_ratios == [1.5, 2.5, 3.5]

    def test_missing_filtered_key_defaults_to_none(self):
        """Result files written before the filtered field existed load."""
        payload = json.loads(self.make_result().to_json())
        del payload["series"]["CN"]["filtered_ratios"]
        loaded = ExperimentResult.from_json(json.dumps(payload))
        assert loaded.series["CN"].filtered_ratios is None

    def test_empty_series_summary_table(self):
        """A series with no evaluated steps renders without crashing."""
        result = ExperimentResult(spec=small_spec(), num_snapshots=1, steps_evaluated=0)
        result.series["CN"] = MetricSeries(metric="CN")
        table = result.summary_table()
        assert "CN" in table and "0.00" in table

    def test_no_series_summary_table(self):
        result = ExperimentResult(spec=small_spec(), num_snapshots=1, steps_evaluated=0)
        assert result.summary_table().startswith("metric")

    def test_timing_excluded_from_canonical_json(self):
        result = self.make_result()
        result.timing = RunTiming(n_jobs=2, wall_seconds=1.0, cells=6)
        assert "timing" not in json.loads(result.to_json())
        assert ExperimentResult.from_json(result.to_json()).timing is None

    def test_timing_round_trips_when_included(self):
        result = self.make_result()
        result.timing = RunTiming(
            n_jobs=2, wall_seconds=1.25, cells=6, cell_seconds=2.0,
            max_cell_seconds=0.5, cache_hits=10, cache_misses=4,
        )
        loaded = ExperimentResult.from_json(result.to_json(include_timing=True))
        assert loaded.timing == result.timing
        assert "cache 10 hits / 4 misses" in loaded.summary_table()

    def test_save_round_trips_via_file(self, tmp_path):
        result = self.make_result(filtered_ratios=[])
        result.timing = RunTiming(n_jobs=1, wall_seconds=0.5, cells=6)
        path = tmp_path / "result.json"
        result.save(path, include_timing=True)
        loaded = ExperimentResult.from_json(path.read_text())
        assert loaded.series["CN"].filtered_ratios == []
        assert loaded.timing == result.timing

    def test_spec_n_jobs_round_trips(self):
        spec = small_spec(n_jobs=4)
        assert ExperimentSpec.from_json(spec.to_json()).n_jobs == 4
        # specs written before n_jobs existed still load (default 1)
        payload = json.loads(small_spec().to_json())
        del payload["n_jobs"]
        assert ExperimentSpec.from_json(json.dumps(payload)).n_jobs == 1
