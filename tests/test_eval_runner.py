"""Tests for the declarative experiment runner."""

import json

import pytest

from repro.eval.runner import (
    ExperimentResult,
    ExperimentSpec,
    MetricSeries,
    run_experiment,
)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="unit",
        dataset="facebook",
        scale=0.15,
        generation_seed=3,
        metrics=("CN", "PA"),
        repeats=2,
        max_steps=3,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_round_trip_json(self):
        spec = small_spec()
        loaded = ExperimentSpec.from_json(spec.to_json())
        assert loaded == spec

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(small_spec().to_json())
        assert ExperimentSpec.load(path) == small_spec()

    def test_validation_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            small_spec(metrics=("CN", "WAT")).validate()

    def test_validation_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            small_spec(repeats=0).validate()

    def test_from_json_validates(self):
        bad = json.dumps({"metrics": ["NOPE"]})
        with pytest.raises(ValueError):
            ExperimentSpec.from_json(bad)


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return run_experiment(small_spec())

    def test_series_per_metric(self, result):
        assert set(result.series) == {"CN", "PA"}
        for series in result.series.values():
            assert len(series.ratios) == result.steps_evaluated == 3
            assert len(series.absolutes) == 3

    def test_ranking_sorted(self, result):
        ranking = result.ranking()
        means = [result.series[m].mean_ratio for m in ranking]
        assert means == sorted(means, reverse=True)

    def test_summary_table_contains_metrics(self, result):
        table = result.summary_table()
        assert "CN" in table and "PA" in table

    def test_result_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        result.save(path)
        loaded = ExperimentResult.from_json(path.read_text())
        assert loaded.spec == result.spec
        assert loaded.steps_evaluated == result.steps_evaluated
        for name in result.series:
            assert loaded.series[name].ratios == result.series[name].ratios

    def test_with_filter_populates_filtered_series(self):
        result = run_experiment(small_spec(with_filter=True, metrics=("RA",)))
        series = result.series["RA"]
        assert series.filtered_ratios is not None
        assert len(series.filtered_ratios) == result.steps_evaluated
        assert series.mean_filtered_ratio is not None

    def test_deterministic(self):
        a = run_experiment(small_spec())
        b = run_experiment(small_spec())
        assert a.to_json() == b.to_json()

    def test_trace_file_dataset(self, tmp_path):
        from repro.generators import presets
        from repro.graph.io import write_trace

        path = tmp_path / "trace.txt"
        write_trace(presets.facebook_like(scale=0.15, seed=1), path)
        result = run_experiment(
            small_spec(dataset=str(path), metrics=("CN",), max_steps=2)
        )
        assert result.steps_evaluated == 2

    def test_degenerate_spec_rejected(self):
        with pytest.raises(ValueError, match="no prediction steps"):
            run_experiment(small_spec(delta=10**9))


class TestMetricSeries:
    def test_empty_series_means(self):
        series = MetricSeries(metric="CN")
        assert series.mean_ratio == 0.0
        assert series.mean_filtered_ratio is None
