"""CLI tests for the telemetry surface: --telemetry, trace subcommands,
--timing-json, --version, and the `run` alias."""

from __future__ import annotations

import json

import pytest

from repro import __version__, telemetry
from repro.__main__ import main
from repro.eval.runner import ExperimentSpec, RunTiming


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.shutdown()
    yield
    telemetry.shutdown()


@pytest.fixture()
def spec_path(tmp_path):
    spec = ExperimentSpec(
        name="cli-telemetry",
        dataset="facebook",
        scale=0.1,
        generation_seed=1,
        metrics=("CN", "PA"),
        repeats=2,
        max_steps=1,
    )
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json(), encoding="utf-8")
    return path


class TestVersionAndHelp:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for code in ("0 ", "1 ", "2 ", "130"):
            assert code in out
        assert "interrupt" in out.lower()


class TestRunAlias:
    def test_run_is_an_alias_for_experiment(self, spec_path, capsys):
        assert main(["run", "--spec", str(spec_path)]) == 0
        assert "cli-telemetry" in capsys.readouterr().out


class TestTelemetryFlag:
    def test_run_records_a_readable_trace(self, spec_path, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        prom_path = tmp_path / "run.prom"
        assert main(
            [
                "run", "--spec", str(spec_path), "--jobs", "2",
                "--telemetry", str(trace_path),
                "--telemetry-prom", str(prom_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert str(trace_path) in out
        # trace is valid and the module globals were restored
        assert not telemetry.tracer.enabled
        records = [
            json.loads(l) for l in trace_path.read_text().splitlines()
        ]
        assert records[0]["kind"] == "header"
        assert records[0]["name"] == "cli-telemetry"
        assert "repro_cells_executed" in prom_path.read_text()

    def test_prom_without_telemetry_is_a_usage_error(self, spec_path, tmp_path):
        assert main(
            [
                "run", "--spec", str(spec_path),
                "--telemetry-prom", str(tmp_path / "x.prom"),
            ]
        ) == 2

    def test_trace_summary_names_the_phases(self, spec_path, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        assert main(
            ["run", "--spec", str(spec_path), "--telemetry", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "[run] total" in out
        for phase in ("plan", "execute", "reduce"):
            assert phase in out
        assert "[counters]" in out and "cells.executed" in out

    def test_trace_show_renders_the_tree(self, spec_path, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        assert main(
            ["run", "--spec", str(spec_path), "--telemetry", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "show", str(trace_path), "--max-depth", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[1].startswith("run ")
        assert "  plan" in out
        assert "cell.execute" not in out  # depth-limited

    def test_trace_summary_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_summary_rejects_garbage_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n", encoding="utf-8")
        assert main(["trace", "summary", str(bad)]) == 2


class TestTimingJson:
    def test_timing_json_round_trips(self, spec_path, tmp_path, capsys):
        timing_path = tmp_path / "timing.json"
        assert main(
            [
                "run", "--spec", str(spec_path),
                "--timing-json", str(timing_path),
            ]
        ) == 0
        payload = json.loads(timing_path.read_text())
        assert payload["name"] == "cli-telemetry"
        timing = RunTiming.from_payload(payload["timing"])
        assert timing.cells == 4  # 2 metrics x 1 step x 2 repeats
        assert timing.wall_seconds > 0
        assert payload["timing"] == timing.to_payload()  # lossless
        assert payload["faults"] == {
            "failure_kinds": {},
            "retries": 0,
            "pool_rebuilds": 0,
            "degraded_to_serial": False,
            "journal_cells": 0,
        }

    def test_timing_json_never_leaks_into_out_results(
        self, spec_path, tmp_path, capsys
    ):
        out_path = tmp_path / "result.json"
        assert main(
            [
                "run", "--spec", str(spec_path), "--out", str(out_path),
                "--timing-json", str(tmp_path / "t.json"),
            ]
        ) == 0
        result = json.loads(out_path.read_text())
        assert "timing" not in result
