"""WAL format, torn-tail taxonomy, checkpoints, retention, recovery."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.graph.delta import DeltaGraph
from repro.graph.dyngraph import TemporalGraph
from repro.graph.wal import (
    WAL_FILE,
    WAL_MAGIC,
    RecoveryError,
    WalCorruptError,
    WalMismatchError,
    WriteAheadLog,
    checkpoint_path,
    list_checkpoints,
    load_checkpoint,
    newest_valid_checkpoint,
    prune_checkpoints,
    recover_state,
    scan_wal,
    verify_wal,
    wal_fingerprint,
    write_checkpoint,
)
from repro.ingest.policy import IngestPolicy


def base_trace() -> TemporalGraph:
    u = np.array([0, 1, 2, 0], dtype=np.int64)
    v = np.array([1, 2, 3, 2], dtype=np.int64)
    t = np.array([1.0, 2.0, 3.0, 4.0])
    return TemporalGraph.from_columns(u, v, t, validated=True)


POLICY = IngestPolicy.from_string("repair")


def arrays(events):
    return (
        np.array([e[0] for e in events], dtype=np.int64),
        np.array([e[1] for e in events], dtype=np.int64),
        np.array([e[2] for e in events], dtype=np.float64),
    )


@pytest.fixture
def wal_dir(tmp_path):
    return str(tmp_path / "wal")


def make_wal(wal_dir, batches, fingerprint=None):
    os.makedirs(wal_dir, exist_ok=True)
    fingerprint = fingerprint or wal_fingerprint(base_trace(), POLICY)
    path = os.path.join(wal_dir, WAL_FILE)
    log = WriteAheadLog.create(path, fingerprint)
    for events in batches:
        log.append(*arrays(events))
        log.sync()
    log.close()
    return path


BATCHES = [
    [(3, 4, 5.0), (4, 5, 6.0)],
    [(5, 6, 7.0)],
    [(0, 6, 8.0), (1, 6, 8.5), (2, 7, 9.0)],
]


class TestFraming:
    def test_round_trip_is_bit_exact(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        header, records, tail = scan_wal(path)
        assert tail.clean and tail.torn_bytes == 0
        assert header["fingerprint"] == wal_fingerprint(base_trace(), POLICY)
        assert [r.seq for r in records] == [1, 2, 3]
        for record, events in zip(records, BATCHES):
            u, v, t = arrays(events)
            assert record.u.tobytes() == u.tobytes()
            assert record.v.tobytes() == v.tobytes()
            assert record.t.tobytes() == t.tobytes()
            assert record.events() == events

    def test_fingerprint_binds_trace_and_policy(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        good = wal_fingerprint(base_trace(), POLICY)
        scan_wal(path, good)  # matching fingerprint passes
        with pytest.raises(WalMismatchError):
            scan_wal(path, wal_fingerprint(base_trace(), IngestPolicy.strict()))
        bigger = base_trace()
        bigger.add_edge(7, 8, 10.0)
        with pytest.raises(WalMismatchError):
            scan_wal(path, wal_fingerprint(bigger, POLICY))

    def test_missing_magic_and_missing_header_are_corrupt(self, tmp_path):
        bad = tmp_path / "bad.log"
        bad.write_bytes(b"not a wal at all")
        with pytest.raises(WalCorruptError):
            scan_wal(bad)
        bad.write_bytes(WAL_MAGIC)  # magic but no header record
        with pytest.raises(WalCorruptError):
            scan_wal(bad)

    def test_append_after_reopen_continues_sequence(self, wal_dir):
        path = make_wal(wal_dir, BATCHES[:2])
        log, records, tail = WriteAheadLog.open(path)
        assert tail.clean and log.seq == 2
        log.append(*arrays(BATCHES[2]))
        log.close()
        _, records, _ = scan_wal(path)
        assert [r.seq for r in records] == [1, 2, 3]


class TestTornTail:
    """Crash damage (at physical EOF) is tolerated; mid-file damage is not."""

    @pytest.mark.parametrize("garbage", [b"\x07", b"\x07\x00\x00\x00", b"\xff" * 37])
    def test_trailing_garbage_is_a_torn_tail(self, wal_dir, garbage):
        path = make_wal(wal_dir, BATCHES)
        with open(path, "ab") as fh:
            fh.write(garbage)
        _, records, tail = scan_wal(path)
        assert len(records) == 3  # every intact record survives
        assert not tail.clean
        assert tail.torn_bytes == len(garbage)

    def test_truncated_final_record_is_a_torn_tail(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        clean_size = os.path.getsize(path)
        _, full, _ = scan_wal(path)
        # every truncation point inside the final record is a tear
        for cut in range(clean_size - 1, clean_size - 30, -7):
            with open(path, "rb") as fh:
                blob = fh.read()
            torn_path = path + ".torn"
            with open(torn_path, "wb") as fh:
                fh.write(blob[:cut])
            _, records, tail = scan_wal(torn_path)
            assert not tail.clean
            assert len(records) == len(full) - 1

    def test_corrupt_final_checksum_is_a_torn_tail(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip a payload byte of the final record
        open(path, "wb").write(bytes(blob))
        _, records, tail = scan_wal(path)
        assert len(records) == 2
        assert not tail.clean

    def test_midfile_corruption_raises(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        blob = bytearray(open(path, "rb").read())
        blob[len(WAL_MAGIC) + 30] ^= 0xFF  # inside the header record
        open(path, "wb").write(bytes(blob))
        with pytest.raises(WalCorruptError, match="mid-file|header"):
            scan_wal(path)

    def test_open_truncates_the_tear_and_resumes(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        with open(path, "ab") as fh:
            fh.write(b"\x13\x00\x00")
        log, records, tail = WriteAheadLog.open(path)
        assert tail.torn_bytes == 3 and len(records) == 3
        log.append(*arrays([(9, 10, 11.0)]))
        log.close()
        report = verify_wal(path)
        assert report.clean and report.records == 4


class TestVerify:
    def test_clean_torn_corrupt_statuses(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        assert verify_wal(path).status == "clean"
        assert verify_wal(path).events == 6
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02")
        torn = verify_wal(path)
        assert torn.status == "torn" and torn.torn_bytes == 2
        blob = bytearray(open(path, "rb").read())
        blob[len(WAL_MAGIC) + 14] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert verify_wal(path).status == "corrupt"


class TestCheckpoints:
    def engine_after(self, n_batches):
        engine = DeltaGraph(base_trace())
        for events in BATCHES[:n_batches]:
            engine.apply(events)
        return engine

    def test_checkpoint_round_trip(self, wal_dir):
        make_wal(wal_dir, BATCHES)
        fp = wal_fingerprint(base_trace(), POLICY)
        engine = self.engine_after(2)
        path = write_checkpoint(wal_dir, 2, engine.trace, fp)
        payload = load_checkpoint(path, fp)
        assert payload is not None and payload["seq"] == 2
        u, v, t = engine.trace.columns()
        assert payload["u"].tobytes() == u.tobytes()
        assert payload["v"].tobytes() == v.tobytes()
        assert payload["t"].tobytes() == t.tobytes()

    def test_damaged_checkpoints_load_as_none(self, wal_dir):
        make_wal(wal_dir, BATCHES)
        fp = wal_fingerprint(base_trace(), POLICY)
        path = write_checkpoint(wal_dir, 1, self.engine_after(1).trace, fp)
        blob = open(path, "rb").read()
        # truncated
        open(path, "wb").write(blob[: len(blob) // 2])
        assert load_checkpoint(path, fp) is None
        # not even a pickle
        open(path, "wb").write(b"garbage")
        assert load_checkpoint(path, fp) is None
        # valid pickle, wrong shape
        with open(path, "wb") as fh:
            pickle.dump({"version": 999}, fh)
        assert load_checkpoint(path, fp) is None

    def test_checkpoint_fingerprint_mismatch_raises(self, wal_dir):
        make_wal(wal_dir, BATCHES)
        fp = wal_fingerprint(base_trace(), POLICY)
        path = write_checkpoint(wal_dir, 1, self.engine_after(1).trace, fp)
        with pytest.raises(WalMismatchError):
            load_checkpoint(path, "0" * 64)

    def test_retention_prunes_oldest_and_stray_tmp(self, wal_dir):
        make_wal(wal_dir, BATCHES)
        fp = wal_fingerprint(base_trace(), POLICY)
        for seq in (1, 2, 3):
            write_checkpoint(wal_dir, seq, self.engine_after(seq).trace, fp)
        stray = checkpoint_path(wal_dir, 9) + ".tmp"
        open(stray, "wb").write(b"partial")
        removed = prune_checkpoints(wal_dir, keep=2)
        assert removed == 2  # checkpoint-1 and the stray .tmp
        assert [seq for seq, _ in list_checkpoints(wal_dir)] == [2, 3]
        assert not os.path.exists(stray)

    def test_newest_valid_preferred_over_newer_damaged(self, wal_dir):
        """A truncated newer checkpoint falls back to the older valid one."""
        make_wal(wal_dir, BATCHES)
        fp = wal_fingerprint(base_trace(), POLICY)
        write_checkpoint(wal_dir, 1, self.engine_after(1).trace, fp)
        newer = write_checkpoint(wal_dir, 3, self.engine_after(3).trace, fp)
        blob = open(newer, "rb").read()
        open(newer, "wb").write(blob[: len(blob) - 20])  # truncate it
        payload = newest_valid_checkpoint(wal_dir, fp)
        assert payload is not None and payload["seq"] == 1
        # recovery uses checkpoint 1 and replays records 2..3 on top
        result = recover_state(wal_dir, base_trace(), POLICY)
        assert result.checkpoint_seq == 1
        assert result.records_replayed == 2
        reference = self.engine_after(3)
        ru, rv, rt = result.engine.trace.columns()
        fu, fv, ft = reference.trace.columns()
        assert (
            ru.tobytes() == fu.tobytes()
            and rv.tobytes() == fv.tobytes()
            and rt.tobytes() == ft.tobytes()
        )

    def test_checkpoint_ahead_of_wal_is_skipped(self, wal_dir):
        """A checkpoint claiming unlogged records must not be used."""
        make_wal(wal_dir, BATCHES[:1])  # WAL has 1 record
        fp = wal_fingerprint(base_trace(), POLICY)
        write_checkpoint(wal_dir, 3, self.engine_after(3).trace, fp)
        assert newest_valid_checkpoint(wal_dir, fp, max_seq=1) is None
        result = recover_state(wal_dir, base_trace(), POLICY)
        assert result.checkpoint_seq == 0 and result.records_replayed == 1


class TestRecovery:
    def test_recover_replays_to_reference_state(self, wal_dir):
        make_wal(wal_dir, BATCHES)
        result = recover_state(wal_dir, base_trace(), POLICY)
        assert result.clean and result.wal_seq == 3
        reference = DeltaGraph(base_trace())
        for events in BATCHES:
            reference.apply(events)
        ru, rv, rt = result.engine.trace.columns()
        fu, fv, ft = reference.trace.columns()
        assert ru.tobytes() == fu.tobytes()
        assert rv.tobytes() == fv.tobytes()
        assert rt.tobytes() == ft.tobytes()

    def test_recover_discards_torn_tail(self, wal_dir):
        path = make_wal(wal_dir, BATCHES)
        with open(path, "ab") as fh:
            fh.write(b"\x55" * 9)
        result = recover_state(wal_dir, base_trace(), POLICY)
        assert result.torn_bytes == 9 and result.records_replayed == 3

    def test_recover_rejects_wrong_lineage(self, wal_dir):
        make_wal(wal_dir, BATCHES)
        with pytest.raises(WalMismatchError):
            recover_state(wal_dir, base_trace(), IngestPolicy.strict())

    def test_recovery_error_carries_the_failed_result(self, wal_dir, monkeypatch):
        make_wal(wal_dir, BATCHES)
        from repro.graph import delta as delta_mod

        class BadAudit:
            ok = False

            def summary(self):
                return "audit: 1 VIOLATED (injected)"

        monkeypatch.setattr(delta_mod.DeltaGraph, "audit", lambda self: BadAudit())
        with pytest.raises(RecoveryError) as err:
            recover_state(wal_dir, base_trace(), POLICY)
        assert err.value.result.records_replayed == 3
        assert not err.value.result.clean
