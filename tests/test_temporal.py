"""Tests for temporal activity features, filters, calibration, time series."""

import numpy as np
import pytest

from repro.eval.experiment import evaluate_step, prediction_steps
from repro.graph.snapshots import Snapshot
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import (
    FilterParams,
    TemporalFilter,
    TimeSeriesMetric,
    calibrate_filter,
    pair_activity,
)
from repro.temporal.activity import cn_time_gap, node_idle_times, node_recent_edges
from repro.temporal.filters import PAPER_PARAMS
from tests.conftest import build_trace


class TestActivityFeatures:
    def test_node_idle_times_alignment(self, tiny_snapshot):
        idle = node_idle_times(tiny_snapshot)
        for node, idx in tiny_snapshot.node_pos.items():
            assert idle[idx] == tiny_snapshot.idle_time(node)

    def test_node_recent_edges_alignment(self, tiny_snapshot):
        recent = node_recent_edges(tiny_snapshot, window=3.0)
        for node, idx in tiny_snapshot.node_pos.items():
            assert recent[idx] == tiny_snapshot.recent_edge_count(node, 3.0)

    def test_cn_time_gap_hand_computed(self, tiny_snapshot):
        # Pair (0, 4): common neighbours {1, 3}.
        # Via 1: max(t(0,1)=0, t(1,4)=7) = 7.  Via 3: max(t(0,3)=5, t(3,4)=4)=5.
        # Latest arrival = 7; snapshot time = 11 -> gap 4.
        assert cn_time_gap(tiny_snapshot, 0, 4) == pytest.approx(4.0)

    def test_cn_time_gap_no_common_neighbour(self, tiny_snapshot):
        assert cn_time_gap(tiny_snapshot, 0, 5) == np.inf

    def test_pair_activity_active_inactive_split(self, tiny_snapshot):
        pairs = np.asarray([[3, 7]])
        act = pair_activity(tiny_snapshot, pairs, window=5.0)
        # idle(3) = 11-5 = 6; idle(7) = 11-11 = 0.
        assert act.active_idle[0] == 0.0
        assert act.inactive_idle[0] == 6.0

    def test_pair_activity_recent_edges_of_active(self, tiny_snapshot):
        pairs = np.asarray([[3, 7]])
        act = pair_activity(tiny_snapshot, pairs, window=5.0)
        # Active endpoint is 7 (idle 0); its edges in (6, 11]: t=10, t=11.
        assert act.recent_edges[0] == 2

    def test_cn_gap_mask_restricts_computation(self, tiny_snapshot):
        pairs = np.asarray([[0, 4], [1, 3]])
        act = pair_activity(
            tiny_snapshot, pairs, window=5.0, cn_gap_mask=np.asarray([False, True])
        )
        assert act.cn_gap[0] == np.inf  # skipped
        assert np.isfinite(act.cn_gap[1])


class TestFilterParams:
    def test_paper_table7(self):
        params = FilterParams.paper("renren")
        assert params.d_act == 3
        assert params.min_new_edges == 3
        assert set(PAPER_PARAMS) == {"facebook", "youtube", "renren"}

    def test_validation(self):
        with pytest.raises(ValueError):
            FilterParams(d_act=0, d_inact=1, window=1, min_new_edges=1, d_cn=1)
        with pytest.raises(ValueError):
            FilterParams(d_act=1, d_inact=1, window=1, min_new_edges=-1, d_cn=1)


class TestTemporalFilter:
    def make_filter(self, **kw):
        defaults = dict(d_act=2.0, d_inact=7.0, window=5.0, min_new_edges=1, d_cn=6.0)
        defaults.update(kw)
        return TemporalFilter(FilterParams(**defaults))

    def test_keeps_active_pairs(self, tiny_snapshot):
        # Pair (2, 7): idle(2)=11-9=2 -> fails d_act=2 (not <2); widen.
        filt = self.make_filter(d_act=3.0)
        mask = filt(tiny_snapshot, np.asarray([[2, 7]]))
        assert mask[0]

    def test_rejects_dormant_pairs(self, tiny_snapshot):
        # Pair (1, 3): idle(1)=4, idle(3)=6 -> fails d_act=2.
        filt = self.make_filter()
        mask = filt(tiny_snapshot, np.asarray([[1, 3]]))
        assert not mask[0]

    def test_cn_gap_criterion(self, tiny_snapshot):
        # Pair (0, 4) has CN gap 4; filter with d_cn=3 must drop it even
        # though both endpoints are recent enough with loose node criteria.
        loose = self.make_filter(d_act=12, d_inact=12, min_new_edges=0, d_cn=3.0)
        assert not loose(tiny_snapshot, np.asarray([[0, 4]]))[0]
        kept = self.make_filter(d_act=12, d_inact=12, min_new_edges=0, d_cn=5.0)
        assert kept(tiny_snapshot, np.asarray([[0, 4]]))[0]

    def test_no_cn_pairs_skip_gap_criterion(self, tiny_snapshot):
        # Pair (0, 5) has no common neighbour: criterion 4 must not drop it.
        filt = self.make_filter(d_act=12, d_inact=12, min_new_edges=0, d_cn=0.001)
        assert filt(tiny_snapshot, np.asarray([[0, 5]]))[0]

    def test_empty_pairs(self, tiny_snapshot):
        filt = self.make_filter()
        assert filt(tiny_snapshot, np.zeros((0, 2), dtype=np.int64)).shape == (0,)

    def test_reduction_metric(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        pairs = two_hop_pairs(s)
        filt = self.make_filter(d_act=1.0, d_inact=2.0)
        reduction = filt.reduction(s, pairs)
        assert 0.0 <= reduction <= 1.0

    def test_positives_survive_better_than_negatives(self, facebook_snapshots):
        """The core property: ground-truth pairs pass the (calibrated)
        filter at a much higher rate than arbitrary candidates."""
        steps = list(prediction_steps(facebook_snapshots))
        cal_prev, _, cal_truth = steps[-3]
        params = calibrate_filter(
            cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0
        )
        filt = TemporalFilter(params)
        prev, _, truth = steps[-1]
        pairs = two_hop_pairs(prev)
        mask = filt(prev, pairs)
        truth_arr = np.asarray(sorted(truth & {tuple(p) for p in pairs.tolist()}))
        if len(truth_arr) < 5:
            pytest.skip("too few 2-hop positives in this step")
        pos_rate = filt(prev, truth_arr).mean()
        assert pos_rate > mask.mean()


class TestCalibration:
    def test_returns_valid_params(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        params = calibrate_filter(prev, truth, two_hop_pairs(prev), rng=0)
        assert params.d_act > 0
        assert params.d_cn > 0

    def test_coverage_widens_thresholds(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        pairs = two_hop_pairs(prev)
        narrow = calibrate_filter(prev, truth, pairs, coverage=0.5, rng=0)
        wide = calibrate_filter(prev, truth, pairs, coverage=0.95, rng=0)
        assert wide.d_act >= narrow.d_act
        assert wide.d_inact >= narrow.d_inact

    def test_validation(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        pairs = two_hop_pairs(prev)
        with pytest.raises(ValueError):
            calibrate_filter(prev, truth, pairs, coverage=1.5)
        with pytest.raises(ValueError):
            calibrate_filter(prev, set(), pairs)  # no positives


class TestTimeSeriesMetric:
    def test_name_and_strategy_follow_base(self):
        ts = TimeSeriesMetric("RA", "ma")
        assert ts.name == "RA+MA"
        assert ts.candidate_strategy == "two_hop"
        ts_pa = TimeSeriesMetric("PA", "lr")
        assert ts_pa.candidate_strategy == "all"

    def test_ma_is_mean_of_history(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        ts = TimeSeriesMetric("CN", "ma", points=2, spacing_days=5.0).fit(s)
        pairs = two_hop_pairs(s)[:20]
        scores = ts.score(pairs)
        # Manual: mean of CN on the two history snapshots.
        from repro.metrics.base import get_metric

        manual = np.zeros(len(pairs))
        for snap in ts._history:
            exists = np.asarray(
                [snap.has_node(int(u)) and snap.has_node(int(v)) for u, v in pairs]
            )
            vals = np.zeros(len(pairs))
            if exists.any():
                vals[exists] = get_metric("CN").fit(snap).score(pairs[exists])
            manual += vals
        manual /= len(ts._history)
        assert scores == pytest.approx(manual)

    def test_lr_extrapolates_trend(self):
        from repro.temporal.timeseries import _linear_extrapolate

        series = np.asarray([[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]])
        out = _linear_extrapolate(series)
        assert out[0] == pytest.approx(4.0)
        assert out[1] == pytest.approx(5.0)

    def test_single_point_degenerates(self):
        from repro.temporal.timeseries import _linear_extrapolate

        assert _linear_extrapolate(np.asarray([[7.0]]))[0] == 7.0

    def test_plugs_into_evaluate_step(self, facebook_snapshots):
        steps = list(prediction_steps(facebook_snapshots))
        prev, _, truth = steps[-1]
        ts = TimeSeriesMetric("RA", "ma", points=2)
        result = evaluate_step(ts, prev, truth, rng=0)
        assert result.metric == "RA+MA"
        assert result.outcome.k == len(truth)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesMetric("RA", "median")
        with pytest.raises(ValueError):
            TimeSeriesMetric("RA", "ma", points=0)
