"""Correctness tests for the local naive Bayes metrics (BCN / BAA / BRA)."""

import math

import numpy as np
import pytest

from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric
from repro.metrics.naive_bayes import (
    node_triangle_counts,
    prior_constant,
    role_function,
)

PAIRS = np.asarray([[0, 3], [1, 3]], dtype=np.int64)


@pytest.fixture
def snap(triangle_plus_trace):
    return Snapshot(triangle_plus_trace, triangle_plus_trace.num_edges)


class TestBuildingBlocks:
    def test_triangle_counts(self, snap):
        # node_list = [0, 1, 2, 3]; the single triangle is 0-1-2.
        assert node_triangle_counts(snap).tolist() == [1.0, 1.0, 1.0, 0.0]

    def test_triangle_counts_match_networkx(self, facebook_snapshots):
        import networkx as nx

        s = facebook_snapshots[0]
        expected = nx.triangles(s.to_networkx())
        ours = node_triangle_counts(s)
        for node, idx in s.node_pos.items():
            assert ours[idx] == expected[node]

    def test_role_function(self, snap):
        # Node 2: deg 3, 1 triangle, wedges C(3,2)=3 -> non-tri 2.
        # R_2 = (1+1)/(2+1) = 2/3.
        r = role_function(snap)
        assert r[snap.node_pos[2]] == pytest.approx(2 / 3)
        # Node 3: deg 1, no wedge: R = (0+1)/(0+1) = 1.
        assert r[snap.node_pos[3]] == pytest.approx(1.0)

    def test_prior_constant(self, snap):
        # s = 4*3/(2*4) - 1 = 0.5.
        assert prior_constant(snap) == pytest.approx(0.5)

    def test_prior_constant_empty_graph(self, tiny_trace):
        s = Snapshot(tiny_trace, 1)
        assert prior_constant(s) == pytest.approx(2 * 1 / 2 - 1)


class TestHandComputedScores:
    def test_bcn(self, snap):
        # BCN(0,3) = |CN| log(s) + log(R_2) = log(0.5) + log(2/3).
        expected = math.log(0.5) + math.log(2 / 3)
        scores = get_metric("BCN").fit(snap).score(PAIRS)
        assert scores == pytest.approx([expected, expected])

    def test_baa(self, snap):
        expected = (math.log(0.5) + math.log(2 / 3)) / math.log(3)
        scores = get_metric("BAA").fit(snap).score(PAIRS)
        assert scores == pytest.approx([expected, expected])

    def test_bra(self, snap):
        expected = (math.log(0.5) + math.log(2 / 3)) / 3
        scores = get_metric("BRA").fit(snap).score(PAIRS)
        assert scores == pytest.approx([expected, expected])


class TestRankingBehaviour:
    def test_lnb_ranks_like_base_plus_role(self, facebook_snapshots):
        """On pairs with equal CN count, LNB prefers triangle-closing
        neighbours; overall ranking must correlate strongly with the base
        metric (the paper notes they perform similarly)."""
        from scipy.stats import spearmanr

        from repro.metrics.candidates import two_hop_pairs

        s = facebook_snapshots[-1]
        pairs = two_hop_pairs(s)[:2000]
        cn = get_metric("CN").fit(s).score(pairs)
        bcn = get_metric("BCN").fit(s).score(pairs)
        rho = spearmanr(cn, bcn).statistic
        assert rho > 0.7

    def test_zero_beyond_two_hops(self, tiny_snapshot):
        # Nodes 0 and 5 are 3 hops apart (no common neighbour).
        pairs = np.asarray([[0, 5]], dtype=np.int64)
        for name in ("BCN", "BAA", "BRA"):
            assert get_metric(name).fit(tiny_snapshot).score(pairs)[0] == 0.0
