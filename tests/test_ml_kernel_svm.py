"""Tests for the kernel SVM."""

import numpy as np
import pytest

from repro.ml import LinearSVM, accuracy_score
from repro.ml.kernel_svm import KernelSVM, linear_kernel, rbf_kernel
from tests.test_ml_linear import make_blobs


def make_circles(n=400, seed=0):
    """Inner disc (class 1) inside a ring (class 0): not linearly separable."""
    rng = np.random.default_rng(seed)
    radius = np.concatenate([rng.uniform(0, 0.8, n // 2), rng.uniform(1.5, 2.5, n // 2)])
    angle = rng.uniform(0, 2 * np.pi, n)
    x = np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])
    y = (radius < 1.0).astype(int)
    return x, y


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        a = np.random.default_rng(0).normal(size=(10, 3))
        k = rbf_kernel(a, a, gamma=0.7)
        assert np.allclose(np.diag(k), 1.0)

    def test_rbf_symmetric_and_bounded(self):
        a = np.random.default_rng(1).normal(size=(12, 3))
        k = rbf_kernel(a, a, gamma=0.5)
        assert np.allclose(k, k.T)
        assert (k > 0).all() and (k <= 1.0 + 1e-12).all()

    def test_linear_kernel_is_gram(self):
        a = np.random.default_rng(2).normal(size=(6, 4))
        assert np.allclose(linear_kernel(a, a, 0.0), a @ a.T)


class TestKernelSVM:
    def test_solves_circles(self):
        """RBF separates the rings where the linear SVM cannot."""
        x, y = make_circles()
        rbf = KernelSVM(C=5.0).fit(x, y)
        linear = LinearSVM().fit(x, y)
        assert accuracy_score(y, rbf.predict(x)) > 0.95
        assert accuracy_score(y, linear.predict(x)) < 0.8

    def test_linear_kernel_matches_linear_svm_on_blobs(self):
        x, y = make_blobs(sep=3.0, seed=1)
        kernel = KernelSVM(kernel="linear", C=1.0).fit(x, y)
        primal = LinearSVM().fit(x, y)
        agreement = np.mean(kernel.predict(x) == primal.predict(x))
        assert agreement > 0.97

    def test_dual_feasibility(self):
        x, y = make_blobs(n=200, seed=2)
        model = KernelSVM(C=2.0).fit(x, y)
        assert (model.alpha_ >= 0).all()
        assert (model.alpha_ <= 2.0 + 1e-9).all()

    def test_support_vectors_subset(self):
        x, y = make_blobs(n=300, sep=3.0, seed=3)
        model = KernelSVM(C=1.0).fit(x, y)
        # Easily separable data needs only a fraction as support vectors.
        assert 0 < len(model.support_) < len(x)

    def test_gamma_scale_heuristic(self):
        x, y = make_blobs(n=100, seed=4)
        model = KernelSVM().fit(x, y)
        expected = 1.0 / (x.shape[1] * x.var())
        assert model._gamma == pytest.approx(expected)

    def test_max_train_guard(self):
        x = np.zeros((10, 2))
        y = np.arange(10) % 2
        with pytest.raises(ValueError, match="max_train"):
            KernelSVM(max_train=5).fit(x, y)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelSVM(C=0)
        with pytest.raises(ValueError):
            KernelSVM(kernel="poly")
        with pytest.raises(ValueError):
            KernelSVM(gamma=-1.0)
        with pytest.raises(RuntimeError):
            KernelSVM().decision_function(np.zeros((1, 2)))

    def test_linear_svm_not_leaving_accuracy_behind(self):
        """On the (roughly linear) link prediction features, RBF does not
        meaningfully beat the linear SVM — the library's justification for
        defaulting to the scalable primal model."""
        from repro.classify import FeatureExtractor
        from repro.classify.sampling import labeled_pairs, undersample
        from repro.generators import presets
        from repro.graph.snapshots import snapshot_sequence
        from repro.metrics.candidates import all_nonedge_pairs
        from repro.ml import StandardScaler, roc_auc_score

        trace = presets.facebook_like(scale=0.25, seed=9)
        snaps = snapshot_sequence(trace, trace.num_edges // 8)
        g2, g1 = snaps[-2], snaps[-1]
        pairs = all_nonedge_pairs(g2)
        labels = labeled_pairs(g2, g1, pairs)
        pairs, labels = undersample(pairs, labels, theta=1 / 20, rng=0)
        features = FeatureExtractor(("CN", "RA", "JC", "PA")).compute(g2, pairs)
        scaled = StandardScaler().fit_transform(features)
        rbf_auc = roc_auc_score(
            labels, KernelSVM(C=1.0).fit(scaled, labels).decision_function(scaled)
        )
        lin_auc = roc_auc_score(
            labels, LinearSVM().fit(scaled, labels).decision_function(scaled)
        )
        assert rbf_auc < lin_auc + 0.15
