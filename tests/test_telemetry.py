"""Unit tests for repro.telemetry: tracer, metrics, collector, summary."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    NullRegistry,
    NullTracer,
    MetricsRegistry,
    TelemetrySession,
    TraceFileError,
    Tracer,
    prometheus_text,
    read_trace,
    render_tree,
    summarize,
)
from repro.telemetry.metrics import NULL_REGISTRY, SIZE_BUCKETS, Histogram
from repro.telemetry.tracer import NULL_SPAN, NULL_TRACER


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the module-level nulls installed."""
    telemetry.shutdown()
    yield
    telemetry.shutdown()


# ---------------------------------------------------------------------------
# Null fast path
# ---------------------------------------------------------------------------
class TestNullFastPath:
    def test_module_defaults_are_null(self):
        assert telemetry.tracer is NULL_TRACER
        assert telemetry.metrics is NULL_REGISTRY
        assert not telemetry.tracer.enabled
        assert not telemetry.metrics.enabled

    def test_null_span_is_a_shared_singleton(self):
        a = NULL_TRACER.span("anything", size=3)
        b = NULL_TRACER.span("else")
        assert a is b is NULL_SPAN
        with a as span:
            assert span.set(k=1) is span

    def test_null_tracer_operations_are_inert(self):
        t = NullTracer()
        assert t.record("x", 0.0, 1.0) is None
        assert t.merge([{"id": "a"}]) is None
        assert t.drain() == []
        assert t.current_span_id() is None

    def test_null_registry_instruments_are_inert(self):
        r = NullRegistry()
        r.counter("c", key="x").inc(5)
        r.gauge("g").set(2)
        r.histogram("h", bounds=(1.0,)).observe(0.5)
        assert r.payloads() == [] and r.drain() == []

    def test_name_may_also_be_an_attribute(self):
        # `name` is positional-only on span() and the instrument factories,
        # so an attribute/label called "name" never collides.
        NULL_TRACER.span("run", name="spec-name")
        NullRegistry().counter("c", name="label")
        MetricsRegistry().counter("c", name="label").inc()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_parents_and_sequential_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span_id() == outer.span_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = {s["name"]: s for s in tracer.drain()}
        assert spans["outer"]["id"] == "s000001"
        assert spans["inner"]["id"] == "s000002"
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == "s000001"
        assert spans["inner"]["end"] >= spans["inner"]["start"]

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.set(result="ok")
        (payload,) = tracer.drain()
        assert payload["attrs"] == {"size": 3, "result": "ok"}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (payload,) = tracer.drain()
        assert payload["attrs"]["error"] == "RuntimeError"
        assert tracer.current_span_id() is None  # stack unwound

    def test_record_is_retroactive_and_returns_id(self):
        tracer = Tracer()
        span_id = tracer.record("late", 1.0, 2.5, attrs={"k": 1})
        (payload,) = tracer.drain()
        assert payload["id"] == span_id
        assert payload["start"] == 1.0 and payload["end"] == 2.5

    def test_merge_reids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("cell.execute"):
            with worker.span("eval.step"):
                pass
        shipped = worker.drain()

        driver = Tracer()
        parent = driver.record("cell", 0.0, 1.0)
        driver.merge(shipped, parent_id=parent, prefix="wdeadbeef:")
        spans = {s["name"]: s for s in driver.drain()}
        # worker root hangs off the driver-side cell span...
        assert spans["cell.execute"]["parent"] == parent
        # ...and the worker-internal parent link survives, namespaced.
        assert spans["eval.step"]["parent"] == spans["cell.execute"]["id"]
        assert spans["cell.execute"]["id"].startswith("wdeadbeef:")

    def test_auto_flush_at_buffer_limit(self):
        batches = []
        tracer = Tracer(buffer_limit=2, on_flush=batches.append)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        tracer.flush()
        assert sum(len(b) for b in batches) == 5
        assert len(batches[0]) == 2

    def test_flush_is_pid_guarded(self):
        batches = []
        tracer = Tracer(on_flush=batches.append)
        with tracer.span("x"):
            pass
        tracer._pid = tracer._pid + 1  # simulate a forked child
        tracer.flush()
        assert batches == []  # never touches the parent's sink


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_identity_by_name_and_labels(self):
        r = MetricsRegistry()
        r.counter("hits", key="CN").inc()
        r.counter("hits", key="CN").inc(2)
        r.counter("hits", key="PA").inc()
        assert r.counter("hits", key="CN").value == 3
        assert r.counter("hits", key="PA").value == 1

    def test_gauge_last_write_wins(self):
        r = MetricsRegistry()
        r.gauge("level").set(3)
        r.gauge("level").set(7)
        assert r.gauge("level").value == 7

    def test_histogram_buckets_and_overflow(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # inclusive upper edges: 0.5,1.0 -> first; 5.0 -> second; 100 -> +Inf
        assert h.counts == [2, 1, 1]
        assert h.count == 4 and h.sum == pytest.approx(106.5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(bounds=(5.0, 1.0))

    def test_payloads_are_sorted_and_json_safe(self):
        r = MetricsRegistry()
        r.histogram("b.sizes", bounds=SIZE_BUCKETS, strategy="all").observe(50)
        r.counter("a.count").inc()
        payloads = r.payloads()
        assert [p["kind"] for p in payloads] == ["counter", "histogram"]
        json.dumps(payloads)  # must not raise

    def test_drain_zeroes_and_drops_empty_series(self):
        r = MetricsRegistry()
        r.counter("used").inc(4)
        r.counter("untouched")  # zero-valued: never shipped
        shipped = r.drain()
        assert [p["name"] for p in shipped] == ["used"]
        assert r.counter("used").value == 0
        assert r.drain() == []  # second drain ships nothing

    def test_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("cells").inc(2)
        worker.histogram("t", bounds=(1.0,)).observe(0.5)
        driver = MetricsRegistry()
        driver.counter("cells").inc(1)
        driver.merge(worker.drain())
        driver.merge([{"kind": "gauge", "name": "g", "labels": {}, "value": 9}])
        assert driver.counter("cells").value == 3
        assert driver.histogram("t", bounds=(1.0,)).count == 1
        assert driver.gauge("g").value == 9

    def test_merge_rejects_divergent_histogram_bounds(self):
        driver = MetricsRegistry()
        driver.histogram("t", bounds=(1.0, 2.0)).observe(0.5)
        payload = {
            "kind": "histogram", "name": "t", "labels": {},
            "bounds": [1.0, 5.0], "counts": [1, 0, 0], "sum": 0.5, "count": 1,
        }
        with pytest.raises(ValueError, match="diverge"):
            driver.merge([payload])


# ---------------------------------------------------------------------------
# Collector: trace file + Prometheus exposition
# ---------------------------------------------------------------------------
class TestCollect:
    def test_session_writes_header_spans_then_metrics(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        session = TelemetrySession(path, name="unit")
        with session.tracer.span("root"):
            with session.tracer.span("child"):
                pass
        session.registry.counter("c").inc(2)
        session.close()

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["version"] == 1 and lines[0]["name"] == "unit"
        kinds = [l["kind"] for l in lines[1:]]
        assert kinds == ["span", "span", "counter"]
        for span in lines[1:3]:
            assert 0.0 <= span["start"] <= span["end"]  # t0-relative

    def test_session_close_is_idempotent(self, tmp_path):
        session = TelemetrySession(tmp_path / "t.jsonl")
        session.close()
        session.close()

    def test_prometheus_exposition_format(self, tmp_path):
        r = MetricsRegistry()
        r.counter("cells.executed").inc(3)
        r.histogram("cell.seconds", bounds=(0.1, 1.0), engine="pool").observe(0.05)
        r.histogram("cell.seconds", bounds=(0.1, 1.0), engine="pool").observe(5.0)
        text = prometheus_text(r.payloads())
        assert "# TYPE repro_cells_executed counter" in text
        assert "repro_cells_executed 3" in text
        assert 'repro_cell_seconds_bucket{engine="pool",le="0.1"} 1' in text
        assert 'repro_cell_seconds_bucket{engine="pool",le="+Inf"} 2' in text
        assert 'repro_cell_seconds_count{engine="pool"} 2' in text
        assert text.endswith("\n")

    def test_prom_textfile_sink_via_session(self, tmp_path):
        prom = tmp_path / "m.prom"
        session = TelemetrySession(tmp_path / "t.jsonl", prom_path=prom)
        session.registry.counter("x").inc()
        session.close()
        assert "repro_x 1" in prom.read_text()
        assert not prom.with_name(prom.name + ".tmp").exists()


# ---------------------------------------------------------------------------
# Summary: reading + rendering
# ---------------------------------------------------------------------------
def _write_trace(path, records):
    path.write_text(
        "\n".join(json.dumps(r) for r in records) + "\n", encoding="utf-8"
    )


_HEADER = {"kind": "header", "version": 1, "name": "t", "started_unix": 0, "pid": 1}


class TestSummary:
    def test_round_trip_through_session(self, tmp_path):
        path = tmp_path / "t.jsonl"
        session = TelemetrySession(path, name="round")
        with session.tracer.span("run"):
            with session.tracer.span("plan"):
                pass
            with session.tracer.span("execute"):
                pass
        session.registry.counter("cells.executed").inc(4)
        session.close()

        trace = read_trace(path)
        assert [s["name"] for s in trace.roots] == ["run"]
        children = [c["name"] for c in trace.children[trace.roots[0]["id"]]]
        assert children == ["plan", "execute"]
        assert trace.counter_value("cells.executed") == 4

        text = summarize(trace)
        assert "[run] total" in text and "plan" in text and "[counters]" in text
        tree = render_tree(trace, max_depth=0)
        assert "plan" not in tree  # depth-limited to the roots

    def test_counter_value_sums_matching_label_subsets(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [
                _HEADER,
                {"kind": "counter", "name": "f", "labels": {"class": "a"}, "value": 2},
                {"kind": "counter", "name": "f", "labels": {"class": "b"}, "value": 3},
            ],
        )
        trace = read_trace(path)
        assert trace.counter_value("f") == 5
        assert trace.counter_value("f", **{"class": "a"}) == 2
        assert trace.counter_value("missing") == 0

    @pytest.mark.parametrize(
        "records, match",
        [
            ([], "empty"),
            ([{"kind": "span", "id": "x"}], "not a header"),
            ([{"kind": "header", "version": 99}], "unsupported trace version"),
            ([_HEADER, _HEADER], "duplicate header"),
        ],
    )
    def test_malformed_traces_raise(self, tmp_path, records, match):
        path = tmp_path / "bad.jsonl"
        _write_trace(path, records) if records else path.write_text("")
        with pytest.raises(TraceFileError, match=match):
            read_trace(path)

    def test_missing_file_and_non_json_raise(self, tmp_path):
        with pytest.raises(TraceFileError, match="cannot open"):
            read_trace(tmp_path / "nope.jsonl")
        bad = tmp_path / "garbage.jsonl"
        bad.write_text(json.dumps(_HEADER) + "\n{not json\n")
        with pytest.raises(TraceFileError, match="not JSON"):
            read_trace(bad)

    def test_unknown_record_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, [_HEADER, {"kind": "future-thing", "x": 1}])
        assert read_trace(path).spans == []


# ---------------------------------------------------------------------------
# Module lifecycle: configure / shutdown / worker mode
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_configure_swaps_globals_and_shutdown_restores(self, tmp_path):
        session = telemetry.configure(tmp_path / "t.jsonl", name="lc")
        assert telemetry.tracer is session.tracer and telemetry.tracer.enabled
        assert telemetry.metrics is session.registry
        telemetry.shutdown()
        assert telemetry.tracer is NULL_TRACER
        assert telemetry.metrics is NULL_REGISTRY

    def test_double_configure_raises(self, tmp_path):
        telemetry.configure(tmp_path / "a.jsonl")
        with pytest.raises(RuntimeError, match="already configured"):
            telemetry.configure(tmp_path / "b.jsonl")

    def test_worker_mode_buffers_and_ships(self):
        token = telemetry.install_worker_mode()
        assert token and telemetry.worker_token() == token
        with telemetry.tracer.span("cell.execute"):
            pass
        telemetry.metrics.counter("cells.completed").inc()
        payload = telemetry.drain_worker_payload()
        assert payload["token"] == token
        assert [s["name"] for s in payload["spans"]] == ["cell.execute"]
        assert payload["metrics"][0]["name"] == "cells.completed"
        # drained: next call ships nothing
        assert telemetry.drain_worker_payload() is None

    def test_drain_worker_payload_outside_worker_is_none(self):
        assert telemetry.drain_worker_payload() is None


# ---------------------------------------------------------------------------
# Sink durability: flush() and the SIGTERM story
# ---------------------------------------------------------------------------
class TestSinkDurability:
    def test_flush_leaves_a_parseable_trace_mid_session(self, tmp_path):
        path = tmp_path / "flush.jsonl"
        telemetry.configure(path, name="durability")
        with telemetry.tracer.span("work.one"):
            pass
        telemetry.flush()
        # the session is still open, but the file already parses and
        # holds everything recorded so far
        recorded = read_trace(path)
        assert [s["name"] for s in recorded.spans] == ["work.one"]

    def test_flush_without_a_session_is_a_no_op(self):
        telemetry.flush()  # must not raise with the nulls installed

    def test_sigterm_kills_but_trace_stays_parseable(self, tmp_path):
        """install_signal_flush: a SIGTERM'd process loses at most the
        spans recorded after its last flush — and the file stays valid."""
        import os
        import signal
        import subprocess
        import sys
        import time

        path = tmp_path / "sigterm.jsonl"
        script = (
            "import sys, time\n"
            "from repro import telemetry\n"
            "telemetry.configure(sys.argv[1], name='durability')\n"
            "telemetry.install_signal_flush()\n"
            "with telemetry.tracer.span('work.before_kill'):\n"
            "    telemetry.metrics.counter('work.items').inc(3)\n"
            "print('ready', flush=True)\n"
            "while True:\n"
            "    time.sleep(0.05)\n"
        )
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (repo_src, env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        # the chained handler re-raises, so the exit reflects the signal
        assert proc.returncode == -signal.SIGTERM
        recorded = read_trace(path)
        assert "work.before_kill" in [s["name"] for s in recorded.spans]
        assert recorded.counter_value("work.items") == 3

    def test_atexit_flushes_an_unclosed_session(self, tmp_path):
        """A process that configures telemetry and simply exits (no
        shutdown() call) still gets its spans on disk via atexit."""
        import os
        import subprocess
        import sys

        path = tmp_path / "atexit.jsonl"
        script = (
            "import sys\n"
            "from repro import telemetry\n"
            "telemetry.configure(sys.argv[1], name='durability')\n"
            "with telemetry.tracer.span('work.then_exit'):\n"
            "    pass\n"
        )
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (repo_src, env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        recorded = read_trace(path)
        assert [s["name"] for s in recorded.spans] == ["work.then_exit"]
