"""Property-based parity suite: parallel experiment runs == serial runs.

Yang et al. (*Evaluating Link Prediction Methods*) document how silent
evaluation-protocol changes move published numbers; parallelising the
runner is exactly such a change waiting to happen.  These tests pin the
guarantee the parallel engine claims: for any spec, dispatching the
``(metric, step, seed)`` work cells over a process pool produces an
``ExperimentResult`` whose canonical JSON is *byte-identical* to the
serial loop's — ratios, absolutes, and filtered ratios included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.experiment import evaluate_step
from repro.eval.runner import (
    CellResult,
    ExperimentSpec,
    build_plan,
    cell_rng_seed,
    execute_cell,
    iter_cells,
    reduce_cells,
    run_experiment,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
#: metrics cheap enough for a many-example property suite, covering both
#: candidate strategies ("two_hop" for CN/RA/JC, "all" for PA).
FAST_METRICS = ("CN", "PA", "RA", "JC")


@st.composite
def small_specs(draw) -> ExperimentSpec:
    """Randomised small-but-real experiment specs."""
    metrics = draw(
        st.lists(st.sampled_from(FAST_METRICS), min_size=1, max_size=3, unique=True)
    )
    return ExperimentSpec(
        name="parity",
        dataset=draw(st.sampled_from(["facebook", "youtube"])),
        scale=draw(st.sampled_from([0.1, 0.15])),
        generation_seed=draw(st.integers(min_value=0, max_value=3)),
        metrics=tuple(metrics),
        repeats=draw(st.integers(min_value=1, max_value=2)),
        max_steps=draw(st.integers(min_value=1, max_value=2)),
        with_filter=draw(st.booleans()),
    )


# ---------------------------------------------------------------------------
# The headline property
# ---------------------------------------------------------------------------
class TestParallelParity:
    @given(small_specs())
    @settings(max_examples=5, deadline=None)
    def test_parallel_bit_identical_to_serial(self, spec):
        serial = run_experiment(spec, n_jobs=1)
        parallel = run_experiment(spec, n_jobs=2)
        assert parallel.to_json() == serial.to_json()
        for name in serial.series:
            assert parallel.series[name].ratios == serial.series[name].ratios
            assert parallel.series[name].absolutes == serial.series[name].absolutes
            assert (
                parallel.series[name].filtered_ratios
                == serial.series[name].filtered_ratios
            )

    @pytest.mark.parametrize("dataset", ["facebook", "renren", "youtube"])
    def test_all_three_presets_bit_identical(self, dataset):
        """The acceptance-criterion case: every preset, parallel == serial."""
        spec = ExperimentSpec(
            name=f"parity-{dataset}",
            dataset=dataset,
            scale=0.1,
            generation_seed=1,
            metrics=("CN", "RA", "PA"),
            repeats=2,
            max_steps=2,
        )
        serial = run_experiment(spec, n_jobs=1)
        parallel = run_experiment(spec, n_jobs=2)
        assert parallel.to_json() == serial.to_json()

    def test_spec_n_jobs_field_is_honoured_and_pure(self):
        """``spec.n_jobs`` schedules the run but never leaks into results."""
        serial_spec = ExperimentSpec(scale=0.1, metrics=("CN",), repeats=2, max_steps=1)
        parallel_spec = ExperimentSpec(
            scale=0.1, metrics=("CN",), repeats=2, max_steps=1, n_jobs=2
        )
        serial = run_experiment(serial_spec)
        parallel = run_experiment(parallel_spec)
        assert serial.timing.n_jobs == 1
        assert parallel.timing.n_jobs == 2
        for name in serial.series:
            assert parallel.series[name].ratios == serial.series[name].ratios

    def test_timing_is_populated_on_both_paths(self):
        spec = ExperimentSpec(scale=0.1, metrics=("CN", "PA"), repeats=2, max_steps=2)
        for jobs in (1, 2):
            timing = run_experiment(spec, n_jobs=jobs).timing
            assert timing.cells == len(spec.metrics) * 2 * spec.repeats
            assert timing.wall_seconds > 0
            assert timing.cell_seconds > 0
            assert timing.max_cell_seconds <= timing.cell_seconds
            assert timing.cache_misses >= 0 and timing.cache_hits >= 0


# ---------------------------------------------------------------------------
# Seeding regression: the published numbers' RNG derivation
# ---------------------------------------------------------------------------
class TestSeedingRegression:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**4))
    @settings(max_examples=50, deadline=None)
    def test_cell_rng_seed_formula(self, seed, step):
        """The dispatcher's seed derivation is exactly ``seed * 1009 + i``."""
        assert cell_rng_seed(seed, step) == seed * 1009 + step

    def test_parallel_matches_direct_evaluate_step_calls(self):
        """End to end: a parallel run equals hand-rolled ``evaluate_step``
        calls seeded ``seed * 1009 + i`` — the original serial scheme."""
        spec = ExperimentSpec(
            scale=0.15, generation_seed=3, metrics=("CN", "PA"), repeats=2, max_steps=2
        )
        parallel = run_experiment(spec, n_jobs=2)
        plan = build_plan(spec)
        for metric in spec.metrics:
            for i, (prev, _, truth) in enumerate(plan.steps):
                ratios, absolutes = [], []
                for seed in range(spec.repeats):
                    step = evaluate_step(
                        metric, prev, truth, rng=seed * 1009 + i, step=i
                    )
                    ratios.append(step.ratio)
                    absolutes.append(step.absolute)
                assert parallel.series[metric].ratios[i] == float(np.mean(ratios))
                assert parallel.series[metric].absolutes[i] == float(np.mean(absolutes))


# ---------------------------------------------------------------------------
# Cell plumbing invariants
# ---------------------------------------------------------------------------
class TestCellPlumbing:
    def test_iter_cells_matches_serial_nesting_order(self):
        spec = ExperimentSpec(metrics=("CN", "PA"), repeats=2)
        cells = list(iter_cells(spec, 2))
        assert cells == [
            ("CN", 0, 0), ("CN", 0, 1), ("CN", 1, 0), ("CN", 1, 1),
            ("PA", 0, 0), ("PA", 0, 1), ("PA", 1, 0), ("PA", 1, 1),
        ]

    def test_reduce_is_order_free(self):
        """Shuffled cell completion order reduces to the same result."""
        spec = ExperimentSpec(scale=0.1, metrics=("CN", "PA"), repeats=2, max_steps=2)
        plan = build_plan(spec)
        cells = [execute_cell(plan, c) for c in iter_cells(spec, len(plan.steps))]
        in_order = reduce_cells(plan, cells)
        scrambled = reduce_cells(plan, list(reversed(cells)))
        assert scrambled.to_json() == in_order.to_json()

    def test_reduce_rejects_incomplete_cells(self):
        spec = ExperimentSpec(scale=0.1, metrics=("CN",), repeats=2, max_steps=1)
        plan = build_plan(spec)
        cells = [execute_cell(plan, c) for c in iter_cells(spec, len(plan.steps))]
        with pytest.raises(RuntimeError, match="incomplete"):
            reduce_cells(plan, cells[:-1])

    def test_reduce_rejects_fully_absent_group(self):
        """0-of-N for a (metric, step) must raise the intended
        'incomplete' RuntimeError, not a bare KeyError."""
        spec = ExperimentSpec(scale=0.1, metrics=("CN", "PA"), repeats=2, max_steps=1)
        plan = build_plan(spec)
        cells = [
            execute_cell(plan, c)
            for c in iter_cells(spec, len(plan.steps))
            if c[0] == "CN"  # every PA cell missing entirely
        ]
        with pytest.raises(RuntimeError, match="incomplete.*got 0 of 2"):
            reduce_cells(plan, cells)

    def test_cell_results_are_picklable(self):
        import pickle

        cell = CellResult(
            metric="CN", step=0, seed=1, ratio=1.5, absolute=0.1,
            filtered_ratio=None, wall_seconds=0.01, cache_hits=3, cache_misses=1,
        )
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_n_jobs_zero_means_auto(self):
        spec = ExperimentSpec(scale=0.1, metrics=("CN",), repeats=2, max_steps=2, n_jobs=0)
        result = run_experiment(spec)
        import os

        assert result.timing.n_jobs == max(1, os.cpu_count() or 1)

    def test_negative_n_jobs_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            ExperimentSpec(n_jobs=-1).validate()
        with pytest.raises(ValueError, match="n_jobs"):
            run_experiment(ExperimentSpec(scale=0.1, metrics=("CN",)), n_jobs=-2)
