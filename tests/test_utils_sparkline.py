"""Tests for the sparkline renderer."""

import math

from repro.utils.sparkline import labeled_sparkline, sparkline


class TestSparkline:
    def test_monotone_series_monotone_bars(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_mid_bar(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_length_matches_input(self):
        assert len(sparkline(list(range(17)))) == 17

    def test_non_finite_rendered_as_space(self):
        line = sparkline([1.0, math.inf, 2.0, float("nan"), 3.0])
        assert line[1] == " "
        assert line[3] == " "

    def test_all_non_finite(self):
        assert sparkline([math.inf, math.nan]) == "  "

    def test_log_scale_compresses_outliers(self):
        linear = sparkline([1, 1, 1, 1000])
        logged = sparkline([1, 1, 1, 1000], log=True)
        # On the linear scale the small values collapse to the lowest bar;
        # the log scale lifts them.
        assert linear[:3] == "▁▁▁"
        assert logged[0] != "█"

    def test_extremes_use_extreme_bars(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[1] == "█"


class TestLabeledSparkline:
    def test_contains_label_and_range(self):
        out = labeled_sparkline("RA", [1.0, 2.0, 4.0])
        assert out.startswith("RA")
        assert "1.00..4.00" in out

    def test_empty_finite_range(self):
        out = labeled_sparkline("X", [math.nan])
        assert out.rstrip().endswith("-")
