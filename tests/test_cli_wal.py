"""CLI exit-code contract for ``repro recover`` and ``repro wal verify``.

Exit codes are the operator interface: 0 = durable state is sound,
1 = data-integrity finding (torn tail, corruption, failed audit),
2 = usage error (missing files, wrong lineage).  CI's crash-recovery
smoke step keys off these.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.graph.io import write_trace
from repro.graph.wal import WAL_FILE, WAL_MAGIC, WriteAheadLog, wal_fingerprint
from repro.ingest import IngestPolicy
from tests.conftest import build_trace

BASE_EVENTS = [
    (0, 1, 1.0),
    (1, 2, 2.0),
    (2, 3, 3.0),
    (0, 3, 4.0),
    (3, 4, 5.0),
    (1, 4, 6.0),
]
BATCHES = [[(2, 4, 7.0), (0, 4, 7.5)], [(5, 0, 8.0)]]


@pytest.fixture
def wal_setup(tmp_path):
    """A trace file + WAL directory holding two synced batches."""
    trace = build_trace(BASE_EVENTS)
    trace_path = tmp_path / "base.txt"
    write_trace(trace, trace_path)
    wal_dir = tmp_path / "wal"
    wal_dir.mkdir()
    fingerprint = wal_fingerprint(trace, IngestPolicy.repair())
    with WriteAheadLog.create(wal_dir / WAL_FILE, fingerprint) as log:
        for events in BATCHES:
            log.append(
                np.array([e[0] for e in events], dtype=np.int64),
                np.array([e[1] for e in events], dtype=np.int64),
                np.array([e[2] for e in events], dtype=np.float64),
            )
            log.sync()
    return trace_path, wal_dir


class TestWalVerifyExitCodes:
    def test_clean_wal_exits_0(self, wal_setup, capsys):
        _, wal_dir = wal_setup
        assert main(["wal", "verify", str(wal_dir)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "clean"
        assert report["records"] == 2 and report["events"] == 3

    def test_direct_file_path_works_too(self, wal_setup, capsys):
        _, wal_dir = wal_setup
        assert main(["wal", "verify", str(wal_dir / WAL_FILE)]) == 0

    def test_torn_tail_exits_1(self, wal_setup, capsys):
        _, wal_dir = wal_setup
        with open(wal_dir / WAL_FILE, "ab") as fh:
            fh.write(b"\x01\x02\x03")
        assert main(["wal", "verify", str(wal_dir)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "torn" and report["torn_bytes"] == 3

    def test_corrupt_wal_exits_1(self, wal_setup, capsys):
        _, wal_dir = wal_setup
        path = wal_dir / WAL_FILE
        blob = bytearray(path.read_bytes())
        blob[len(WAL_MAGIC) + 14] ^= 0xFF  # mid-file damage
        path.write_bytes(bytes(blob))
        assert main(["wal", "verify", str(wal_dir)]) == 1
        assert json.loads(capsys.readouterr().out)["status"] == "corrupt"

    def test_missing_wal_exits_2(self, tmp_path, capsys):
        assert main(["wal", "verify", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestRecoverExitCodes:
    def run_recover(self, trace_path, wal_dir, policy="repair"):
        return main(
            [
                "recover",
                str(wal_dir),
                "--trace",
                str(trace_path),
                "--policy",
                policy,
            ]
        )

    def test_clean_recovery_exits_0(self, wal_setup, capsys):
        trace_path, wal_dir = wal_setup
        assert self.run_recover(trace_path, wal_dir) == 0
        captured = capsys.readouterr()
        described = json.loads(captured.out)
        assert described["wal_seq"] == 2
        assert described["records_replayed"] == 2
        assert described["audit_ok"] is True
        assert "audit clean" in captured.err

    def test_wrong_policy_is_a_usage_error(self, wal_setup, capsys):
        trace_path, wal_dir = wal_setup
        assert self.run_recover(trace_path, wal_dir, policy="strict") == 2
        assert "different base trace/policy" in capsys.readouterr().err

    def test_wrong_base_trace_is_a_usage_error(self, wal_setup, tmp_path, capsys):
        _, wal_dir = wal_setup
        other = tmp_path / "other.txt"
        write_trace(build_trace([(0, 1, 1.0), (1, 2, 2.0)]), other)
        assert self.run_recover(other, wal_dir) == 2

    def test_corrupt_wal_exits_1(self, wal_setup, capsys):
        trace_path, wal_dir = wal_setup
        path = wal_dir / WAL_FILE
        blob = bytearray(path.read_bytes())
        blob[len(WAL_MAGIC) + 14] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert self.run_recover(trace_path, wal_dir) == 1
        assert "error:" in capsys.readouterr().err

    def test_failed_audit_exits_1(self, wal_setup, capsys, monkeypatch):
        trace_path, wal_dir = wal_setup
        from repro.graph import delta as delta_mod

        class BadAudit:
            ok = False

            def summary(self):
                return "audit: 1 VIOLATED (injected)"

        monkeypatch.setattr(delta_mod.DeltaGraph, "audit", lambda self: BadAudit())
        assert self.run_recover(trace_path, wal_dir) == 1
        captured = capsys.readouterr()
        assert json.loads(captured.out)["audit_ok"] is False
        assert "failed its integrity audit" in captured.err

    def test_missing_wal_dir_exits_2(self, wal_setup, tmp_path, capsys):
        trace_path, _ = wal_setup
        assert self.run_recover(trace_path, tmp_path / "ghost") == 2
        assert "error:" in capsys.readouterr().err
