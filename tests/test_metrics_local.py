"""Correctness tests for CN / JC / AA / RA.

The triangle_plus graph (triangle 0-1-2 with pendant 3 on node 2) has small
enough neighbourhoods for exact hand computation; the preset graphs are
cross-validated against networkx's implementations.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric

PAIRS = np.asarray([[0, 3], [1, 3]], dtype=np.int64)


@pytest.fixture
def snap(triangle_plus_trace):
    return Snapshot(triangle_plus_trace, triangle_plus_trace.num_edges)


class TestHandComputed:
    def test_cn(self, snap):
        scores = get_metric("CN").fit(snap).score(PAIRS)
        # Node 2 is the only common neighbour of both (0,3) and (1,3).
        assert scores == pytest.approx([1.0, 1.0])

    def test_jc(self, snap):
        scores = get_metric("JC").fit(snap).score(PAIRS)
        # Union of neighbourhoods: {1,2} u {2} = {1,2} -> 1/2.
        assert scores == pytest.approx([0.5, 0.5])

    def test_aa(self, snap):
        scores = get_metric("AA").fit(snap).score(PAIRS)
        assert scores == pytest.approx([1 / math.log(3)] * 2)

    def test_ra(self, snap):
        scores = get_metric("RA").fit(snap).score(PAIRS)
        assert scores == pytest.approx([1 / 3, 1 / 3])

    def test_connected_pair_scores_do_not_crash(self, snap):
        # Scoring an existing edge is legal (features for classifiers).
        scores = get_metric("CN").fit(snap).score(np.asarray([[0, 1]]))
        assert scores == pytest.approx([1.0])  # common neighbour 2


class TestAgainstNetworkx:
    @pytest.fixture
    def sample(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        from repro.metrics.candidates import two_hop_pairs

        rng = np.random.default_rng(0)
        pairs = two_hop_pairs(s)
        idx = rng.choice(len(pairs), size=min(300, len(pairs)), replace=False)
        return s, pairs[idx]

    def test_jc_matches(self, sample):
        s, pairs = sample
        g = s.to_networkx()
        expected = {
            (u, v): p
            for u, v, p in nx.jaccard_coefficient(g, [tuple(p) for p in pairs])
        }
        ours = get_metric("JC").fit(s).score(pairs)
        for (u, v), score in zip(pairs, ours):
            assert score == pytest.approx(expected[(int(u), int(v))])

    def test_aa_matches(self, sample):
        s, pairs = sample
        g = s.to_networkx()
        expected = {
            (u, v): p
            for u, v, p in nx.adamic_adar_index(g, [tuple(p) for p in pairs])
        }
        ours = get_metric("AA").fit(s).score(pairs)
        for (u, v), score in zip(pairs, ours):
            assert score == pytest.approx(expected[(int(u), int(v))])

    def test_ra_matches(self, sample):
        s, pairs = sample
        g = s.to_networkx()
        expected = {
            (u, v): p
            for u, v, p in nx.resource_allocation_index(g, [tuple(p) for p in pairs])
        }
        ours = get_metric("RA").fit(s).score(pairs)
        for (u, v), score in zip(pairs, ours):
            assert score == pytest.approx(expected[(int(u), int(v))])

    def test_cn_matches(self, sample):
        s, pairs = sample
        g = s.to_networkx()
        ours = get_metric("CN").fit(s).score(pairs)
        for (u, v), score in zip(pairs, ours):
            assert score == len(list(nx.common_neighbors(g, int(u), int(v))))


class TestEdgeCases:
    def test_beyond_two_hops_scores_zero(self, tiny_snapshot):
        # Nodes 0 and 5 are 3 hops apart (no common neighbour).
        pairs = np.asarray([[0, 5]], dtype=np.int64)
        for name in ("CN", "JC", "AA", "RA"):
            assert get_metric(name).fit(tiny_snapshot).score(pairs)[0] == 0.0

    def test_empty_pairs(self, tiny_snapshot):
        for name in ("CN", "JC", "AA", "RA"):
            out = get_metric(name).fit(tiny_snapshot).score(
                np.zeros((0, 2), dtype=np.int64)
            )
            assert out.shape == (0,)

    def test_scores_finite_on_preset(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        from repro.metrics.candidates import two_hop_pairs

        pairs = two_hop_pairs(s)
        for name in ("CN", "JC", "AA", "RA"):
            assert np.isfinite(get_metric(name).fit(s).score(pairs)).all()
