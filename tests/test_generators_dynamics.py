"""Tests for the time-varying and behavioural knobs of the growth engine."""

import numpy as np
import pytest

from repro.generators.base import GrowthConfig, GrowthEngine, generate_trace
from repro.graph.snapshots import Snapshot


def config(**overrides) -> GrowthConfig:
    base = dict(
        n_seed=10,
        seed_edges=12,
        total_nodes=120,
        total_edges=900,
        duration_days=60.0,
    )
    base.update(overrides)
    return GrowthConfig(**base)


class TestTimeVaryingTriadicShare:
    def test_interpolation(self):
        engine = GrowthEngine(
            config(triadic_prob=0.2, triadic_prob_final=0.8), seed=0
        )
        assert engine._triadic_prob_at(0.0) == pytest.approx(0.2)
        assert engine._triadic_prob_at(30.0) == pytest.approx(0.5)
        assert engine._triadic_prob_at(60.0) == pytest.approx(0.8)
        assert engine._triadic_prob_at(120.0) == pytest.approx(0.8)  # clamped

    def test_none_means_constant(self):
        engine = GrowthEngine(config(triadic_prob=0.3), seed=0)
        assert engine._triadic_prob_at(0.0) == engine._triadic_prob_at(59.0) == 0.3

    def test_validation_uses_peak(self):
        with pytest.raises(ValueError, match="mixture"):
            config(
                triadic_prob=0.2, triadic_prob_final=0.9, preferential_prob=0.2
            ).validate()

    def test_rising_share_raises_late_clustering(self):
        from repro.graph.stats import average_clustering

        rising = generate_trace(
            config(
                triadic_prob=0.1,
                triadic_prob_final=0.8,
                preferential_prob=0.1,
                total_edges=1500,
            ),
            seed=4,
        )
        flat = generate_trace(
            config(triadic_prob=0.1, preferential_prob=0.1, total_edges=1500), seed=4
        )
        c_rising = average_clustering(Snapshot(rising, rising.num_edges))
        c_flat = average_clustering(Snapshot(flat, flat.num_edges))
        assert c_rising > c_flat


class TestDegreeSaturation:
    def test_saturation_compresses_max_degree(self):
        loose = generate_trace(config(preferential_prob=0.3, triadic_prob=0.3), seed=2)
        tight = generate_trace(
            config(preferential_prob=0.3, triadic_prob=0.3, degree_saturation=8.0),
            seed=2,
        )
        loose_max = max(loose.degree(u) for u in loose.nodes())
        tight_max = max(tight.degree(u) for u in tight.nodes())
        assert tight_max < loose_max


class TestTargetRecency:
    def test_recency_bias_lowers_target_idle(self):
        plain = generate_trace(config(), seed=6)
        biased = generate_trace(config(target_recency_tau=2.0), seed=6)

        def mean_target_idle(trace):
            # Approximate: idle time of the later-created endpoints at edge
            # creation, over the last half of the trace.
            idles = []
            events = list(trace.edges())[len(list(trace.edges())) // 2 :]
            for u, v, t in events[:200]:
                idles.append(min(trace.idle_time(u, t), trace.idle_time(v, t)))
            return float(np.mean(idles))

        # Both endpoints recently active under the bias.
        assert mean_target_idle(biased) <= mean_target_idle(plain) + 1e-9


class TestCommunities:
    def test_communities_assigned(self):
        engine = GrowthEngine(config(num_communities=4, community_bias=0.5), seed=0)
        engine.run()
        communities = {s.community for s in engine._states.values()}
        assert communities <= set(range(4))
        assert len(communities) == 4

    def test_community_bias_creates_modularity(self):
        """With strong community bias, within-community edges dominate."""
        cfg = config(
            num_communities=4,
            community_bias=0.9,
            triadic_prob=0.0,
            preferential_prob=0.0,
            total_edges=800,
        )
        engine = GrowthEngine(cfg, seed=1)
        trace = engine.run()
        within = 0
        total = 0
        for u, v, _ in trace.edges():
            total += 1
            if engine._states[u].community == engine._states[v].community:
                within += 1
        # Random assignment would give ~25%; the bias must push well above.
        assert within / total > 0.4

    def test_creator_initiator_produces_creator_edges(self):
        cfg = config(
            creator_fraction=0.2,
            creator_prob=0.4,
            triadic_prob=0.2,
            creator_initiator_prob=0.3,
        )
        engine = GrowthEngine(cfg, seed=1)
        trace = engine.run()
        creator_creator = sum(
            1
            for u, v, _ in trace.edges()
            if engine._states[u].is_creator and engine._states[v].is_creator
        )
        assert creator_creator > 0
