"""Crash-anywhere recovery: kill at any fault point, recover byte-identically.

The durability layer's core claim: no matter where a crash lands — before a
WAL append, in the torn-tail window between the buffered write and its
fsync, or between a checkpoint's temp file and its rename — recovery
rebuilds a state that is (a) a *prefix* of the ingested batch sequence,
(b) contains every batch that was acknowledged under ``fsync=always``, and
(c) is byte-identical to a never-crashed reference over the same prefix:
columns, CSR structure, candidate enumeration, and all registered metric
scores.  Crashes are injected with the ``crashes`` fault kind
(:mod:`repro.eval.faults`), which hard-exits the whole process with
``KILL_EXIT_CODE`` on exactly the scheduled invocation; the driver is a
subprocess so the kill never takes pytest with it.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.eval import faults
from repro.graph.io import write_trace
from repro.graph.snapshots import Snapshot
from repro.graph.wal import WAL_FILE, recover_state, verify_wal
from repro.ingest import IngestPolicy
from repro.metrics.base import all_metric_names, get_metric
from repro.metrics.candidates import candidate_pairs
from repro.serve import client
from tests.conftest import build_trace

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The base prefix the server boots from, and the batches ingested live.
BASE_EVENTS = [
    (0, 1, 1.0),
    (0, 2, 1.5),
    (1, 2, 2.0),
    (2, 3, 3.0),
    (3, 4, 4.0),
    (1, 4, 5.0),
    (4, 5, 6.0),
    (5, 6, 7.0),
    (2, 6, 8.0),
    (0, 6, 9.0),
    (3, 6, 10.0),
    (0, 7, 11.0),
]
BATCHES = [
    [(1, 7, 12.0), (2, 7, 12.5)],
    [(5, 7, 13.0), (8, 0, 13.5), (8, 1, 14.0)],
    [(4, 6, 15.0), (3, 5, 15.5)],
    [(8, 2, 16.0), (9, 5, 16.5), (9, 8, 17.0)],
    [(6, 9, 18.0), (7, 9, 18.5)],
]
POLICY_NAME = "repair"

# The durable-ingest driver run as a subprocess so injected crashes
# (os._exit) never touch the pytest process.  It speaks a one-line
# protocol on stdout: RECOVERED <n> after WAL replay, ACK <i> after each
# durably ingested batch, DONE on clean shutdown.
DRIVER_SOURCE = '''\
import json
import sys

from repro.graph.dyngraph import TemporalGraph
from repro.ingest import IngestPolicy
from repro.serve.durability import DurabilityManager
from repro.serve.store import ScoreStore

wal_dir, data_path = sys.argv[1], sys.argv[2]
with open(data_path) as fh:
    data = json.load(fh)
base = [tuple(e) for e in data["base"]]
batches = [[tuple(e) for e in b] for b in data["batches"]]

trace = TemporalGraph.from_stream(base)
policy = IngestPolicy.from_string(data["policy"])
manager, plan = DurabilityManager.attach(
    wal_dir,
    trace,
    policy,
    fsync=data.get("fsync", "always"),
    checkpoint_every=data.get("checkpoint_every", 2),
    checkpoint_keep=data.get("checkpoint_keep", 2),
)
start = trace
done = 0
if plan is not None:
    if plan.start_trace is not None:
        start = plan.start_trace
    done = plan.total_records
store = ScoreStore(start, policy=policy, durability=manager)
if plan is not None:
    store.replay_wal(plan.records)
    print(f"RECOVERED {done}", flush=True)
for index in range(done, len(batches)):
    lines = "".join(f"{u} {v} {t!r}\\n" for u, v, t in batches[index])
    store.ingest_lines(lines)
    store.checkpoint_if_due()
    print(f"ACK {index}", flush=True)
store.finalize_durability()
print("DONE", flush=True)
'''


def _subprocess_env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", ""))
        if p
    )
    env.update(extra or {})
    return env


@pytest.fixture
def driver(tmp_path):
    """Returns run(plan=None) -> (completed process, acked batch count)."""
    import json

    script = tmp_path / "driver.py"
    script.write_text(DRIVER_SOURCE)
    data = tmp_path / "data.json"
    data.write_text(
        json.dumps({"base": BASE_EVENTS, "batches": BATCHES, "policy": POLICY_NAME})
    )
    wal_dir = tmp_path / "wal"

    def run(plan=None):
        extra = {faults.ENV_VAR: plan.to_json()} if plan is not None else None
        proc = subprocess.run(
            [sys.executable, str(script), str(wal_dir), str(data)],
            capture_output=True,
            text=True,
            env=_subprocess_env(extra),
            timeout=120,
        )
        acked = sum(
            1 for line in proc.stdout.splitlines() if line.startswith("ACK ")
        )
        return proc, acked

    run.wal_dir = wal_dir
    return run


def reference_trace(num_batches: int):
    events = list(BASE_EVENTS)
    for batch in BATCHES[:num_batches]:
        events.extend(batch)
    return build_trace(events)


#: cumulative edge count after base + each batch prefix.
PREFIX_EDGES = [len(BASE_EVENTS)]
for _batch in BATCHES:
    PREFIX_EDGES.append(PREFIX_EDGES[-1] + len(_batch))


def assert_byte_identical(recovered_trace, expected_trace, metrics):
    """Columns, CSR, candidate sets, and metric scores must match bitwise."""
    ru, rv, rt = recovered_trace.columns()
    eu, ev, et = expected_trace.columns()
    assert ru.tobytes() == eu.tobytes()
    assert rv.tobytes() == ev.tobytes()
    assert rt.tobytes() == et.tobytes()

    got = Snapshot(recovered_trace, recovered_trace.num_edges)
    want = Snapshot(expected_trace, expected_trace.num_edges)
    assert got.node_ids.tobytes() == want.node_ids.tobytes()
    for g, w in zip(got.csr_structure(), want.csr_structure()):
        assert g.tobytes() == w.tobytes()

    for name in metrics:
        got_metric, want_metric = get_metric(name), get_metric(name)
        got_pairs = candidate_pairs(got, got_metric.candidate_strategy)
        want_pairs = candidate_pairs(want, want_metric.candidate_strategy)
        assert got_pairs.tobytes() == want_pairs.tobytes(), name
        got_metric.fit(got)
        want_metric.fit(want)
        got_scores = np.asarray(got_metric.score(got_pairs), dtype=np.float64)
        want_scores = np.asarray(want_metric.score(want_pairs), dtype=np.float64)
        assert got_scores.tobytes() == want_scores.tobytes(), name


def recover(wal_dir):
    return recover_state(
        wal_dir, build_trace(BASE_EVENTS), IngestPolicy.from_string(POLICY_NAME)
    )


# Every fault point the WAL write path exposes, at several invocation
# indices.  checkpoint.write only ever fires at index 0 (each checkpoint
# write is its own invocation-0 operation).
SCHEDULES = [
    ("wal.append", 0),
    ("wal.append", 2),
    ("wal.append", 4),
    ("wal.fsync", 0),
    ("wal.fsync", 3),
    ("checkpoint.write", 0),
]


class TestCrashAnywhere:
    @pytest.mark.parametrize("key,index", SCHEDULES)
    def test_recovery_is_a_byte_identical_prefix(self, driver, key, index):
        plan = faults.FaultPlan(crashes={key: index})
        proc, acked = driver(plan)
        assert proc.returncode == faults.KILL_EXIT_CODE, proc.stderr
        assert "DONE" not in proc.stdout

        result = recover(driver.wal_dir)
        assert result.clean, result.describe()

        # The recovered state is an exact batch-prefix of the ingest
        # sequence...
        edges = result.engine.trace.num_edges
        assert edges in PREFIX_EDGES, (
            f"recovered edge count {edges} is not a batch prefix "
            f"(expected one of {PREFIX_EDGES})"
        )
        survived = PREFIX_EDGES.index(edges)
        # ...and under fsync=always it contains every acknowledged batch.
        assert survived >= acked, (
            f"ack'd {acked} batches but only {survived} survived the "
            f"crash at {key}[{index}]"
        )
        assert_byte_identical(
            result.engine.trace, reference_trace(survived), ["CN", "AA", "RA"]
        )

    @pytest.mark.parametrize("key,index", SCHEDULES)
    def test_restarted_driver_converges_to_full_reference(
        self, driver, key, index
    ):
        """Crash, restart without the plan, finish: state == never-crashed."""
        proc, _ = driver(faults.FaultPlan(crashes={key: index}))
        assert proc.returncode == faults.KILL_EXIT_CODE, proc.stderr

        proc, _ = driver()  # restart: recover, replay, ingest the rest
        assert proc.returncode == 0, proc.stderr
        assert "RECOVERED" in proc.stdout and "DONE" in proc.stdout

        result = recover(driver.wal_dir)
        assert result.clean and result.wal_seq == len(BATCHES)
        assert_byte_identical(
            result.engine.trace,
            reference_trace(len(BATCHES)),
            ["CN", "AA", "RA", "PA", "JC"],
        )

    def test_checkpoint_crash_strands_only_a_tmp_file(self, driver):
        proc, _ = driver(faults.FaultPlan(crashes={"checkpoint.write": 0}))
        assert proc.returncode == faults.KILL_EXIT_CODE
        names = sorted(os.listdir(driver.wal_dir))
        assert any(n.endswith(".tmp") for n in names)
        assert not any(n.endswith(".ckpt") for n in names)
        # the stranded temp file does not confuse recovery or verify
        assert recover(driver.wal_dir).clean
        assert verify_wal(os.path.join(driver.wal_dir, WAL_FILE)).clean


class TestNeverCrashedControl:
    def test_clean_run_recovers_to_full_reference_all_metrics(self, driver):
        proc, acked = driver()
        assert proc.returncode == 0, proc.stderr
        assert acked == len(BATCHES) and "DONE" in proc.stdout

        result = recover(driver.wal_dir)
        assert result.clean and result.wal_seq == len(BATCHES)
        # final drain checkpoint covers the whole WAL: nothing to replay
        assert result.checkpoint_seq == len(BATCHES)
        assert result.records_replayed == 0
        assert_byte_identical(
            result.engine.trace, reference_trace(len(BATCHES)), all_metric_names()
        )


# ---------------------------------------------------------------------------
# The real thing: kill -9 a serving process, restart it, demand parity.
# ---------------------------------------------------------------------------
def _spawn_durable_server(trace_path, wal_dir):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--trace",
            str(trace_path),
            "--port",
            "0",
            "--wal",
            str(wal_dir),
            "--fsync",
            "always",
            "--checkpoint-every",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_subprocess_env(),
    )
    import re

    banner = proc.stdout.readline().strip()
    match = re.search(r":(\d+)$", banner)
    assert match, f"no port in banner {banner!r} (stderr: {proc.stderr.read()})"
    return proc, int(match.group(1))


def _await_ready(port, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if client.sync_request("127.0.0.1", port, "GET", "/readyz").status == 200:
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"server on port {port} never became ready")


class TestKillNineServer:
    def test_sigkill_restart_recovers_acked_ingest(self, tmp_path):
        trace_path = tmp_path / "base.txt"
        write_trace(build_trace(BASE_EVENTS), trace_path)
        wal_dir = tmp_path / "wal"

        proc, port = _spawn_durable_server(trace_path, wal_dir)
        try:
            _await_ready(port)
            for batch in BATCHES[:3]:
                body = "".join(f"{u} {v} {t!r}\n" for u, v, t in batch)
                response = client.sync_request(
                    "127.0.0.1", port, "POST", "/ingest", body=body.encode()
                )
                assert response.status == 200, response.body
        finally:
            proc.kill()  # SIGKILL: no drain, no final checkpoint
            proc.wait(timeout=10)
        assert proc.returncode == -signal.SIGKILL

        proc, port = _spawn_durable_server(trace_path, wal_dir)
        try:
            _await_ready(port)
            expected = reference_trace(3)
            snapshot = Snapshot(expected, expected.num_edges)
            metric = get_metric("CN")
            pairs = candidate_pairs(snapshot, metric.candidate_strategy)
            metric.fit(snapshot)
            scores = np.asarray(metric.score(pairs), dtype=np.float64)
            reference = {
                (int(min(u, v)), int(max(u, v))): float(s)
                for (u, v), s in zip(pairs.tolist(), scores.tolist())
            }
            for u in (0, 2, 7, 8):
                response = client.sync_request(
                    "127.0.0.1", port, "GET", f"/predict?u={u}&k=5&metric=CN"
                )
                assert response.status == 200, response.body
                payload = response.json()
                assert payload["snapshot"]["edges"] == expected.num_edges
                mine = [
                    (pair[1] if pair[0] == u else pair[0], score)
                    for pair, score in reference.items()
                    if u in pair
                ]
                mine.sort(key=lambda entry: (-entry[1], entry[0]))
                got = [(p["v"], p["score"]) for p in payload["predictions"]]
                assert got == mine[:5]
        finally:
            proc.terminate()
            proc.wait(timeout=10)
