"""Correctness tests for PA and RESCAL."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.snapshots import Snapshot
from repro.metrics.base import adjacency, get_metric
from repro.metrics.candidates import all_nonedge_pairs
from repro.metrics.rescal import rescal_als


class TestPreferentialAttachment:
    def test_degree_product(self, tiny_snapshot):
        pairs = all_nonedge_pairs(tiny_snapshot)
        scores = get_metric("PA").fit(tiny_snapshot).score(pairs)
        for (u, v), score in zip(pairs, scores):
            assert score == tiny_snapshot.degree(int(u)) * tiny_snapshot.degree(int(v))

    def test_matches_networkx(self, facebook_snapshots):
        s = facebook_snapshots[0]
        pairs = all_nonedge_pairs(s)[:300]
        g = s.to_networkx()
        expected = {
            (u, v): p
            for u, v, p in nx.preferential_attachment(g, [tuple(p) for p in pairs])
        }
        scores = get_metric("PA").fit(s).score(pairs)
        for (u, v), score in zip(pairs, scores):
            assert score == expected[(int(u), int(v))]

    def test_top_pairs_fast_matches_full_ranking(self, facebook_snapshots):
        s = facebook_snapshots[0]
        metric = get_metric("PA").fit(s)
        fast = metric.top_pairs_fast(limit=20)
        pairs = all_nonedge_pairs(s)
        scores = metric.score(pairs)
        best_possible = np.sort(scores)[-20:][::-1]
        fast_scores = metric.score(fast)
        assert fast_scores == pytest.approx(best_possible)


class TestRescalALS:
    def test_reconstructs_block_structure(self):
        """On a graph made of two cliques, a rank-2 RESCAL must score
        within-block non-edges far above cross-block ones."""
        from tests.conftest import build_trace

        events = []
        t = 0.0
        # Two 6-cliques minus one edge each (so non-edges exist per block).
        for base in (0, 6):
            for i in range(6):
                for j in range(i + 1, 6):
                    if (i, j) == (0, 1):
                        continue  # leave a within-block non-edge
                    events.append((base + i, base + j, t))
                    t += 1.0
        # One bridge keeps it connected.
        events.append((0, 6, t))
        trace = build_trace(events)
        s = Snapshot(trace, trace.num_edges)
        metric = get_metric("Rescal", rank=3).fit(s)
        within = metric.score(np.asarray([[0, 1], [6, 7]]))
        across = metric.score(np.asarray([[1, 7], [2, 8]]))
        assert within.min() > across.max()

    def test_als_reduces_residual(self, facebook_snapshots):
        s = facebook_snapshots[0]
        a = adjacency(s)
        from repro.metrics.rescal import _fit_residual

        x0, r0 = rescal_als(a, rank=10, iterations=1)
        x1, r1 = rescal_als(a, rank=10, iterations=20)
        assert _fit_residual(a, x1, r1) <= _fit_residual(a, x0, r0) + 1e-6

    def test_score_symmetric(self, tiny_snapshot):
        metric = get_metric("Rescal", rank=4).fit(tiny_snapshot)
        a = metric.score(np.asarray([[0, 5]]))
        b = metric.score(np.asarray([[5, 0]]))
        assert a[0] == pytest.approx(b[0])

    def test_node_weights_favor_hubs(self, small_youtube):
        s = Snapshot(small_youtube, small_youtube.num_edges)
        metric = get_metric("Rescal", rank=10).fit(s)
        weights = metric.node_weights()
        degrees = s.degree_array()
        top_hub = int(np.argmax(degrees))
        # The highest-degree node must carry above-median latent weight —
        # the supernode concentration the paper observes (Section 4.4).
        assert weights[top_hub] > np.median(weights)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            get_metric("Rescal", rank=0)

    def test_deterministic(self, tiny_snapshot):
        a = get_metric("Rescal", rank=4).fit(tiny_snapshot).score(
            np.asarray([[0, 5]])
        )
        tiny_snapshot.cache.clear()
        b = get_metric("Rescal", rank=4).fit(tiny_snapshot).score(
            np.asarray([[0, 5]])
        )
        assert a[0] == pytest.approx(b[0])
