"""Differential suite for the batched kernel layer (repro.metrics.kernels).

The kernel layer's contract is *bitwise* equality, not approximate: the
delta engine and serving layer advertise bit-identical scores, so
``score_block`` must replay the exact float additions of the legacy
matrix path (see the SMMP accumulation-order note in the kernels module
docstring).  This suite checks:

- every registered metric (all 18) scores identically through
  ``score_pairs`` and legacy ``score`` on a sparse and a dense snapshot;
- parity survives multi-block splitting (small REPRO_KERNEL_BLOCK_PAIRS);
- the three candidate-enumeration strategies produce identical arrays
  (hypothesis-driven);
- the delta engine's expansion-based seeding and dirty-pair rescoring
  stay bitwise-equal to a from-scratch rebuild;
- the serving read path returns kernel-routed scores equal to the legacy
  scorer's.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.metrics  # noqa: F401  (registers all metrics)
from repro.graph.delta import DeltaGraph
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.base import all_metric_names, get_metric
from repro.metrics.candidates import (
    ENUM_STRATEGY_KEY,
    _blocked_two_hop_positions,
    _dense_two_hop_positions,
    _sparse_two_hop_positions,
    candidate_pairs,
    choose_enumeration_strategy,
    two_hop_pairs,
)
from repro.metrics.kernels import blocks_for, score_pairs


def random_snapshot(n: int, p: float, seed: int) -> Snapshot:
    """Erdős–Rényi-ish snapshot with sparse non-contiguous node ids."""
    rng = np.random.default_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(len(iu)) < p
    iu, iv = iu[keep], iv[keep]
    if len(iu) == 0:  # ensure at least a path so every metric can fit
        iu, iv = np.asarray([0, 1]), np.asarray([1, 2])
    ids = np.arange(10, 10 + 3 * n, 3)
    order = rng.permutation(len(iu))
    iu, iv = iu[order], iv[order]
    times = np.sort(rng.uniform(0.0, 100.0, len(iu)))
    trace = TemporalGraph.from_stream(
        list(zip(ids[iu].tolist(), ids[iv].tolist(), times.tolist()))
    )
    return Snapshot(trace, trace.num_edges)


@pytest.fixture(scope="module")
def sparse_snapshot() -> Snapshot:
    return random_snapshot(40, 0.08, 11)


@pytest.fixture(scope="module")
def dense_snapshot() -> Snapshot:
    return random_snapshot(25, 0.35, 13)


class TestScoreBlockParity:
    """score_pairs == legacy score, bit for bit, for every registered metric."""

    @pytest.mark.parametrize("name", sorted(all_metric_names()))
    def test_sparse_snapshot(self, sparse_snapshot, name):
        metric = get_metric(name).fit(sparse_snapshot)
        pairs = candidate_pairs(sparse_snapshot, metric.candidate_strategy)
        legacy = np.asarray(metric.score(pairs), dtype=np.float64)
        kernel = score_pairs(metric, sparse_snapshot, pairs)
        assert np.array_equal(legacy, kernel), name

    @pytest.mark.parametrize("name", sorted(all_metric_names()))
    def test_dense_snapshot(self, dense_snapshot, name):
        metric = get_metric(name).fit(dense_snapshot)
        pairs = candidate_pairs(dense_snapshot, metric.candidate_strategy)
        legacy = np.asarray(metric.score(pairs), dtype=np.float64)
        kernel = score_pairs(metric, dense_snapshot, pairs)
        assert np.array_equal(legacy, kernel), name

    @pytest.mark.parametrize("name", ["CN", "JC", "AA", "RA", "BRA", "LP"])
    def test_multi_block_split(self, sparse_snapshot, name, monkeypatch):
        """Splitting into many tiny blocks must not change a single bit."""
        monkeypatch.setenv("REPRO_KERNEL_BLOCK_PAIRS", "7")
        metric = get_metric(name).fit(sparse_snapshot)
        pairs = candidate_pairs(sparse_snapshot, metric.candidate_strategy)
        blocks = blocks_for(sparse_snapshot, pairs)
        assert len(blocks) > 1
        legacy = np.asarray(metric.score(pairs), dtype=np.float64)
        kernel = score_pairs(metric, sparse_snapshot, pairs)
        assert np.array_equal(legacy, kernel)

    def test_empty_pairs(self, sparse_snapshot):
        metric = get_metric("CN").fit(sparse_snapshot)
        out = score_pairs(metric, sparse_snapshot, np.zeros((0, 2), dtype=np.int64))
        assert out.shape == (0,) and out.dtype == np.float64

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=28),
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_neighbourhood_family_random_graphs(self, n, p, seed):
        """The expansion-backed family, hypothesis-driven (cheap fits only)."""
        snapshot = random_snapshot(n, p, seed)
        from repro.metrics.naive_bayes import prior_constant

        # The LNB prior s = n(n-1)/(2|E|) - 1 needs log(s) to exist, which
        # degenerate near-complete graphs violate; that is a property of the
        # metric, not of the kernel under test.
        assume(prior_constant(snapshot) > 0.0)
        pairs = two_hop_pairs(snapshot)
        for name in ("CN", "JC", "AA", "RA", "BCN", "BAA", "BRA"):
            metric = get_metric(name).fit(snapshot)
            legacy = np.asarray(metric.score(pairs), dtype=np.float64)
            kernel = score_pairs(metric, snapshot, pairs)
            assert np.array_equal(legacy, kernel), name


class TestEnumerationStrategies:
    """sparse / dense / blocked enumerations return identical arrays."""

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=60),
        p=st.floats(min_value=0.01, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_identical_output(self, n, p, seed):
        snapshot = random_snapshot(n, p, seed)
        sparse = _sparse_two_hop_positions(snapshot)
        dense = _dense_two_hop_positions(snapshot)
        blocked = _blocked_two_hop_positions(snapshot)
        for label, (rows, cols) in (("dense", dense), ("blocked", blocked)):
            assert np.array_equal(sparse[0], rows), label
            assert np.array_equal(sparse[1], cols), label

    def test_forced_strategy_same_pairs(self, monkeypatch):
        baseline = two_hop_pairs(random_snapshot(30, 0.15, 5))
        for strategy in ("sparse", "dense", "blocked"):
            monkeypatch.setenv("REPRO_ENUM_STRATEGY", strategy)
            snapshot = random_snapshot(30, 0.15, 5)
            assert choose_enumeration_strategy(snapshot) == strategy
            assert np.array_equal(two_hop_pairs(snapshot), baseline)
            assert snapshot.cache[ENUM_STRATEGY_KEY] == strategy

    def test_invalid_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENUM_STRATEGY", "quantum")
        with pytest.raises(ValueError, match="REPRO_ENUM_STRATEGY"):
            choose_enumeration_strategy(random_snapshot(10, 0.2, 1))

    def test_strategy_recorded_in_cache(self):
        snapshot = random_snapshot(30, 0.15, 5)
        two_hop_pairs(snapshot)
        assert snapshot.cache[ENUM_STRATEGY_KEY] in ("sparse", "dense", "blocked")


class TestDeltaRoute:
    """Expansion-based seeding / dirty rescoring == from-scratch rebuild."""

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=20),
        p=st.floats(min_value=0.1, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
        extra=st.integers(min_value=1, max_value=6),
    )
    def test_dirty_rescoring_bitwise(self, n, p, seed, extra):
        full = random_snapshot(n, p, seed)
        events = list(full.trace.edges())
        if len(events) <= extra:
            return
        prefix = events[:-extra]
        batch = events[-extra:]
        delta = DeltaGraph(TemporalGraph.from_stream(prefix))
        delta.apply(batch)
        snap = delta.materialize()
        rebuilt = Snapshot(
            TemporalGraph.from_stream(events), len(events)
        )
        pairs = two_hop_pairs(rebuilt)
        assert np.array_equal(two_hop_pairs(snap), pairs)
        for name in ("CN", "AA", "RA"):
            metric_warm = get_metric(name).fit(snap)
            metric_cold = get_metric(name).fit(rebuilt)
            warm = score_pairs(metric_warm, snap, two_hop_pairs(snap))
            cold = score_pairs(metric_cold, rebuilt, pairs)
            assert np.array_equal(warm, cold), name


class TestServeRoute:
    """The serving read path routes through the kernel layer unchanged."""

    def test_predict_scores_match_legacy(self):
        from repro.serve.store import ScoreStore

        snapshot = random_snapshot(20, 0.2, 3)
        store = ScoreStore(snapshot.trace)
        served = store._snapshot
        u = int(served.node_ids[0])
        result = store.predict(u, 5, "AA")
        pairs = candidate_pairs(served, "two_hop")
        mask = (pairs[:, 0] == u) | (pairs[:, 1] == u)
        mine = pairs[mask]
        metric = get_metric("AA").fit(served)
        legacy = np.asarray(metric.score(mine), dtype=np.float64)
        others = np.where(mine[:, 0] == u, mine[:, 1], mine[:, 0])
        expected = {
            int(v): float(s) for v, s in zip(others.tolist(), legacy.tolist())
        }
        assert result["predictions"], "expected at least one candidate"
        for prediction in result["predictions"]:
            assert expected[prediction["v"]] == prediction["score"]
