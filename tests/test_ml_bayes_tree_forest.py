"""Tests for Gaussian NB, decision trees, and random forests."""

import numpy as np
import pytest

from repro.ml import GaussianNaiveBayes, RandomForestClassifier, accuracy_score
from repro.ml.tree import DecisionTreeClassifier
from tests.test_ml_linear import make_blobs


class TestGaussianNaiveBayes:
    def test_separable_data(self):
        x, y = make_blobs(sep=3.0)
        model = GaussianNaiveBayes().fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.95

    def test_decision_is_log_posterior_ratio(self):
        """Equal-prior symmetric blobs: score sign flips with x[0] sign."""
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-2, 1, (200, 1)), rng.normal(2, 1, (200, 1))])
        y = np.repeat([0, 1], 200)
        model = GaussianNaiveBayes().fit(x, y)
        assert model.decision_function(np.asarray([[3.0]]))[0] > 0
        assert model.decision_function(np.asarray([[-3.0]]))[0] < 0

    def test_proba_bounds(self):
        x, y = make_blobs()
        model = GaussianNaiveBayes().fit(x, y)
        proba = model.predict_proba(x)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_respects_priors(self):
        """With a 9:1 prior and ambiguous input, predicts the majority."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1000, 1))
        y = (rng.random(1000) < 0.9).astype(int)
        model = GaussianNaiveBayes().fit(x, y)
        assert model.predict(np.asarray([[0.0]]))[0] == 1

    def test_var_smoothing_handles_constant_feature(self):
        x = np.column_stack([np.ones(100), np.linspace(-1, 1, 100)])
        y = (x[:, 1] > 0).astype(int)
        model = GaussianNaiveBayes().fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1.0)
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().decision_function(np.zeros((1, 1)))


class TestDecisionTree:
    def test_depth_two_solves_conjunction(self):
        """y = (x0 > 0) AND (x1 > 0) is exactly learnable at depth 2."""
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] > 0) & (x[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert accuracy_score(y, tree.predict(x)) == 1.0

    def test_max_depth_respected(self):
        x, y = make_blobs(n=400)
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self):
        x, y = make_blobs(n=100)
        tree = DecisionTreeClassifier(min_samples_leaf=40).fit(x, y)

        def check(node):
            if node.is_leaf:
                assert node.counts.sum() >= 40 or node is tree.root_
            else:
                check(node.left)
                check(node.right)

        check(tree.root_)

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(600, 2))
        y = np.digitize(x[:, 0], [-0.5, 0.5])
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert accuracy_score(y, tree.predict(x)) > 0.9
        assert len(tree.classes_) == 3

    def test_predict_proba_rows_sum_to_one(self):
        x, y = make_blobs(n=200)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        proba = tree.predict_proba(x)
        assert proba.sum(axis=1) == pytest.approx(np.ones(len(x)))

    def test_feature_importances_concentrate(self):
        x, y = make_blobs(sep=4.0)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert np.argmax(tree.feature_importances_) == 0
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_export_text_mentions_feature_names(self):
        x, y = make_blobs(n=200, sep=3.0)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        text = tree.export_text(feature_names=["alpha", "beta", "gamma", "delta"])
        assert "alpha" in text
        assert "=>" in text

    def test_export_class_names(self):
        x, y = make_blobs(n=200, sep=3.0)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        text = tree.export_text(class_names=["neg", "pos"])
        assert "neg" in text or "pos" in text

    def test_constant_features_make_leaf(self):
        x = np.zeros((50, 3))
        y = np.asarray([0, 1] * 25)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.root_.is_leaf

    def test_decision_function_binary_only(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(90, 2))
        y = np.arange(90) % 3
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        with pytest.raises(RuntimeError, match="binary"):
            tree.decision_function(x)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestRandomForest:
    def test_beats_or_matches_single_stump(self):
        x, y = make_blobs(n=500, sep=1.0, seed=3)
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        forest = RandomForestClassifier(n_estimators=15, max_depth=5, seed=0).fit(x, y)
        assert accuracy_score(y, forest.predict(x)) >= accuracy_score(
            y, stump.predict(x)
        )

    def test_deterministic_given_seed(self):
        x, y = make_blobs(n=200)
        a = RandomForestClassifier(n_estimators=5, seed=9).fit(x, y).predict(x)
        b = RandomForestClassifier(n_estimators=5, seed=9).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_proba_is_tree_average(self):
        x, y = make_blobs(n=200)
        forest = RandomForestClassifier(n_estimators=7, max_depth=3, seed=0).fit(x, y)
        proba = forest.predict_proba(x)
        assert proba.shape == (len(x), 2)
        assert proba.sum(axis=1) == pytest.approx(np.ones(len(x)))

    def test_decision_function_binary(self):
        x, y = make_blobs(n=200)
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
        scores = forest.decision_function(x)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_feature_importances(self):
        x, y = make_blobs(n=400, sep=4.0)
        forest = RandomForestClassifier(n_estimators=10, max_depth=4, seed=0).fit(x, y)
        assert np.argmax(forest.feature_importances_) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))
