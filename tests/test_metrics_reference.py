"""Cross-validation of the vectorised metrics against naive references.

Every metric with a closed per-pair formula is recomputed by the
loop-based reference implementations in
:mod:`tests.reference_implementations` on randomised graphs and compared
exactly (or within numerical tolerance for the iterative ones).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric
from repro.metrics.candidates import all_nonedge_pairs
from tests.reference_implementations import REFERENCES
from tests.test_properties import edge_streams

EXACT = ("CN", "JC", "AA", "RA", "BCN", "BAA", "BRA", "PA", "LP", "Katz_sc", "SP")
ITERATIVE = ("LRW", "PPR")


def make_snapshot(stream):
    trace = TemporalGraph.from_stream(stream)
    return Snapshot(trace, trace.num_edges)


def reference_scores(snapshot, name, pairs):
    fn = REFERENCES[name]
    return np.asarray([fn(snapshot, int(u), int(v)) for u, v in pairs])


class TestExactAgreement:
    @pytest.mark.parametrize("name", EXACT)
    def test_on_tiny_graph(self, tiny_snapshot, name):
        pairs = all_nonedge_pairs(tiny_snapshot)
        fast = get_metric(name).fit(tiny_snapshot).score(pairs)
        slow = reference_scores(tiny_snapshot, name, pairs)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("name", EXACT)
    def test_on_preset_sample(self, facebook_snapshots, name):
        s = facebook_snapshots[0]
        rng = np.random.default_rng(0)
        pairs = all_nonedge_pairs(s)
        pairs = pairs[rng.choice(len(pairs), size=min(60, len(pairs)), replace=False)]
        fast = get_metric(name).fit(s).score(pairs)
        slow = reference_scores(s, name, pairs)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-12)

    @given(edge_streams(max_nodes=9, max_edges=20))
    @settings(max_examples=20, deadline=None)
    def test_randomised_neighbourhood_family(self, stream):
        s = make_snapshot(stream)
        pairs = all_nonedge_pairs(s)
        if len(pairs) == 0:
            return
        for name in ("CN", "JC", "AA", "RA", "BCN", "BRA", "PA"):
            fast = get_metric(name).fit(s).score(pairs)
            slow = reference_scores(s, name, pairs)
            assert fast == pytest.approx(slow, rel=1e-9, abs=1e-12), name

    @given(edge_streams(max_nodes=8, max_edges=14))
    @settings(max_examples=15, deadline=None)
    def test_randomised_path_family(self, stream):
        s = make_snapshot(stream)
        pairs = all_nonedge_pairs(s)
        if len(pairs) == 0:
            return
        for name in ("LP", "Katz_sc", "SP"):
            fast = get_metric(name).fit(s).score(pairs)
            slow = reference_scores(s, name, pairs)
            assert fast == pytest.approx(slow, rel=1e-9, abs=1e-12), name


class TestIterativeAgreement:
    def test_lrw_matches_reference(self, tiny_snapshot):
        pairs = all_nonedge_pairs(tiny_snapshot)
        fast = get_metric("LRW").fit(tiny_snapshot).score(pairs)
        slow = reference_scores(tiny_snapshot, "LRW", pairs)
        assert fast == pytest.approx(slow, rel=1e-9)

    def test_ppr_matches_reference(self, tiny_snapshot):
        pairs = all_nonedge_pairs(tiny_snapshot)[:8]
        fast = get_metric("PPR").fit(tiny_snapshot).score(pairs)
        slow = reference_scores(tiny_snapshot, "PPR", pairs)
        assert fast == pytest.approx(slow, rel=1e-6)

    @given(edge_streams(max_nodes=8, max_edges=16))
    @settings(max_examples=10, deadline=None)
    def test_randomised_lrw(self, stream):
        s = make_snapshot(stream)
        pairs = all_nonedge_pairs(s)
        if len(pairs) == 0:
            return
        fast = get_metric("LRW").fit(s).score(pairs)
        slow = reference_scores(s, "LRW", pairs)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-12)
