"""Corruption suite for the hardened ingest pipeline (repro.ingest).

Every error-taxonomy class is injected into a clean generated trace and
exercised under all three policies:

- ``strict``  -> raises :class:`TraceFormatError` carrying the right class
  and file:line context;
- ``repair``  -> for the droppable/reorderable classes, the loaded graph's
  columns are **byte-identical** to the uncorrupted reference (the
  acceptance bar for deterministic repair);
- ``quarantine`` -> the offending raw lines round-trip losslessly through
  the ``.rejects`` sidecar and the survivors still load.

Plus a hypothesis suite that injects random mixtures of corruptions and
asserts repair always reconstructs the reference columns exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import presets
from repro.graph.io import read_trace, write_trace
from repro.ingest import (
    ERROR_CLASSES,
    IngestPolicy,
    TraceFormatError,
    load_trace,
    read_rejects,
    scan_trace,
)

# ---------------------------------------------------------------------------
# Reference trace and corruption helpers
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def reference():
    """A clean generated preset trace, written to disk once per module."""
    return presets.facebook_like(scale=0.15, seed=5)


@pytest.fixture()
def clean_file(reference, tmp_path):
    path = tmp_path / "clean.txt"
    write_trace(reference, path)
    return path


def data_lines(path):
    """The file's data lines (comments/blanks preserved by index offset)."""
    return path.read_text(encoding="utf-8").splitlines()


def write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _unique_time_line_index(lines):
    """Index of a data line whose timestamp is unique in the whole file."""
    times = []
    for line in lines:
        if line.startswith("#"):
            times.append(None)
        else:
            times.append(float(line.split()[2]))
    values = [t for t in times if t is not None]
    counts = {}
    for t in values:
        counts[t] = counts.get(t, 0) + 1
    for i, t in enumerate(times):
        if t is not None and counts[t] == 1:
            return i
    raise AssertionError("reference trace has no uniquely-timed event")


#: class -> corruptor(lines) -> (corrupted lines, injected raw line or None).
#: Each corruptor yields exactly one offender of its class (plus whatever
#: secondary classes the injection necessarily triggers, e.g. an appended
#: duplicate of a non-final event is also out of order).
def _corrupt_parse_error(lines):
    bad = "0 1 2 3 4"
    return lines + [bad], bad


def _corrupt_bad_node_token(lines):
    bad = "3.5 7 999.0"
    return lines + [bad], bad


def _corrupt_bad_node_negative(lines):
    bad = "-3 7 999.0"
    return lines + [bad], bad


def _corrupt_nonfinite_time(lines):
    bad = "1 2 nan"
    return lines + [bad], bad


def _corrupt_negative_time(lines):
    bad = "98765 98766 -1.5"
    return lines + [bad], bad


def _corrupt_self_loop(lines):
    bad = "6 6 999.0"
    return lines + [bad], bad


def _corrupt_duplicate_edge(lines):
    # Copy the LAST data line so the duplicate is not also out of order.
    last = next(l for l in reversed(lines) if not l.startswith("#"))
    return lines + [last], last


def _corrupt_out_of_order(lines):
    # Move a uniquely-timed event to the end of the file: at its new
    # position it precedes events with larger timestamps already seen.
    i = _unique_time_line_index(lines)
    moved = lines[i]
    return lines[:i] + lines[i + 1 :] + [moved], moved


CORRUPTORS = {
    "parse_error": _corrupt_parse_error,
    "bad_node_id": _corrupt_bad_node_negative,
    "nonfinite_time": _corrupt_nonfinite_time,
    "negative_time": _corrupt_negative_time,
    "self_loop": _corrupt_self_loop,
    "out_of_order": _corrupt_out_of_order,
    "duplicate_edge": _corrupt_duplicate_edge,
}

#: classes whose repair is a drop/reorder and therefore reconstructs the
#: clean reference exactly (negative_time repairs by clamping instead).
IDENTITY_CLASSES = (
    "parse_error",
    "bad_node_id",
    "nonfinite_time",
    "self_loop",
    "out_of_order",
    "duplicate_edge",
)


def _policy_with(target: str, action: str, others: str = "repair") -> IngestPolicy:
    return IngestPolicy(
        **{cls: (action if cls == target else others) for cls in ERROR_CLASSES}
    )


def assert_columns_identical(graph, reference):
    gu, gv, gt = graph.columns()
    ru, rv, rt = reference.columns()
    assert np.array_equal(gu, ru)
    assert np.array_equal(gv, rv)
    # byte-identical, not approx: repair must be exact.
    assert gt.tobytes() == rt.tobytes()


# ---------------------------------------------------------------------------
# Every class x every policy
# ---------------------------------------------------------------------------
class TestStrict:
    @pytest.mark.parametrize("error_class", sorted(CORRUPTORS))
    def test_raises_with_right_class_and_location(
        self, error_class, clean_file, tmp_path
    ):
        lines, injected = CORRUPTORS[error_class](data_lines(clean_file))
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(bad, policy=_policy_with(error_class, "strict"))
        err = excinfo.value
        assert err.error_class == error_class
        assert err.path == str(bad)
        assert err.lineno is not None and 1 <= err.lineno <= len(lines)
        assert str(bad) in str(err) and error_class in str(err)

    def test_strict_error_carries_offending_line(self, clean_file, tmp_path):
        lines, injected = CORRUPTORS["self_loop"](data_lines(clean_file))
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(bad, policy=IngestPolicy.strict())
        assert excinfo.value.line == injected


class TestRepair:
    @pytest.mark.parametrize("error_class", IDENTITY_CLASSES)
    def test_repair_reconstructs_reference_exactly(
        self, error_class, reference, clean_file, tmp_path
    ):
        lines, _ = CORRUPTORS[error_class](data_lines(clean_file))
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        graph = load_trace(bad, policy=IngestPolicy.repair())
        assert_columns_identical(graph, reference)
        assert graph.ingest_report.flagged.get(error_class, 0) >= 1
        assert graph.ingest_report.repaired.get(error_class, 0) >= 1

    def test_negative_time_repair_clamps_to_zero(
        self, reference, clean_file, tmp_path
    ):
        lines, _ = CORRUPTORS["negative_time"](data_lines(clean_file))
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        graph = load_trace(bad, policy=IngestPolicy.repair())
        # Clamping keeps the event (at t=0.0) instead of dropping it.
        assert graph.num_edges == reference.num_edges + 1
        assert graph.edge_time(98765, 98766) == 0.0
        assert graph.ingest_report.repaired["negative_time"] == 1

    def test_all_classes_at_once(self, reference, clean_file, tmp_path):
        lines = data_lines(clean_file)
        for error_class in IDENTITY_CLASSES:
            lines, _ = CORRUPTORS[error_class](lines)
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        graph = load_trace(bad, policy=IngestPolicy.repair())
        assert_columns_identical(graph, reference)
        for error_class in IDENTITY_CLASSES:
            assert graph.ingest_report.flagged.get(error_class, 0) >= 1


class TestQuarantine:
    @pytest.mark.parametrize("error_class", sorted(CORRUPTORS))
    def test_rejects_round_trip_losslessly(
        self, error_class, clean_file, tmp_path
    ):
        lines, injected = CORRUPTORS[error_class](data_lines(clean_file))
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        graph = load_trace(bad, policy=_policy_with(error_class, "quarantine"))
        report = graph.ingest_report
        assert report.quarantined.get(error_class, 0) >= 1
        assert report.quarantine_path is not None
        records = read_rejects(report.quarantine_path)
        mine = [r for r in records if r.error_class == error_class]
        assert len(mine) == report.quarantined[error_class]
        # lossless: the raw injected line survives byte for byte.
        assert any(r.line == injected for r in mine)
        for r in records:
            assert lines[r.lineno - 1] == r.line

    def test_quarantined_drop_classes_leave_reference(
        self, reference, clean_file, tmp_path
    ):
        lines = data_lines(clean_file)
        for error_class in (
            "parse_error", "bad_node_id", "nonfinite_time",
            "self_loop", "duplicate_edge", "negative_time",
        ):
            lines, _ = CORRUPTORS[error_class](lines)
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        graph = load_trace(bad, policy=IngestPolicy.quarantine())
        assert_columns_identical(graph, reference)
        records = read_rejects(graph.ingest_report.quarantine_path)
        assert len(records) == 6

    def test_explicit_quarantine_path(self, clean_file, tmp_path):
        lines, _ = CORRUPTORS["self_loop"](data_lines(clean_file))
        bad = tmp_path / "bad.txt"
        write_lines(bad, lines)
        sidecar = tmp_path / "custom.rejects"
        graph = load_trace(
            bad, policy=IngestPolicy.quarantine(), quarantine_path=sidecar
        )
        assert graph.ingest_report.quarantine_path == str(sidecar)
        assert sidecar.exists()

    def test_no_sidecar_when_clean(self, clean_file):
        graph = load_trace(clean_file, policy=IngestPolicy.quarantine())
        assert graph.ingest_report.quarantine_path is None
        assert graph.ingest_report.clean


# ---------------------------------------------------------------------------
# Hypothesis: random corruption mixtures, repair always reconstructs
# ---------------------------------------------------------------------------
_INJECTABLE = st.sampled_from(
    ["parse_error", "bad_node_id", "nonfinite_time", "self_loop", "duplicate_edge"]
)


@st.composite
def corruption_plans(draw):
    """A list of (class, position-fraction) insertions."""
    n = draw(st.integers(min_value=1, max_value=8))
    return [
        (draw(_INJECTABLE), draw(st.floats(min_value=0, max_value=1)))
        for _ in range(n)
    ]


class TestHypothesisCorruption:
    @settings(max_examples=25, deadline=None)
    @given(plan=corruption_plans())
    def test_repair_reconstructs_under_random_injection(
        self, plan, reference, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("hyp")
        clean = tmp / "clean.txt"
        write_trace(reference, clean)
        lines = data_lines(clean)
        # victims for duplication come from the pristine events, not from
        # lines injected earlier in this loop.
        data_only = [l for l in lines if not l.startswith("#")]
        injected_per_class: dict[str, int] = {}
        for error_class, frac in plan:
            if error_class == "duplicate_edge":
                # duplicate an existing event (same timestamp -> stable
                # sort keeps whichever copy comes first; columns agree).
                victim = data_only[int(frac * (len(data_only) - 1))]
                injected = victim
            elif error_class == "self_loop":
                injected = "4 4 7.25"
            elif error_class == "parse_error":
                injected = "one two three"
            elif error_class == "bad_node_id":
                injected = "-9 3 2.5"
            else:
                injected = "2 3 inf"
            pos = int(frac * len(lines))
            lines = lines[:pos] + [injected] + lines[pos:]
            injected_per_class[error_class] = (
                injected_per_class.get(error_class, 0) + 1
            )
        bad = tmp / "bad.txt"
        write_lines(bad, lines)
        graph = load_trace(bad, policy=IngestPolicy.repair())
        assert_columns_identical(graph, reference)
        report = graph.ingest_report
        for error_class, count in injected_per_class.items():
            assert report.flagged.get(error_class, 0) >= count


# ---------------------------------------------------------------------------
# Reader mechanics: gzip, BOM, blocks, reports
# ---------------------------------------------------------------------------
class TestReader:
    def test_gzip_by_magic_bytes_not_extension(self, reference, tmp_path):
        import gzip as gz

        disguised = tmp_path / "trace.txt"  # no .gz suffix
        plain = tmp_path / "plain.txt"
        write_trace(reference, plain)
        disguised.write_bytes(gz.compress(plain.read_bytes()))
        graph = load_trace(disguised)
        assert graph.ingest_report.gzip
        assert_columns_identical(graph, reference)

    def test_bom_and_utf8_comments(self, tmp_path):
        path = tmp_path / "bom.txt"
        path.write_bytes(
            "﻿# komentář über alles — crawl\n"
            "0 1 0.5\n1 2 1.5\n".encode("utf-8")
        )
        graph = load_trace(path)
        assert graph.num_edges == 2
        assert graph.ingest_report.comment_lines == 1

    def test_undecodable_bytes_become_located_parse_errors(self, tmp_path):
        path = tmp_path / "latin.txt"
        path.write_bytes(b"0 1 0.5\n\xff\xfe 2 1.0\n2 3 1.5\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path, policy=IngestPolicy.strict())
        assert excinfo.value.lineno == 2
        graph = load_trace(path, policy=IngestPolicy.repair())
        assert graph.num_edges == 2

    def test_block_boundaries_do_not_change_results(
        self, reference, clean_file, monkeypatch
    ):
        import repro.ingest.loader as loader

        monkeypatch.setattr(loader, "BLOCK_LINES", 7)
        graph = load_trace(clean_file)
        assert_columns_identical(graph, reference)

    def test_mixed_two_and_three_column_lines(self, tmp_path):
        path = tmp_path / "mixed.txt"
        # 2-column lines take their line number as a synthetic timestamp.
        path.write_text("0 1 1.0\n2 3\n4 5 3.0\n", encoding="utf-8")
        graph = load_trace(path)
        assert graph.num_edges == 3
        assert graph.edge_time(2, 3) == 2.0

    def test_report_counts_and_checksum(self, reference, clean_file):
        us, vs, ts, report = scan_trace(clean_file)
        assert report.events_parsed == reference.num_edges
        assert report.events_accepted == reference.num_edges
        assert report.lines_total == reference.num_edges + 2  # 2 headers
        assert report.comment_lines == 2
        assert report.format_version == 2
        assert report.min_time == float(ts[0])
        assert report.max_time == float(ts[-1])
        assert len(report.checksum) == 16
        # Checksum is a function of the accepted stream only: a repaired
        # dirty copy hashes identically.
        ru, rv, rt = reference.columns()
        assert np.array_equal(us, ru) and np.array_equal(vs, rv)

    def test_empty_and_comment_only_files(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n\n", encoding="utf-8")
        graph = load_trace(path)
        assert graph.num_edges == 0
        assert graph.ingest_report.events_accepted == 0

    def test_policy_presets_and_validation(self):
        assert IngestPolicy.from_string("strict").action("self_loop") == "strict"
        assert IngestPolicy.default().action("duplicate_edge") == "repair"
        with pytest.raises(ValueError, match="unknown ingest policy"):
            IngestPolicy.from_string("lenient")
        with pytest.raises(ValueError, match="invalid action"):
            IngestPolicy(self_loop="ignore")

    def test_report_json_payload_round_trips(self, clean_file):
        import json

        graph = load_trace(clean_file)
        payload = json.loads(graph.ingest_report.to_json())
        assert payload["events_accepted"] == graph.num_edges
        assert payload["policy"]["self_loop"] == "strict"


class TestFastPathAlignment:
    """The clean-block fast path must never mis-align a dirty block.

    ``_parse_block`` joins a block's tokens and stride-slices them 3-wide.
    A token-count-only guard would accept a 4-token line compensated by a
    2-token line (6 tokens, 2 lines — looks like two clean events) and
    silently parse the WRONG numbers; the exact per-line guard must route
    any such block to the per-line classifier instead.
    """

    def test_compensating_token_counts_are_not_misparsed(self, tmp_path):
        path = tmp_path / "compensating.txt"
        # 4 tokens + 2 tokens: stride slicing would yield the plausible
        # but wrong events (1,2,3.0) and (4,5,6.0) -- every u/v position
        # an int, every t position a float.
        path.write_text("1 2 3.0 4\n5 6\n", encoding="utf-8")
        graph = load_trace(path, policy=IngestPolicy.repair())
        # right answer: line 1 is a parse error (dropped), line 2 is a
        # valid 2-column event stamped with its line number.
        assert graph.num_edges == 1
        assert graph.edge_time(5, 6) == 2.0
        assert graph.ingest_report.flagged.get("parse_error") == 1

    def test_tab_and_double_space_lines_take_the_slow_path(self, tmp_path):
        """Whitespace the fast path excludes still parses identically."""
        clean = tmp_path / "clean.txt"
        clean.write_text("0 1 1.0\n1 2 2.0\n2 3 3.0\n", encoding="utf-8")
        messy = tmp_path / "messy.txt"
        messy.write_text("0\t1\t1.0\n1  2  2.0\n2 3 3.0\n", encoding="utf-8")
        assert_columns_identical(load_trace(messy), load_trace(clean))

    def test_fast_path_is_bit_exact_against_tiny_blocks(
        self, reference, clean_file, monkeypatch
    ):
        """BLOCK_LINES=1 forces single-line blocks through the same fast
        path; results must match the default blocking bit-for-bit."""
        import repro.ingest.loader as loader

        expected = load_trace(clean_file)
        monkeypatch.setattr(loader, "BLOCK_LINES", 1)
        assert_columns_identical(load_trace(clean_file), expected)


class TestCorruptFixture:
    """Pin the committed CI fixture: every taxonomy class must stay
    reachable from it (the audit smoke step greps for each name)."""

    FIXTURE = __file__.rsplit("/", 1)[0] + "/data/corrupt_trace.txt"

    def test_every_class_flagged_under_repair(self):
        graph = load_trace(self.FIXTURE, policy=IngestPolicy.repair())
        report = graph.ingest_report
        for error_class in ERROR_CLASSES:
            assert report.flagged.get(error_class, 0) >= 1, error_class
        assert not report.clean
        assert graph.num_edges == 4
        for error_class in ERROR_CLASSES:
            assert f"{error_class}=" in report.summary()

    def test_cli_audit_exits_nonzero(self, capsys):
        from repro.__main__ import main

        assert main(["audit", "--trace", self.FIXTURE]) == 1
        err = capsys.readouterr().err
        for error_class in ERROR_CLASSES:
            assert error_class in err
