"""Serving-layer tests: units, robustness under injected faults, drain.

The integration cases run a real server (real sockets, real admission
queue, real worker pool) via :class:`repro.serve.ServerHarness`, with
failures scripted through :mod:`repro.eval.faults` — the same
deterministic plan machinery the batch runner's fault-tolerance suite
uses, pointed at the serve-layer keys ``serve.predict`` and
``serve.ingest``.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.eval import faults
from repro.graph.io import write_trace
from repro.ingest import IngestPolicy
from repro.serve import (
    DEGRADED_HEADER,
    AdmissionQueue,
    CircuitBreaker,
    IngestRejected,
    Job,
    ScoreStore,
    ServeConfig,
    ServerHarness,
    StoreWriteError,
    UnknownNodeError,
    client,
    default_workers,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serve.protocol import ProtocolError, read_request, response_bytes
from tests.conftest import build_trace

# A small diamond-plus-tail graph: enough two-hop structure for CN/RA
# scores, tiny enough that a /predict round trip is well under 10 ms.
SERVE_EVENTS = [
    (0, 1, 0.0),
    (1, 2, 1.0),
    (0, 2, 2.0),
    (2, 3, 3.0),
    (3, 4, 4.0),
    (0, 3, 5.0),
    (4, 5, 6.0),
    (1, 4, 7.0),
    (5, 6, 8.0),
    (2, 6, 9.0),
    (6, 7, 10.0),
    (0, 7, 11.0),
]


def serve_trace():
    return build_trace(SERVE_EVENTS)


@pytest.fixture
def fault_plan():
    """Install-and-clean fault plans; yields the installer."""
    try:
        yield lambda **kw: faults.install(faults.FaultPlan(**kw))
    finally:
        faults.clear()


# ---------------------------------------------------------------------------
# ServeConfig
# ---------------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.queue_size == 64
        assert config.resolved_workers >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_size": 0},
            {"queue_size": -3},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"drain_s": 0.0},
            {"breaker_threshold": 0},
            {"breaker_cooldown_s": -2.0},
            {"port": 70000},
            {"port": -1},
            {"workers": 0},
            {"audit_every": -1},
            {"max_k": 0},
            {"deadline_s": 60.0, "max_deadline_s": 30.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_workers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_workers() == 3
        assert ServeConfig().resolved_workers == 3

    @pytest.mark.parametrize("value", ["0", "-2", "abc"])
    def test_bad_env_workers_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ValueError):
            default_workers()

    def test_describe_reports_resolved_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        described = ServeConfig(workers=2).describe()
        assert described["workers"] == 2
        json.dumps(described)  # must stay JSON-safe for /statz


# ---------------------------------------------------------------------------
# CircuitBreaker (driven by a fake clock — no sleeping)
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        now = [0.0]
        breaker = CircuitBreaker(threshold, cooldown, clock=lambda: now[0])
        return breaker, now

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # not consecutive -> no trip

    def test_retry_after_counts_down(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        now[0] = 4.0
        assert breaker.retry_after() == pytest.approx(6.0)

    def test_half_open_admits_exactly_one_probe(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone queued behind it
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        assert breaker.trips == 2

    def test_release_probe_frees_the_slot_without_closing(self):
        breaker, now = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.release_probe()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # slot available again

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(1, 0.0)


# ---------------------------------------------------------------------------
# AdmissionQueue
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def job(self, loop, name="j"):
        now = time.monotonic()
        return Job(
            name=name,
            run=lambda: None,
            future=loop.create_future(),
            enqueued_at=now,
            deadline_at=now + 5.0,
        )

    def test_rejects_when_full_and_counts_shed(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(2)
            assert queue.try_admit(self.job(loop))
            assert queue.try_admit(self.job(loop))
            assert not queue.try_admit(self.job(loop))  # reject-newest
            assert queue.depth == 2
            assert queue.stats.admitted == 2
            assert queue.stats.shed == 1
            assert queue.stats.max_depth == 2

        asyncio.run(scenario())

    def test_get_drains_jobs_then_sentinels(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(4)
            queue.try_admit(self.job(loop, "a"))
            queue.try_admit(self.job(loop, "b"))
            queue.close(workers=2)
            assert (await queue.get()).name == "a"
            assert (await queue.get()).name == "b"
            assert await queue.get() is None
            assert await queue.get() is None
            assert queue.depth == 0

        asyncio.run(scenario())

    def test_slot_frees_after_pickup(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(1)
            assert queue.try_admit(self.job(loop))
            assert not queue.try_admit(self.job(loop))
            await queue.get()
            assert queue.try_admit(self.job(loop))  # slot is free again

        asyncio.run(scenario())

    def test_zero_maxsize_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


# ---------------------------------------------------------------------------
# HTTP protocol framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def parse(self, data: bytes, max_body: int = 1024):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_request(reader, max_body)

        return asyncio.run(scenario())

    def test_parses_target_params_and_body(self):
        request = self.parse(
            b"POST /ingest?deadline_ms=250 HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 8\r\n\r\n1 2 3.0\n"
        )
        assert request.method == "POST"
        assert request.path == "/ingest"
        assert request.params == {"deadline_ms": "250"}
        assert request.body == b"1 2 3.0\n"
        assert request.keep_alive

    def test_connection_close_honoured(self):
        request = self.parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert self.parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            self.parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            self.parse(
                b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
                max_body=100,
            )
        assert excinfo.value.status == 413

    def test_response_bytes_roundtrip(self):
        raw = response_bytes(429, b'{"e":1}', headers={"Retry-After": "1"})
        text = raw.decode("latin-1")
        assert text.startswith("HTTP/1.1 429 Too Many Requests\r\n")
        assert "Retry-After: 1" in text
        assert text.endswith('\r\n\r\n{"e":1}')

    def test_content_type_override_does_not_duplicate(self):
        raw = response_bytes(
            200, b"x", headers={"Content-Type": "text/plain"}
        ).decode("latin-1")
        assert raw.count("Content-Type") == 1
        assert "Content-Type: text/plain" in raw


# ---------------------------------------------------------------------------
# ScoreStore
# ---------------------------------------------------------------------------
class TestScoreStore:
    def test_predict_is_deterministic_and_ranked(self):
        store = ScoreStore(serve_trace())
        a = store.predict(0, 5, "CN")
        b = store.predict(0, 5, "CN")
        assert a == b
        scores = [p["score"] for p in a["predictions"]]
        assert scores == sorted(scores, reverse=True)
        # ties break on ascending neighbour id
        for left, right in zip(a["predictions"], a["predictions"][1:]):
            if left["score"] == right["score"]:
                assert left["v"] < right["v"]

    def test_predict_unknown_node_raises(self):
        store = ScoreStore(serve_trace())
        with pytest.raises(UnknownNodeError):
            store.predict(999, 5, "CN")

    def test_predict_unknown_metric_raises_keyerror(self):
        store = ScoreStore(serve_trace())
        with pytest.raises(KeyError):
            store.predict(0, 5, "NOPE")

    def test_ingest_applies_and_swaps_snapshot(self):
        store = ScoreStore(serve_trace())
        before = store.snapshot
        result = store.ingest_lines("8 9 12.0\n9 10 13.0\n")
        assert result["applied"] == 2
        assert result["new_nodes"] == 3
        assert store.snapshot is not before
        assert store.snapshot.num_edges == before.num_edges + 2

    def test_strict_policy_rejects_whole_batch_without_side_effects(self):
        store = ScoreStore(serve_trace(), policy=IngestPolicy.strict())
        before = store.snapshot
        with pytest.raises(IngestRejected) as excinfo:
            store.ingest_lines("8 9 12.0\n5 5 13.0\n")
        assert excinfo.value.error_class == "self_loop"
        assert excinfo.value.lineno == 2
        assert store.snapshot is before
        assert store.snapshot.num_edges == before.num_edges

    def test_repair_policy_clamps_negative_and_stale_times(self):
        store = ScoreStore(serve_trace(), policy=IngestPolicy.repair())
        result = store.ingest_lines("8 9 -3.0\n")
        assert result["applied"] == 1
        # clamped to 0, then lifted to the stream end (no time travel)
        assert store.snapshot.trace.end_time == 11.0

    def test_quarantine_policy_drops_out_of_order_events(self):
        store = ScoreStore(serve_trace(), policy=IngestPolicy.quarantine())
        result = store.ingest_lines("8 9 12.0\n9 10 2.0\n10 11 13.0\n")
        assert result["applied"] == 2  # the in-order suffix survives
        assert result["rejected"].get("out_of_order", 0) >= 1

    def test_default_policy_counts_duplicates_without_applying(self):
        store = ScoreStore(serve_trace())
        result = store.ingest_lines("0 1 12.0\n")
        assert result["applied"] == 0
        assert result["rejected"] == {"duplicate_edge": 1}

    def test_comments_and_blank_lines_ignored(self):
        store = ScoreStore(serve_trace())
        result = store.ingest_lines("# header\n\n8 9 12.0\n")
        assert result["applied"] == 1

    def test_two_field_lines_get_the_stream_end_time(self):
        store = ScoreStore(serve_trace())
        result = store.ingest_lines("8 9\n")
        assert result["applied"] == 1
        assert store.snapshot.trace.end_time == 11.0

    def test_empty_trace_rejected(self):
        from repro.graph.dyngraph import TemporalGraph

        with pytest.raises(ValueError):
            ScoreStore(TemporalGraph())

    def test_audit_failure_poisons_then_resync_recovers(self, monkeypatch):
        store = ScoreStore(serve_trace(), audit_every=1)

        class FailedAudit:
            ok = False

            def summary(self):
                return "scripted violation"

        monkeypatch.setattr(store._engine, "audit", lambda: FailedAudit())
        with pytest.raises(StoreWriteError):
            store.ingest_lines("8 9 12.0\n")
        assert store.poisoned
        with pytest.raises(StoreWriteError):
            store.ingest_lines("9 10 13.0\n")  # poisoned: refuse writes
        monkeypatch.undo()
        store.resync()
        assert not store.poisoned
        # the engine is back at the last-good prefix and writable again
        assert store.ingest_lines("9 10 13.0\n")["applied"] == 1


# ---------------------------------------------------------------------------
# Integration: a live server per class/test via the harness
# ---------------------------------------------------------------------------
@pytest.fixture(scope="class")
def basic_server():
    with ServerHarness(serve_trace(), ServeConfig(port=0, workers=2)) as h:
        yield h


class TestServerBasics:
    def test_healthz_always_200(self, basic_server):
        response = basic_server.request("GET", "/healthz")
        assert response.status == 200
        assert response.json()["snapshot_edges"] == len(SERVE_EVENTS)

    def test_readyz_200_when_healthy(self, basic_server):
        assert basic_server.request("GET", "/readyz").status == 200

    def test_predict_contract(self, basic_server):
        response = basic_server.request("GET", "/predict?u=0&k=3&metric=CN")
        assert response.status == 200
        payload = response.json()
        assert payload["u"] == 0 and payload["metric"] == "CN"
        assert len(payload["predictions"]) <= 3
        assert {"v", "score"} <= set(payload["predictions"][0])
        assert "queue_wait_ms" in payload
        assert not response.degraded

    def test_unknown_node_404(self, basic_server):
        assert basic_server.request("GET", "/predict?u=555").status == 404

    def test_missing_u_400(self, basic_server):
        assert basic_server.request("GET", "/predict?k=3").status == 400

    @pytest.mark.parametrize(
        "target",
        [
            "/predict?u=zero",
            "/predict?u=0&k=zero",
            "/predict?u=0&k=0",
            "/predict?u=0&k=100000",
            "/predict?u=0&metric=NOPE",
            "/predict?u=0&deadline_ms=-5",
            "/predict?u=0&deadline_ms=soon",
        ],
    )
    def test_bad_parameters_400(self, basic_server, target):
        assert basic_server.request("GET", target).status == 400

    def test_unknown_route_404(self, basic_server):
        assert basic_server.request("GET", "/nope").status == 404

    def test_wrong_method_405(self, basic_server):
        response = basic_server.request("POST", "/predict?u=0")
        assert response.status == 405
        assert response.headers["allow"] == "GET"
        assert basic_server.request("GET", "/ingest").status == 405

    def test_ingest_applies_batch(self, basic_server):
        response = basic_server.request(
            "POST", "/ingest", body=b"20 21 30.0\n21 22 31.0\n"
        )
        assert response.status == 200
        payload = response.json()
        assert payload["applied"] == 2
        # the new edges are immediately visible to reads
        follow_up = basic_server.request("GET", "/predict?u=20&k=3&metric=CN")
        assert follow_up.status == 200

    def test_ingest_invalid_utf8_400(self, basic_server):
        assert (
            basic_server.request("POST", "/ingest", body=b"\xff\xfe").status
            == 400
        )

    def test_statz_reports_counters(self, basic_server):
        payload = basic_server.request("GET", "/statz").json()
        assert payload["queue"]["maxsize"] == 64
        assert payload["breaker"]["state"] == "closed"
        assert payload["server"]["requests"] > 0
        assert payload["config"]["workers"] == 2

    def test_metricz_404_without_telemetry(self, basic_server):
        assert basic_server.request("GET", "/metricz").status == 404


class TestServerRobustness:
    def test_hung_lookup_answers_504_within_deadline(self, fault_plan):
        fault_plan(hangs={"serve.predict": (2.0, 1)})
        config = ServeConfig(port=0, workers=2, deadline_s=0.3, drain_s=2.0)
        with ServerHarness(serve_trace(), config) as h:
            started = time.monotonic()
            response = h.request("GET", "/predict?u=0&k=3")
            elapsed = time.monotonic() - started
            assert response.status == 504
            assert elapsed < 1.5  # answered at the deadline, not the hang
            # the next lookup (fault exhausted) succeeds on a free worker
            assert h.request("GET", "/predict?u=0&k=3").status == 200
            # but health checks never waited behind the hung worker
            assert h.request("GET", "/healthz").status == 200

    def test_full_queue_sheds_with_429_and_retry_after(self, fault_plan):
        fault_plan(delays={"serve.predict": (0.4, 10)})
        config = ServeConfig(
            port=0, workers=1, queue_size=1, deadline_s=5.0, drain_s=10.0
        )
        with ServerHarness(serve_trace(), config) as h:
            futures = [
                h.submit(
                    client.request(
                        h.host, h.port, "GET", "/predict?u=0&k=3", timeout=15.0
                    )
                )
                for _ in range(4)
            ]
            responses = [f.result(timeout=20.0) for f in futures]
            statuses = sorted(r.status for r in responses)
            assert 429 in statuses, statuses
            assert 200 in statuses, statuses
            shed = next(r for r in responses if r.status == 429)
            assert "retry-after" in shed.headers
            assert shed.json()["queue_size"] == 1
            stats = h.request("GET", "/statz").json()
            assert stats["queue"]["shed"] >= 1

    def test_breaker_degrades_writes_and_recovers(self, fault_plan):
        fault_plan(errors={"serve.ingest": 2})
        config = ServeConfig(
            port=0,
            workers=2,
            breaker_threshold=2,
            breaker_cooldown_s=0.3,
            drain_s=2.0,
        )
        with ServerHarness(serve_trace(), config) as h:
            # two scripted write failures trip the breaker
            for _ in range(2):
                assert h.request("POST", "/ingest", body=b"8 9 12.0\n").status == 500
            # open: writes shed fast, reads degrade to the stale snapshot
            rejected = h.request("POST", "/ingest", body=b"8 9 12.0\n")
            assert rejected.status == 503
            assert "retry-after" in rejected.headers
            read = h.request("GET", "/predict?u=0&k=3")
            assert read.status == 200
            assert read.headers.get(DEGRADED_HEADER.lower()) == "stale-snapshot"
            assert h.request("GET", "/readyz").status == 503
            assert h.request("GET", "/healthz").status == 200  # still alive
            # cooldown elapses -> half-open -> the probe write succeeds
            time.sleep(0.4)
            probe = h.request("POST", "/ingest", body=b"8 9 12.0\n")
            assert probe.status == 200
            assert h.request("GET", "/readyz").status == 200
            assert not h.request("GET", "/predict?u=0&k=3").degraded
            stats = h.request("GET", "/statz").json()
            assert stats["breaker"]["state"] == "closed"
            assert stats["breaker"]["trips"] == 1

    def test_drain_completes_inflight_requests(self, fault_plan):
        fault_plan(delays={"serve.predict": (0.5, 1)})
        config = ServeConfig(port=0, workers=2, deadline_s=5.0, drain_s=5.0)
        h = ServerHarness(serve_trace(), config).start()
        try:
            future = h.submit(
                client.request(
                    h.host, h.port, "GET", "/predict?u=0&k=3", timeout=15.0
                )
            )
            time.sleep(0.15)  # let the slow request reach a worker
            clean = h.stop()
            assert clean is True
            assert future.result(timeout=5.0).status == 200
            assert h.server.stats.drained_clean is True
        finally:
            h.stop(drain=False)

    def test_new_requests_rejected_while_draining(self):
        config = ServeConfig(port=0, workers=1, drain_s=1.0)
        h = ServerHarness(serve_trace(), config).start()
        try:
            h.server._draining = True
            response = h.request("GET", "/predict?u=0&k=3")
            assert response.status == 503
            assert json.loads(response.body)["detail"] == "server is draining"
        finally:
            h.server._draining = False
            h.stop()


# ---------------------------------------------------------------------------
# The CLI process: SIGTERM drain, exit codes
# ---------------------------------------------------------------------------
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn_server(tmp_path, *extra_args, env_extra=None):
    trace_path = tmp_path / "serve.txt"
    write_trace(serve_trace(), trace_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH", ""))
        if p
    )
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--trace",
            str(trace_path),
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline().strip()
    match = re.search(r":(\d+)$", banner)
    assert match, f"no port in banner {banner!r} (stderr: {proc.stderr.read()})"
    return proc, int(match.group(1))


class TestServeProcess:
    def test_sigterm_drains_inflight_and_exits_zero(self, tmp_path):
        plan = faults.FaultPlan(delays={"serve.predict": (0.6, 1)})
        proc, port = _spawn_server(
            tmp_path,
            "--drain-s",
            "5",
            env_extra={faults.ENV_VAR: plan.to_json()},
        )
        try:
            result = {}

            def slow_request():
                result["response"] = client.sync_request(
                    "127.0.0.1", port, "GET", "/predict?u=0&k=3", timeout=15.0
                )

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.2)  # the delayed request is now in flight
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=10.0)
            out, err = proc.communicate(timeout=15.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert result["response"].status == 200  # finished during drain
        assert proc.returncode == 0, err
        assert "drained cleanly" in err

    def test_sigterm_on_idle_server_exits_zero(self, tmp_path):
        proc, port = _spawn_server(tmp_path)
        try:
            assert (
                client.sync_request("127.0.0.1", port, "GET", "/healthz").status
                == 200
            )
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=15.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, err


class TestServeCLIValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--trace", "x.txt", "--queue-size", "0"],
            ["serve", "--trace", "x.txt", "--queue-size", "lots"],
            ["serve", "--trace", "x.txt", "--workers", "-1"],
            ["serve", "--trace", "x.txt", "--deadline-ms", "0"],
            ["serve", "--trace", "x.txt", "--deadline-ms", "-250"],
            ["serve", "--trace", "x.txt", "--deadline-ms", "nan"],
            ["serve", "--trace", "x.txt", "--drain-s", "0"],
            ["serve", "--trace", "x.txt", "--breaker-threshold", "0"],
            ["serve", "--trace", "x.txt", "--breaker-cooldown-s", "-1"],
            ["serve", "--trace", "x.txt", "--audit-every", "-2"],
            ["serve", "--trace", "x.txt", "--port", "-80"],
            ["audit", "--trace", "x.txt", "--delta", "0"],
            ["audit", "--trace", "x.txt", "--delta", "-5"],
            ["audit", "--trace", "x.txt", "--delta", "ten"],
        ],
    )
    def test_nonpositive_or_invalid_flags_exit_2(self, argv, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        # argparse prints exactly one usage line + one error line
        err = capsys.readouterr().err.strip().splitlines()
        assert err[-1].startswith("usage:") is False
        assert "error:" in err[-1]
