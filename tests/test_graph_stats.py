"""Unit tests for repro.graph.stats, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import stats
from repro.graph.snapshots import Snapshot


class TestAverageDegree:
    def test_tiny(self, tiny_snapshot):
        assert stats.average_degree(tiny_snapshot) == pytest.approx(2 * 12 / 8)

    def test_matches_networkx(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        g = s.to_networkx()
        expected = np.mean([d for _, d in g.degree()])
        assert stats.average_degree(s) == pytest.approx(expected)


class TestDegreeStatistics:
    def test_percentiles_and_moments(self, tiny_snapshot):
        mean, std, pct = stats.degree_statistics(tiny_snapshot)
        degrees = tiny_snapshot.degree_array()
        assert mean == pytest.approx(degrees.mean())
        assert std == pytest.approx(degrees.std())
        assert pct[50] == pytest.approx(np.percentile(degrees, 50))


class TestClustering:
    def test_local_matches_networkx(self, tiny_snapshot):
        g = tiny_snapshot.to_networkx()
        nx_clust = nx.clustering(g)
        for node in tiny_snapshot.nodes():
            assert stats.local_clustering(tiny_snapshot, node) == pytest.approx(
                nx_clust[node]
            )

    def test_average_exact_matches_networkx(self, facebook_snapshots):
        s = facebook_snapshots[0]
        expected = nx.average_clustering(s.to_networkx())
        assert stats.average_clustering(s) == pytest.approx(expected)

    def test_sampled_close_to_exact(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        exact = stats.average_clustering(s)
        sampled = stats.average_clustering(s, sample_size=s.num_nodes // 2, seed=0)
        assert abs(sampled - exact) < 0.1

    def test_degree_one_node_zero(self, tiny_trace):
        s = Snapshot(tiny_trace, 5)  # node 4 has degree 1
        assert stats.local_clustering(s, 4) == 0.0


class TestTriangles:
    def test_matches_networkx(self, tiny_snapshot):
        g = tiny_snapshot.to_networkx()
        nx_tri = nx.triangles(g)
        for node in tiny_snapshot.nodes():
            assert stats.triangle_count(tiny_snapshot, node) == nx_tri[node]


class TestPaths:
    def test_bfs_distances_match_networkx(self, tiny_snapshot):
        g = tiny_snapshot.to_networkx()
        for source in [0, 4, 7]:
            expected = nx.single_source_shortest_path_length(g, source)
            assert stats.bfs_distances(tiny_snapshot, source) == dict(expected)

    def test_bfs_max_depth(self, tiny_snapshot):
        d = stats.bfs_distances(tiny_snapshot, 0, max_depth=1)
        assert set(d.values()) <= {0, 1}

    def test_average_path_length_exact_graph(self, tiny_snapshot):
        # Full sampling = exact average over all ordered reachable pairs.
        ours = stats.average_path_length(tiny_snapshot, sample_size=100, seed=0)
        expected = nx.average_shortest_path_length(tiny_snapshot.to_networkx())
        assert ours == pytest.approx(expected)


class TestAssortativity:
    def test_matches_networkx(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        expected = nx.degree_assortativity_coefficient(s.to_networkx())
        assert stats.degree_assortativity(s) == pytest.approx(expected, abs=1e-8)

    def test_star_is_strongly_negative(self):
        from tests.conftest import build_trace

        star = build_trace([(0, i, float(i)) for i in range(1, 8)])
        s = Snapshot(star, star.num_edges)
        # Every edge joins degree 7 with degree 1: perfect disassortativity.
        assert stats.degree_assortativity(s) == pytest.approx(-1.0)


class TestGraphFeatures:
    def test_feature_vector_shape_and_order(self, tiny_snapshot):
        f = stats.graph_features(tiny_snapshot, clustering_sample=None, path_sample=50)
        arr = f.as_array()
        assert arr.shape == (len(f.FIELD_NAMES),)
        assert arr[0] == tiny_snapshot.num_nodes
        assert arr[1] == tiny_snapshot.num_edges

    def test_deterministic_given_seed(self, facebook_snapshots):
        s = facebook_snapshots[-1]
        a = stats.graph_features(s, seed=3).as_array()
        b = stats.graph_features(s, seed=3).as_array()
        assert np.array_equal(a, b)
