"""Tests for the synthetic trace generators.

These verify both mechanical correctness (schedules, determinism,
validation) and the *structural signatures* each preset must reproduce for
the paper's analysis to transfer (assortativity signs, density ordering,
supernode share, activity recency).
"""

import numpy as np
import pytest

from repro.generators import presets
from repro.generators.base import GrowthConfig, GrowthEngine, generate_trace
from repro.generators.social import social_config
from repro.generators.subscription import subscription_config
from repro.graph import stats
from repro.graph.snapshots import Snapshot


def tiny_config(**overrides) -> GrowthConfig:
    base = dict(
        n_seed=10,
        seed_edges=12,
        total_nodes=60,
        total_edges=300,
        duration_days=30.0,
    )
    base.update(overrides)
    return GrowthConfig(**base)


class TestConfigValidation:
    def test_valid_config_passes(self):
        tiny_config().validate()

    def test_too_few_seed_nodes(self):
        with pytest.raises(ValueError, match="n_seed"):
            tiny_config(n_seed=1).validate()

    def test_total_nodes_below_seed(self):
        with pytest.raises(ValueError, match="total_nodes"):
            tiny_config(total_nodes=5).validate()

    def test_edges_not_above_seed_edges(self):
        with pytest.raises(ValueError, match="total_edges"):
            tiny_config(total_edges=12).validate()

    def test_seed_edges_exceed_possible_pairs(self):
        with pytest.raises(ValueError, match="possible pairs"):
            tiny_config(n_seed=4, seed_edges=10).validate()

    def test_mixture_over_one(self):
        with pytest.raises(ValueError, match="mixture"):
            tiny_config(triadic_prob=0.7, preferential_prob=0.4).validate()

    def test_creator_prob_without_fraction(self):
        with pytest.raises(ValueError, match="creator_fraction"):
            tiny_config(creator_prob=0.1, triadic_prob=0.2).validate()


class TestSchedules:
    def test_edge_count_exact(self):
        trace = generate_trace(tiny_config(), seed=0)
        assert trace.num_edges == 300

    def test_timestamps_monotone(self):
        trace = generate_trace(tiny_config(), seed=0)
        times = [t for _, _, t in trace.edges()]
        assert times == sorted(times)

    def test_duration_respected(self):
        trace = generate_trace(tiny_config(), seed=0)
        assert trace.end_time <= 30.0 + 1e-6

    def test_node_count_bounded(self):
        trace = generate_trace(tiny_config(), seed=0)
        assert trace.num_nodes <= 60

    def test_exponential_edge_growth(self):
        """The second half of the trace time-span holds most of the edges."""
        trace = generate_trace(tiny_config(total_edges=2000, total_nodes=200), seed=0)
        midpoint = trace.edge_index_at_time(15.0)
        assert midpoint < 0.5 * trace.num_edges

    def test_deterministic_given_seed(self):
        a = generate_trace(tiny_config(), seed=42)
        b = generate_trace(tiny_config(), seed=42)
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = generate_trace(tiny_config(), seed=1)
        b = generate_trace(tiny_config(), seed=2)
        assert list(a.edges()) != list(b.edges())


class TestStructuralSignatures:
    def test_social_positive_assortativity(self):
        trace = generate_trace(
            social_config(total_nodes=400, total_edges=3500, duration_days=90), seed=5
        )
        s = Snapshot(trace, trace.num_edges)
        assert stats.degree_assortativity(s) > 0.05

    def test_subscription_negative_assortativity(self):
        trace = generate_trace(
            subscription_config(total_nodes=900, total_edges=2500, duration_days=60),
            seed=5,
        )
        s = Snapshot(trace, trace.num_edges)
        assert stats.degree_assortativity(s) < -0.05

    def test_social_higher_clustering_than_subscription(self):
        social = generate_trace(
            social_config(total_nodes=400, total_edges=3500, duration_days=90), seed=5
        )
        subscription = generate_trace(
            subscription_config(total_nodes=900, total_edges=2500, duration_days=60),
            seed=5,
        )
        cs = stats.average_clustering(Snapshot(social, social.num_edges))
        cu = stats.average_clustering(Snapshot(subscription, subscription.num_edges))
        assert cs > cu

    def test_subscription_has_supernodes(self):
        trace = generate_trace(
            subscription_config(total_nodes=900, total_edges=2500, duration_days=60),
            seed=5,
        )
        s = Snapshot(trace, trace.num_edges)
        degrees = s.degree_array()
        assert degrees.max() > 10 * degrees.mean()

    def test_subscription_mostly_low_degree(self):
        trace = generate_trace(
            subscription_config(total_nodes=900, total_edges=2500, duration_days=60),
            seed=5,
        )
        s = Snapshot(trace, trace.num_edges)
        assert np.mean(s.degree_array() <= 3) > 0.4

    def test_recent_activity_predicts_new_edges(self):
        """Positive pairs involve nodes with shorter idle times (Fig. 13)."""
        trace = presets.facebook_like(scale=0.3, seed=11)
        cut = int(trace.num_edges * 0.8)
        prev = Snapshot(trace, cut)
        future_edges = [
            (u, v)
            for u, v, _ in trace.edge_slice(cut, trace.num_edges)
            if prev.has_node(u) and prev.has_node(v)
        ]
        assert future_edges
        pos_idle = np.array(
            [min(prev.idle_time(u), prev.idle_time(v)) for u, v in future_edges]
        )
        rng = np.random.default_rng(0)
        nodes = prev.node_list
        neg_idle = np.array(
            [
                min(prev.idle_time(int(a)), prev.idle_time(int(b)))
                for a, b in rng.choice(nodes, size=(400, 2))
                if a != b
            ]
        )
        assert np.median(pos_idle) < np.median(neg_idle)


class TestPresets:
    @pytest.mark.parametrize("name", ["facebook", "renren", "youtube"])
    def test_load_by_name(self, name):
        trace = presets.load(name, scale=0.1, seed=0)
        assert trace.num_edges > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            presets.load("myspace")

    def test_snapshot_delta_scales(self):
        assert presets.snapshot_delta("facebook", 1.0) == 260
        assert presets.snapshot_delta("facebook", 0.5) == 130
        assert presets.snapshot_delta("facebook", 0.001) == 10  # floor

    def test_density_ordering(self, small_facebook, small_youtube):
        """Renren > Facebook > YouTube in average degree (Fig. 2)."""
        renren = presets.renren_like(scale=0.25, seed=7)
        fb = Snapshot(small_facebook, small_facebook.num_edges)
        yt = Snapshot(small_youtube, small_youtube.num_edges)
        rr = Snapshot(renren, renren.num_edges)
        assert (
            stats.average_degree(rr)
            > stats.average_degree(fb)
            > stats.average_degree(yt)
        )

    def test_scale_changes_size(self):
        small = presets.facebook_like(scale=0.1, seed=0)
        smaller = presets.facebook_like(scale=0.05, seed=0)
        assert small.num_edges > smaller.num_edges


class TestEngineInternals:
    def test_newcomer_queue_drains(self):
        engine = GrowthEngine(tiny_config(), seed=0)
        engine.run()
        # Most scheduled nodes should have been admitted by the end.
        assert engine._next_node_id > 30

    def test_creator_pool_populated(self):
        config = tiny_config(
            creator_fraction=0.2, creator_prob=0.4, triadic_prob=0.2
        )
        engine = GrowthEngine(config, seed=0)
        engine.run()
        assert engine._creators
        assert engine._creator_urn
