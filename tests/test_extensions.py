"""Tests for the extension modules (weighted metrics, incremental updates)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.weighted import (
    WeightedAdamicAdar,
    WeightedCommonNeighbors,
    WeightedResourceAllocation,
    synthesize_weights,
    weight_matrix,
)
from repro.graph.delta import IncrementalNeighborhood
from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric
from repro.metrics.candidates import two_hop_pairs
from tests.conftest import build_trace
from tests.test_properties import edge_streams


class TestSynthesizeWeights:
    def test_positive_weight_per_edge(self, facebook_snapshots):
        s = facebook_snapshots[0]
        weights = synthesize_weights(s, seed=0)
        assert set(weights) == set(s.edges())
        assert all(w > 0 for w in weights.values())

    def test_embedded_edges_weigh_more(self, facebook_snapshots):
        """On average, high-CN edges get higher weight (tie strength)."""
        s = facebook_snapshots[-1]
        weights = synthesize_weights(s, seed=0, noise=0.01)
        from repro.metrics.base import two_hop_matrix

        a2 = two_hop_matrix(s)
        pos = s.node_pos
        embedded, loose = [], []
        for (u, v), w in weights.items():
            cn = a2[pos[u], pos[v]]
            (embedded if cn >= 5 else loose).append(w)
        if embedded and loose:
            assert np.mean(embedded) > np.mean(loose)

    def test_deterministic(self, facebook_snapshots):
        s = facebook_snapshots[0]
        assert synthesize_weights(s, seed=3) == synthesize_weights(s, seed=3)


class TestWeightMatrix:
    def test_symmetric_and_alpha(self, tiny_snapshot):
        weights = {pair: 2.0 for pair in tiny_snapshot.edges()}
        m = weight_matrix(tiny_snapshot, weights, alpha=2.0)
        assert (m != m.T).nnz == 0
        assert m.max() == pytest.approx(4.0)

    def test_rejects_non_edges(self, tiny_snapshot):
        with pytest.raises(ValueError, match="non-edge"):
            weight_matrix(tiny_snapshot, {(0, 5): 1.0}, alpha=1.0)

    def test_rejects_nonpositive(self, tiny_snapshot):
        weights = {pair: 1.0 for pair in tiny_snapshot.edges()}
        weights[next(iter(weights))] = 0.0
        with pytest.raises(ValueError, match="positive"):
            weight_matrix(tiny_snapshot, weights, alpha=1.0)


class TestWeightedMetrics:
    def test_alpha_zero_matches_unweighted_doubled(self, facebook_snapshots):
        """With alpha = 0, WCN = 2 * CN regardless of the weights."""
        s = facebook_snapshots[0]
        weights = synthesize_weights(s, seed=0)
        pairs = two_hop_pairs(s)[:200]
        wcn = WeightedCommonNeighbors(weights, alpha=0.0).fit(s).score(pairs)
        cn = get_metric("CN").fit(s).score(pairs)
        assert wcn == pytest.approx(2.0 * cn)

    def test_uniform_weights_scale_cleanly(self, tiny_snapshot):
        weights = {pair: 3.0 for pair in tiny_snapshot.edges()}
        pairs = two_hop_pairs(tiny_snapshot)
        wcn = WeightedCommonNeighbors(weights, alpha=1.0).fit(tiny_snapshot).score(pairs)
        cn = get_metric("CN").fit(tiny_snapshot).score(pairs)
        assert wcn == pytest.approx(6.0 * cn)  # w^1 + w^1 = 6 per z

    def test_hand_computed_wcn(self, triangle_plus_trace):
        s = Snapshot(triangle_plus_trace, triangle_plus_trace.num_edges)
        weights = {(0, 1): 1.0, (1, 2): 2.0, (0, 2): 3.0, (2, 3): 4.0}
        # Pair (0, 3): common neighbour 2; w(0,2)=3, w(2,3)=4 -> 7.
        score = WeightedCommonNeighbors(weights, alpha=1.0).fit(s).score(
            np.asarray([[0, 3]])
        )
        assert score[0] == pytest.approx(7.0)

    def test_wra_normalises_by_strength(self, triangle_plus_trace):
        s = Snapshot(triangle_plus_trace, triangle_plus_trace.num_edges)
        weights = {(0, 1): 1.0, (1, 2): 2.0, (0, 2): 3.0, (2, 3): 4.0}
        # s(2) = 2 + 3 + 4 = 9; WRA(0,3) = (3 + 4) / 9.
        score = WeightedResourceAllocation(weights, alpha=1.0).fit(s).score(
            np.asarray([[0, 3]])
        )
        assert score[0] == pytest.approx(7.0 / 9.0)

    def test_waa_uses_log_strength(self, triangle_plus_trace):
        s = Snapshot(triangle_plus_trace, triangle_plus_trace.num_edges)
        weights = {(0, 1): 1.0, (1, 2): 2.0, (0, 2): 3.0, (2, 3): 4.0}
        score = WeightedAdamicAdar(weights, alpha=1.0).fit(s).score(
            np.asarray([[0, 3]])
        )
        assert score[0] == pytest.approx(7.0 / np.log1p(9.0))

    def test_weighted_metrics_rank_similarly_to_unweighted(self, facebook_snapshots):
        from scipy.stats import spearmanr

        s = facebook_snapshots[-1]
        weights = synthesize_weights(s, seed=0)
        pairs = two_hop_pairs(s)[:1500]
        wra = WeightedResourceAllocation(weights, alpha=1.0).fit(s).score(pairs)
        ra = get_metric("RA").fit(s).score(pairs)
        assert spearmanr(wra, ra).statistic > 0.5


class TestIncrementalShim:
    def test_legacy_import_path_warns_and_reexports(self):
        """repro.extensions.incremental is a deprecation shim now."""
        import importlib
        import warnings

        with warnings.catch_warnings():
            # the first import may be the one that triggers the warning;
            # the reload below asserts it deterministically
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.extensions.incremental as shim

        with pytest.warns(DeprecationWarning, match="repro.graph.delta"):
            shim = importlib.reload(shim)
        assert shim.IncrementalNeighborhood is IncrementalNeighborhood

    def test_package_surface_does_not_warn(self, recwarn):
        """Importing the extensions package itself must stay silent."""
        import importlib

        import repro.extensions

        importlib.reload(repro.extensions)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert repro.extensions.IncrementalNeighborhood is IncrementalNeighborhood


class TestIncrementalNeighborhood:
    def test_matches_batch_on_tiny_trace(self, tiny_trace, tiny_snapshot):
        inc = IncrementalNeighborhood()
        inc.extend((u, v) for u, v, _ in tiny_trace.edges())
        batch_pairs = {tuple(p) for p in two_hop_pairs(tiny_snapshot)}
        assert {tuple(p) for p in inc.two_hop_pairs()} == batch_pairs
        arr = np.asarray(sorted(batch_pairs), dtype=np.int64)
        cn_batch = get_metric("CN").fit(tiny_snapshot).score(arr)
        assert np.array_equal(inc.cn_scores(arr), cn_batch)

    @given(edge_streams(max_nodes=10, max_edges=30))
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_on_random_streams(self, stream):
        from repro.graph.dyngraph import TemporalGraph

        trace = TemporalGraph.from_stream(stream)
        snapshot = Snapshot(trace, trace.num_edges)
        inc = IncrementalNeighborhood()
        inc.extend((u, v) for u, v, _ in trace.edges())
        batch = {tuple(p) for p in two_hop_pairs(snapshot)}
        assert {tuple(p) for p in inc.two_hop_pairs()} == batch
        if batch:
            arr = np.asarray(sorted(batch), dtype=np.int64)
            cn_batch = get_metric("CN").fit(snapshot).score(arr)
            assert np.array_equal(inc.cn_scores(arr), cn_batch)

    def test_duplicate_edge_rejected(self):
        inc = IncrementalNeighborhood()
        assert inc.add_edge(0, 1)
        assert not inc.add_edge(1, 0)
        assert inc.num_edges == 1

    def test_extend_returns_inserted_count(self):
        inc = IncrementalNeighborhood()
        # 4 events, one a duplicate (orientation-insensitive): 3 inserted.
        assert inc.extend([(0, 1), (1, 2), (0, 1), (2, 0)]) == 3
        assert inc.num_edges == 3
        # A fully duplicate stream inserts nothing.
        assert inc.extend([(1, 0), (2, 1)]) == 0
        assert inc.num_edges == 3

    def test_extend_raises_on_self_loop_mid_stream(self):
        inc = IncrementalNeighborhood()
        with pytest.raises(ValueError, match="self-loop"):
            inc.extend([(0, 1), (2, 2), (1, 3)])
        # Events before the bad one were applied; the rest were not.
        assert inc.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            IncrementalNeighborhood().add_edge(2, 2)

    def test_edge_removes_candidate(self):
        inc = IncrementalNeighborhood()
        inc.extend([(0, 1), (1, 2)])
        assert inc.common_neighbors(0, 2) == 1
        inc.add_edge(0, 2)
        with pytest.raises(ValueError, match="edge"):
            inc.common_neighbors(0, 2)

    def test_top_candidates(self):
        inc = IncrementalNeighborhood()
        # Star around 0 plus an extra wedge 1-9, 2-9.
        inc.extend([(0, i) for i in range(1, 5)])
        inc.extend([(1, 9), (2, 9)])
        top = inc.top_candidates(2)
        # (1,2) closes through {0, 9} and (0,9) through {1, 2}: both count 2.
        assert {pair for pair, _ in top} == {(0, 9), (1, 2)}
        assert all(count == 2 for _, count in top)

    def test_top_candidates_validation(self):
        with pytest.raises(ValueError):
            IncrementalNeighborhood().top_candidates(-1)
