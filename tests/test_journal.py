"""Tests for the cell journal: durable resume that is provably exact."""

from __future__ import annotations

import json

import pytest

from repro.eval.journal import (
    CellJournal,
    JournalCorruptError,
    JournalMismatchError,
    spec_fingerprint,
)
from repro.eval.runner import CellResult, ExperimentSpec, run_experiment


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="journal", dataset="facebook", scale=0.1, generation_seed=3,
        metrics=("CN", "PA"), repeats=2, max_steps=2,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def journal_lines(path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestFingerprint:
    def test_stable_for_identical_specs(self):
        assert spec_fingerprint(small_spec()) == spec_fingerprint(small_spec())

    def test_ignores_n_jobs(self):
        """Scheduling is not science: an 8-worker journal resumes serially."""
        assert spec_fingerprint(small_spec(n_jobs=1)) == spec_fingerprint(
            small_spec(n_jobs=8)
        )

    @pytest.mark.parametrize(
        "change",
        [dict(metrics=("CN",)), dict(dataset="youtube"), dict(generation_seed=4),
         dict(repeats=1), dict(scale=0.15), dict(with_filter=True)],
    )
    def test_sensitive_to_scientific_fields(self, change):
        assert spec_fingerprint(small_spec(**change)) != spec_fingerprint(small_spec())


class TestCellJournalFile:
    def make_result(self, metric="CN", step=0, seed=0) -> CellResult:
        return CellResult(
            metric=metric, step=step, seed=seed, ratio=1.5, absolute=0.1,
            filtered_ratio=None, wall_seconds=0.01, cache_hits=2, cache_misses=1,
        )

    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            assert len(journal) == 0
        records = journal_lines(path)
        assert records[0]["kind"] == "header"
        assert records[0]["fingerprint"] == spec_fingerprint(small_spec())

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            journal.record(self.make_result("CN", 0, 0))
            journal.record(self.make_result("PA", 1, 1))
        reloaded = CellJournal(path, small_spec())
        assert set(reloaded.completed) == {("CN", 0, 0), ("PA", 1, 1)}
        assert reloaded.completed[("CN", 0, 0)] == self.make_result("CN", 0, 0)
        reloaded.close()

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            journal.record(self.make_result())
            journal.record(self.make_result())
        assert len(journal_lines(path)) == 2  # header + one cell

    def test_mismatched_spec_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CellJournal(path, small_spec()).close()
        with pytest.raises(JournalMismatchError, match="different spec"):
            CellJournal(path, small_spec(metrics=("RA",)))

    def test_truncated_final_line_tolerated(self, tmp_path):
        """A torn trailing write is exactly what a crash leaves behind."""
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            journal.record(self.make_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "cell", "metric": "PA", "st')  # torn write
        reloaded = CellJournal(path, small_spec())
        assert set(reloaded.completed) == {("CN", 0, 0)}
        reloaded.close()

    def test_midfile_corruption_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            journal.record(self.make_result())
        text = path.read_text().splitlines()
        text.insert(1, "NOT JSON")
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(JournalCorruptError, match="not valid JSON"):
            CellJournal(path, small_spec())

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "cell", "metric": "CN", "step": 0, "seed": 0}\n')
        with pytest.raises(JournalCorruptError, match="header"):
            CellJournal(path, small_spec())

    def test_unknown_record_kinds_skipped(self, tmp_path):
        """Forward compatibility: newer writers may add record kinds."""
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            journal.record(self.make_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "checkpoint", "note": "from the future"}\n')
        reloaded = CellJournal(path, small_spec())
        assert len(reloaded) == 1
        reloaded.close()

    def test_duplicate_lines_first_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CellJournal(path, small_spec()) as journal:
            journal.record(self.make_result())
        lines = path.read_text()
        path.write_text(lines + lines.splitlines()[1] + "\n")
        reloaded = CellJournal(path, small_spec())
        assert len(reloaded) == 1
        reloaded.close()


class TestRunExperimentJournal:
    def test_journaled_run_matches_clean_run(self, tmp_path):
        spec = small_spec()
        clean = run_experiment(spec)
        journaled = run_experiment(spec, journal=tmp_path / "j.jsonl")
        assert journaled.to_json() == clean.to_json()
        assert journaled.timing.journal_cells == 0
        assert journaled.timing.cells == 8

    def test_complete_journal_resumes_without_executing(self, tmp_path):
        """All cells journaled -> zero executed; the empty-max() guard."""
        spec = small_spec()
        path = tmp_path / "j.jsonl"
        first = run_experiment(spec, journal=path)
        second = run_experiment(spec, journal=path)
        assert second.to_json() == first.to_json()
        assert second.timing.cells == 0
        assert second.timing.journal_cells == 8
        assert second.timing.max_cell_seconds == 0.0

    def test_partial_journal_executes_only_missing(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "j.jsonl"
        clean = run_experiment(spec, journal=path)
        kept = 3
        lines = path.read_text().splitlines()
        (tmp_path / "partial.jsonl").write_text(
            "\n".join(lines[: 1 + kept]) + "\n"
        )
        resumed = run_experiment(spec, journal=tmp_path / "partial.jsonl")
        assert resumed.to_json() == clean.to_json()
        assert resumed.timing.journal_cells == kept
        assert resumed.timing.cells == 8 - kept

    def test_open_journal_instance_accepted(self, tmp_path):
        spec = small_spec(metrics=("CN",), max_steps=1)
        with CellJournal(tmp_path / "j.jsonl", spec) as journal:
            result = run_experiment(spec, journal=journal)
            assert len(journal) == result.timing.cells == 2
