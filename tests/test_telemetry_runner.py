"""Integration tests: telemetry woven through ingest and the runner.

The contract under test is two-sided: with telemetry *on*, the recorded
trace must describe the run faithfully (phases, per-cell spans, worker
spans merged under driver-side cell spans, counters equal to the
``RunTiming`` / ``IngestReport`` the run itself printed); and in every
mode, the *scientific* output must be byte-for-byte untouched — the
canonical result JSON, the journal lines, and the parallel-parity
guarantee are identical whether telemetry ran or not.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.eval.journal import CellJournal
from repro.eval.runner import ExperimentSpec, run_experiment
from repro.ingest import IngestPolicy, load_trace
from repro.telemetry import read_trace

SPEC = ExperimentSpec(
    name="telemetry-it",
    dataset="facebook",
    scale=0.1,
    generation_seed=1,
    metrics=("CN", "PA"),
    repeats=2,
    max_steps=2,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def _run_with_trace(tmp_path, n_jobs, name="it"):
    trace_path = tmp_path / f"{name}.trace.jsonl"
    telemetry.configure(trace_path, name=name)
    try:
        result = run_experiment(SPEC, n_jobs=n_jobs)
    finally:
        telemetry.shutdown()
    return result, read_trace(trace_path)


# ---------------------------------------------------------------------------
# Trace structure
# ---------------------------------------------------------------------------
class TestTraceStructure:
    def test_serial_run_has_the_three_phases(self, tmp_path):
        result, trace = _run_with_trace(tmp_path, n_jobs=1)
        (root,) = trace.roots
        assert root["name"] == "run"
        assert root["attrs"]["name"] == "telemetry-it"
        phases = [c["name"] for c in trace.children[root["id"]]]
        assert phases == ["plan", "execute", "reduce"]
        execute = next(
            c for c in trace.children[root["id"]] if c["name"] == "execute"
        )
        assert execute["attrs"]["engine"] == "serial"
        # every cell executed inside the execute span
        cell_spans = [
            s for s in trace.spans
            if s["name"] == "cell.execute" and s["parent"] == execute["id"]
        ]
        assert len(cell_spans) == result.timing.cells

    def test_phase_times_nest_inside_the_root(self, tmp_path):
        _, trace = _run_with_trace(tmp_path, n_jobs=1)
        (root,) = trace.roots
        for child in trace.children[root["id"]]:
            assert root["start"] <= child["start"] <= child["end"] <= root["end"]

    def test_run_counters_match_run_timing(self, tmp_path):
        result, trace = _run_with_trace(tmp_path, n_jobs=1)
        timing = result.timing
        assert trace.counter_value("cells.executed") == timing.cells
        assert trace.counter_value("cells.completed") == timing.cells
        assert trace.counter_value("cells.retries") == timing.retries
        assert trace.counter_value("pool.rebuilds") == timing.pool_rebuilds
        assert trace.counter_value("cells.journal_restored") == 0

    def test_parallel_run_merges_worker_spans(self, tmp_path):
        result, trace = _run_with_trace(tmp_path, n_jobs=2, name="pool")
        (root,) = trace.roots
        execute = next(
            c for c in trace.children[root["id"]] if c["name"] == "execute"
        )
        assert execute["attrs"]["engine"] == "pool"
        # driver-side retroactive cell spans hang off execute...
        cell_spans = [
            s for s in trace.spans
            if s["name"] == "cell" and s["parent"] == execute["id"]
        ]
        assert len(cell_spans) == result.timing.cells
        # ...and every worker span is namespaced and parented inside one.
        worker_spans = [s for s in trace.spans if s["id"].startswith("w")]
        worker_executes = [s for s in worker_spans if s["name"] == "cell.execute"]
        assert len(worker_executes) == result.timing.cells
        cell_ids = {s["id"] for s in cell_spans}
        for span in worker_executes:
            assert span["parent"] in cell_ids
        # no orphans anywhere: every parent resolves or is a root
        for span in trace.spans:
            assert span["parent"] is None or span["parent"] in trace.by_id
        # worker metric deltas merged additively into the driver registry
        assert trace.counter_value("cells.completed") == result.timing.cells

    def test_parallel_cell_attrs_carry_execution_metadata(self, tmp_path):
        _, trace = _run_with_trace(tmp_path, n_jobs=2, name="attrs")
        cells = [s for s in trace.spans if s["name"] == "cell"]
        for span in cells:
            assert {"metric", "step", "seed", "attempt", "engine"} <= set(
                span["attrs"]
            )
            assert span["attrs"]["engine"] == "pool"


# ---------------------------------------------------------------------------
# Determinism: telemetry must never touch scientific output
# ---------------------------------------------------------------------------
class TestResultPurity:
    def test_canonical_json_identical_with_and_without_telemetry(self, tmp_path):
        """The satellite acceptance test: canonical ExperimentResult JSON is
        byte-identical whether telemetry/timing were recorded or not."""
        plain = run_experiment(SPEC, n_jobs=1)
        with_tel, _ = _run_with_trace(tmp_path, n_jobs=1)
        with_tel_pool, _ = _run_with_trace(tmp_path, n_jobs=2, name="p")
        assert with_tel.to_json() == plain.to_json()
        assert with_tel_pool.to_json() == plain.to_json()

    def test_canonical_json_excludes_timing_block(self):
        result = run_experiment(SPEC, n_jobs=1)
        assert result.timing is not None
        canonical = result.to_json()
        stripped = json.loads(canonical)
        assert set(stripped) == {"spec", "num_snapshots", "steps_evaluated", "series"}
        result.timing = None
        assert result.to_json() == canonical
        # include_timing is the explicit opt-in, not the default
        result2 = run_experiment(SPEC, n_jobs=1)
        assert "timing" in json.loads(result2.to_json(include_timing=True))

    def test_parallel_parity_holds_with_telemetry_enabled(self, tmp_path):
        serial = run_experiment(SPEC, n_jobs=1)
        parallel, _ = _run_with_trace(tmp_path, n_jobs=2, name="parity")
        assert parallel.to_json() == serial.to_json()

    def test_journal_lines_carry_no_telemetry(self, tmp_path):
        journal_path = tmp_path / "cells.jsonl"
        telemetry.configure(tmp_path / "j.trace.jsonl")
        try:
            run_experiment(SPEC, n_jobs=2, journal=journal_path)
        finally:
            telemetry.shutdown()
        lines = [
            json.loads(l) for l in journal_path.read_text().splitlines()
        ]
        cells = [l for l in lines if l["kind"] == "cell"]
        assert cells
        for line in cells:
            assert "telemetry" not in line

    def test_journal_resume_is_byte_identical_under_telemetry(self, tmp_path):
        journal_path = tmp_path / "resume.jsonl"
        clean = run_experiment(SPEC, n_jobs=1)
        # first run fills the journal with telemetry on
        telemetry.configure(tmp_path / "r1.jsonl")
        try:
            run_experiment(SPEC, n_jobs=1, journal=journal_path)
        finally:
            telemetry.shutdown()
        # resumed run restores every cell; counters reflect the restore
        telemetry.configure(tmp_path / "r2.jsonl")
        try:
            resumed = run_experiment(SPEC, n_jobs=1, journal=journal_path)
        finally:
            telemetry.shutdown()
        assert resumed.to_json() == clean.to_json()
        trace = read_trace(tmp_path / "r2.jsonl")
        with CellJournal(journal_path, SPEC) as journal:
            assert trace.counter_value("cells.journal_restored") == len(journal)
        assert trace.counter_value("cells.executed") == 0


# ---------------------------------------------------------------------------
# Ingest counters mirror the IngestReport
# ---------------------------------------------------------------------------
class TestIngestCounters:
    def test_counters_equal_report_on_messy_file(self, tmp_path):
        messy = tmp_path / "messy.txt"
        messy.write_text(
            "# repro-trace v2\n"
            "0 1 1.0\n"
            "2 2 2.0\n"        # self loop
            "3 4 x.y\n"        # unparseable time
            "4 5 3.0\n"
            "5 6 2.5\n"        # out of order
            "garbage\n"        # wrong arity
            "6 7 4.0\n",
            encoding="utf-8",
        )
        telemetry.configure(tmp_path / "ingest.trace.jsonl")
        try:
            graph = load_trace(messy, policy=IngestPolicy.repair())
        finally:
            telemetry.shutdown()
        report = graph.ingest_report
        trace = read_trace(tmp_path / "ingest.trace.jsonl")
        assert trace.counter_value("ingest.lines_total") == report.lines_total
        assert trace.counter_value("ingest.events_parsed") == report.events_parsed
        assert (
            trace.counter_value("ingest.events_accepted") == report.events_accepted
        )
        assert report.total_flagged > 0  # the file really was messy
        for error_class, count in report.flagged.items():
            assert (
                trace.counter_value(
                    "ingest.flagged_total", **{"class": error_class}
                )
                == count
            )
        for error_class, count in report.repaired.items():
            assert (
                trace.counter_value(
                    "ingest.repaired_total", **{"class": error_class}
                )
                == count
            )
        assert trace.counter_value("ingest.flagged_total") == report.total_flagged

    def test_scan_span_records_the_funnel(self, tmp_path):
        clean = tmp_path / "clean.txt"
        clean.write_text("0 1 1.0\n1 2 2.0\n2 3 3.0\n", encoding="utf-8")
        telemetry.configure(tmp_path / "scan.trace.jsonl")
        try:
            load_trace(clean)
        finally:
            telemetry.shutdown()
        trace = read_trace(tmp_path / "scan.trace.jsonl")
        scan = next(s for s in trace.spans if s["name"] == "ingest.scan")
        assert scan["attrs"]["events_parsed"] == 3
        assert scan["attrs"]["events_accepted"] == 3
        children = {c["name"] for c in trace.children.get(scan["id"], [])}
        assert {"ingest.read_columns", "ingest.validate"} <= children
