"""Tests for the cached classification fast-paths."""

import numpy as np
import pytest

from repro.classify import ClassificationPredictor, FeatureExtractor
from repro.classify.sampling import undersample_indices
from repro.metrics.candidates import all_nonedge_pairs


class TestComputeForCandidates:
    def test_matches_direct_compute(self, facebook_snapshots):
        s = facebook_snapshots[0]
        extractor = FeatureExtractor(("CN", "RA", "PA"))
        pairs, features = extractor.compute_for_candidates(s)
        direct = extractor.compute(s, all_nonedge_pairs(s))
        assert np.array_equal(features, direct)
        assert np.array_equal(pairs, all_nonedge_pairs(s))

    def test_cached_identity(self, facebook_snapshots):
        s = facebook_snapshots[0]
        extractor = FeatureExtractor(("CN", "RA"))
        _, a = extractor.compute_for_candidates(s)
        _, b = extractor.compute_for_candidates(s)
        assert a is b

    def test_different_feature_sets_cached_separately(self, facebook_snapshots):
        s = facebook_snapshots[0]
        _, a = FeatureExtractor(("CN",)).compute_for_candidates(s)
        _, b = FeatureExtractor(("CN", "PA")).compute_for_candidates(s)
        assert a.shape[1] == 1
        assert b.shape[1] == 2


class TestUndersampleIndices:
    def test_index_form_matches_pair_form(self):
        from repro.classify.sampling import undersample

        pairs = np.arange(400).reshape(-1, 2)
        labels = np.concatenate([np.ones(10, int), np.zeros(190, int)])
        idx = undersample_indices(labels, theta=1 / 5, rng=3)
        p1, l1 = pairs[idx], labels[idx]
        p2, l2 = undersample(pairs, labels, theta=1 / 5, rng=3)
        assert np.array_equal(p1, p2)
        assert np.array_equal(l1, l2)

    def test_all_positives_kept(self):
        labels = np.concatenate([np.ones(7, int), np.zeros(500, int)])
        idx = undersample_indices(labels, theta=1 / 10, rng=0)
        assert labels[idx].sum() == 7
        assert (labels[idx] == 0).sum() == 70

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            undersample_indices(np.zeros(10, int), theta=1.0)


class TestPredictorCachedPath:
    def test_two_trainings_share_features(self, facebook_snapshots):
        """Training twice on the same view computes features once."""
        g2, g1 = facebook_snapshots[-3], facebook_snapshots[-2]
        a = ClassificationPredictor("NB", theta=1 / 10, seed=0)
        a.train(g2, g1)
        cache_size = len(g2.cache)
        b = ClassificationPredictor("NB", theta=1 / 20, seed=1)
        b.train(g2, g1)
        assert len(g2.cache) == cache_size  # nothing new computed

    def test_filtered_prediction_consistent(self, facebook_snapshots):
        from repro.graph.snapshots import new_edges_between

        g2, g1, g0 = facebook_snapshots[-3:]
        truth = {
            p for p in new_edges_between(g1, g0)
        }
        predictor = ClassificationPredictor("NB", theta=1 / 10, seed=0)
        predictor.train(g2, g1)

        def keep_half(snapshot, pairs):
            return np.arange(len(pairs)) % 2 == 0

        result = predictor.predict_step(g1, truth, rng=0, pair_filter=keep_half)
        assert result.outcome.k == len(truth)
