"""End-to-end integration tests spanning the whole pipeline.

Each test walks a miniature version of one of the paper's experiments:
generate a trace, sequence it, run predictors, compare configurations.
These are the repository's smoke alarms — if a refactor breaks the way the
pieces compose, these fail even when every unit test still passes.
"""

import numpy as np
import pytest

from repro import LinkPredictor, datasets
from repro.classify import ClassificationPredictor, sampled_instance
from repro.eval.correlation import pearson, two_hop_edge_ratio
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.eval.meta import SnapshotRecord, fit_choice_tree
from repro.graph.snapshots import snapshot_sequence
from repro.graph.stats import graph_features
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, TimeSeriesMetric, calibrate_filter


@pytest.fixture(scope="module")
def fb_trace():
    return datasets.facebook_like(scale=0.4, seed=13)


@pytest.fixture(scope="module")
def fb_snaps(fb_trace):
    return snapshot_sequence(
        fb_trace, max(40, fb_trace.num_edges // 12), start=fb_trace.num_edges // 3
    )


class TestMetricPipeline:
    def test_all_metrics_beat_random_on_friendship_graph(self, fb_snaps):
        """Mini Figure 5: neighbourhood metrics beat random on average."""
        steps = list(prediction_steps(fb_snaps))
        for name in ("CN", "RA", "BRA", "AA"):
            ratios = [
                evaluate_step(name, prev, truth, rng=0).ratio
                for prev, _, truth in steps
            ]
            assert np.mean(ratios) > 1.0, name

    def test_sp_is_weakest_of_the_locals(self, fb_snaps):
        """Mini Section 4.2: SP must underperform RA."""
        steps = list(prediction_steps(fb_snaps))
        ra = np.mean(
            [evaluate_step("RA", p, t, rng=0).ratio for p, _, t in steps]
        )
        sp = np.mean(
            [evaluate_step("SP", p, t, rng=0).ratio for p, _, t in steps]
        )
        assert ra > sp

    def test_absolute_accuracy_single_digits(self, fb_snaps):
        """Mini Table 4: absolute accuracy stays low (the paper's point)."""
        steps = list(prediction_steps(fb_snaps))
        best = max(
            evaluate_step("BRA", p, t, rng=0).absolute for p, _, t in steps
        )
        assert best < 0.5  # far from solved, exactly as the paper argues


class TestClassifierPipeline:
    def test_train_predict_roundtrip(self, fb_snaps):
        g2, g1, g0 = fb_snaps[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=1.0)
        result = ClassificationPredictor("SVM", theta=1 / 20, seed=0).evaluate_instance(
            inst, rng=0
        )
        assert result.ratio > 1.0

    def test_undersampling_direction(self, fb_snaps):
        """Mini Figure 10: realistic theta >= balanced theta (on average
        over seeds, checked loosely with one seed here)."""
        g2, g1, g0 = fb_snaps[-3:]
        inst = sampled_instance(g2, g1, g0, fraction=1.0)
        balanced = ClassificationPredictor("SVM", theta=1.0, seed=0).evaluate_instance(
            inst, rng=0
        )
        realistic = ClassificationPredictor(
            "SVM", theta=1 / 100, seed=0
        ).evaluate_instance(inst, rng=0)
        # Loose check: realistic sampling shouldn't be much worse.
        assert realistic.ratio >= 0.5 * balanced.ratio


class TestTemporalPipeline:
    def test_filter_calibrate_apply(self, fb_snaps):
        steps = list(prediction_steps(fb_snaps))
        cal_prev, _, cal_truth = steps[-3]
        params = calibrate_filter(
            cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0
        )
        filt = TemporalFilter(params)
        prev, _, truth = steps[-1]
        filtered = evaluate_step("RA", prev, truth, rng=0, pair_filter=filt)
        assert filtered.outcome.k == len(truth)

    def test_time_series_metric_composes_with_filter(self, fb_snaps):
        steps = list(prediction_steps(fb_snaps))
        cal_prev, _, cal_truth = steps[-3]
        filt = TemporalFilter(
            calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
        )
        prev, _, truth = steps[-1]
        ts = TimeSeriesMetric("RA", "ma", points=2)
        result = evaluate_step(ts, prev, truth, rng=0, pair_filter=filt)
        assert result.metric == "RA+MA"


class TestMetaPipeline:
    def test_choice_tree_from_real_runs(self, fb_snaps):
        """Build Section 4.3 records from actual evaluation output."""
        steps = list(prediction_steps(fb_snaps))[-3:]
        records = []
        for prev, _, truth in steps:
            ratios = {
                name: evaluate_step(name, prev, truth, rng=0).ratio
                for name in ("RA", "PA")
            }
            records.append(
                SnapshotRecord(
                    network="fb",
                    features=graph_features(prev, clustering_sample=100, path_sample=20),
                    ratios=ratios,
                )
            )
        tree, class_names = fit_choice_tree(records, max_depth=2)
        assert set(class_names) <= {"RA", "PA"}

    def test_lambda2_is_computable_over_sequence(self, fb_snaps):
        steps = list(prediction_steps(fb_snaps))
        lam = [two_hop_edge_ratio(p, t) for p, _, t in steps]
        ratios = [evaluate_step("RA", p, t, rng=0).ratio for p, _, t in steps]
        # Correlation is defined (no constant series) and finite.
        assert np.isfinite(pearson(lam, ratios))


class TestFacadeEndToEnd:
    def test_quickstart_flow(self):
        trace = datasets.youtube_like(scale=0.2, seed=3)
        predictor = LinkPredictor(metric="Rescal", seed=0)
        result = predictor.evaluate_sequence(trace, delta=trace.num_edges // 8)
        assert len(result.steps) >= 1
        assert "Rescal" in result.summary()
