"""Unit tests for repro.graph.dyngraph.TemporalGraph."""

import pytest

from repro.graph.dyngraph import TemporalGraph


class TestConstruction:
    def test_empty_graph(self):
        g = TemporalGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.start_time == 0.0
        assert g.end_time == 0.0

    def test_add_edge_creates_nodes(self):
        g = TemporalGraph()
        assert g.add_edge(1, 2, 0.5)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(2, 1)

    def test_duplicate_edge_ignored(self):
        g = TemporalGraph()
        g.add_edge(1, 2, 0.0)
        assert not g.add_edge(2, 1, 1.0)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = TemporalGraph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(3, 3, 0.0)

    def test_out_of_order_timestamp_rejected(self):
        g = TemporalGraph()
        g.add_edge(0, 1, 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            g.add_edge(1, 2, 4.0)

    def test_equal_timestamps_allowed(self):
        g = TemporalGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        assert g.num_edges == 2

    def test_add_node_idempotent(self):
        g = TemporalGraph()
        g.add_node(5, 1.0)
        g.add_node(5, 9.0)
        assert g.node_arrival_time(5) == 1.0

    def test_from_stream(self, tiny_trace):
        assert tiny_trace.num_nodes == 8
        assert tiny_trace.num_edges == 12


class TestQueries:
    def test_neighbors(self, tiny_trace):
        assert tiny_trace.neighbors(0) == {1, 2, 3, 7}

    def test_degree(self, tiny_trace):
        assert tiny_trace.degree(0) == 4
        assert tiny_trace.degree(7) == 2

    def test_contains(self, tiny_trace):
        assert 0 in tiny_trace
        assert 99 not in tiny_trace

    def test_edge_time_lookup(self, tiny_trace):
        assert tiny_trace.edge_time(2, 0) == 2.0
        assert tiny_trace.edge_time(6, 7) == 10.0

    def test_edge_time_missing_raises(self, tiny_trace):
        with pytest.raises(KeyError):
            tiny_trace.edge_time(0, 6)

    def test_start_and_end_time(self, tiny_trace):
        assert tiny_trace.start_time == 0.0
        assert tiny_trace.end_time == 11.0

    def test_edges_are_in_order(self, tiny_trace):
        times = [t for _, _, t in tiny_trace.edges()]
        assert times == sorted(times)


class TestTemporalQueries:
    def test_node_edge_times_sorted(self, tiny_trace):
        assert tiny_trace.node_edge_times(0) == [0.0, 2.0, 5.0, 11.0]

    def test_idle_time_after_last_edge(self, tiny_trace):
        # Node 3's last edge was at t=5.
        assert tiny_trace.idle_time(3, 11.0) == 6.0

    def test_idle_time_mid_history(self, tiny_trace):
        # As of t=4.5, node 0's last edge was at t=2.
        assert tiny_trace.idle_time(0, 4.5) == 2.5

    def test_idle_time_never_active_uses_arrival(self):
        g = TemporalGraph()
        g.add_node(9, 2.0)
        assert g.idle_time(9, 7.0) == 5.0

    def test_recent_edge_count_window(self, tiny_trace):
        # Node 0 edges at 0, 2, 5, 11; window (6, 11] catches only t=11.
        assert tiny_trace.recent_edge_count(0, now=11.0, window=5.0) == 1

    def test_recent_edge_count_full_history(self, tiny_trace):
        assert tiny_trace.recent_edge_count(0, now=11.0, window=100.0) == 4

    def test_recent_edge_count_respects_now(self, tiny_trace):
        assert tiny_trace.recent_edge_count(0, now=3.0, window=100.0) == 2


class TestSlicing:
    def test_edge_index_at_time(self, tiny_trace):
        assert tiny_trace.edge_index_at_time(2.0) == 3
        assert tiny_trace.edge_index_at_time(1.5) == 2
        assert tiny_trace.edge_index_at_time(100.0) == 12

    def test_prefix(self, tiny_trace):
        p = tiny_trace.prefix(3)
        assert p.num_edges == 3
        assert p.num_nodes == 3  # nodes 0, 1, 2

    def test_prefix_bounds(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.prefix(13)
        with pytest.raises(ValueError):
            tiny_trace.prefix(-1)

    def test_edge_slice(self, tiny_trace):
        events = tiny_trace.edge_slice(2, 4)
        assert events == [(0, 2, 2.0), (2, 3, 3.0)]

    def test_copy_preserves_structure(self, tiny_trace):
        clone = tiny_trace.copy()
        assert clone.num_nodes == tiny_trace.num_nodes
        assert clone.num_edges == tiny_trace.num_edges
        clone.add_edge(0, 6, 12.0)
        assert not tiny_trace.has_edge(0, 6)

    def test_copy_preserves_isolated_nodes(self):
        g = TemporalGraph()
        g.add_edge(0, 1, 0.0)
        g.add_node(9, 0.5)
        clone = g.copy()
        assert clone.has_node(9)
        assert clone.node_arrival_time(9) == 0.5
