"""Serve-vs-batch parity: served scores are bit-for-bit the batch scores.

The serving layer's core correctness claim: a score returned by
``GET /predict`` is byte-identical to what the offline pipeline computes
for the same pair on the same prefix — through the delta engine's
materialised snapshot, the request path, JSON serialisation, and the
wire.  The batch reference here is computed the way ``run_experiment``
scores a snapshot: a fresh :class:`Snapshot` over a rebuilt prefix
trace, the registered metric's ``fit``/``score`` over its candidate
enumeration.  Comparison is on IEEE-754 bit patterns (``struct.pack``),
not approximate equality, and holds with telemetry enabled or disabled.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import telemetry
from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric
from repro.metrics.candidates import candidate_pairs
from repro.serve import ServeConfig, ServerHarness

METRICS = ["CN", "AA", "RA", "PA", "JC"]


def batch_scores(trace, cutoff: int, metric_name: str) -> dict:
    """Pair -> float64 score, exactly as the batch pipeline computes it."""
    snapshot = Snapshot(trace.prefix(cutoff), cutoff)
    metric = get_metric(metric_name)
    pairs = candidate_pairs(snapshot, metric.candidate_strategy)
    metric.fit(snapshot)
    scores = np.asarray(metric.score(pairs), dtype=np.float64)
    return {
        (int(min(u, v)), int(max(u, v))): float(s)
        for (u, v), s in zip(pairs.tolist(), scores.tolist())
    }


def expected_topk(reference: dict, u: int, k: int):
    """Deterministic top-k from the batch scores: score desc, id asc."""
    mine = [
        (pair[1] if pair[0] == u else pair[0], score)
        for pair, score in reference.items()
        if u in pair
    ]
    mine.sort(key=lambda entry: (-entry[1], entry[0]))
    return mine[:k]


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def assert_parity(harness, trace, cutoff: int, nodes, k: int = 8) -> int:
    """Assert bitwise score parity for every metric and probe node."""
    compared = 0
    for metric_name in METRICS:
        reference = batch_scores(trace, cutoff, metric_name)
        for u in nodes:
            response = harness.request(
                "GET", f"/predict?u={u}&k={k}&metric={metric_name}"
            )
            assert response.status == 200, response.body
            payload = response.json()
            assert payload["snapshot"]["edges"] == cutoff
            expected = expected_topk(reference, u, k)
            got = [(p["v"], p["score"]) for p in payload["predictions"]]
            assert [v for v, _ in got] == [v for v, _ in expected]
            for (_, served), (_, batch) in zip(got, expected):
                assert bits(served) == bits(batch)
                compared += 1
    return compared


def probe_nodes(trace, cutoff: int, count: int = 4):
    """A few well-connected nodes present in the prefix."""
    u, v, _t = trace.columns()
    prefix_nodes = np.unique(np.concatenate([u[:cutoff], v[:cutoff]]))
    ids, freq = np.unique(
        np.concatenate([u[:cutoff], v[:cutoff]]), return_counts=True
    )
    order = np.argsort(-freq, kind="stable")
    chosen = [int(ids[i]) for i in order[:count]]
    assert all(node in prefix_nodes for node in chosen)
    return chosen


class TestServeBatchParity:
    def test_scores_bitwise_equal_to_batch_path(self, small_facebook):
        trace = small_facebook
        cutoff = trace.num_edges // 2
        nodes = probe_nodes(trace, cutoff)
        with ServerHarness(
            trace.prefix(cutoff), ServeConfig(port=0, workers=2)
        ) as harness:
            compared = assert_parity(harness, trace, cutoff, nodes)
        assert compared > 50  # the comparison actually exercised scores

    def test_parity_survives_online_ingest(self, small_facebook):
        """Serving a prefix then POSTing the rest == batch on the full trace."""
        trace = small_facebook
        cutoff = trace.num_edges // 2
        u_col, v_col, t_col = trace.columns()
        lines = "".join(
            f"{int(u_col[i])} {int(v_col[i])} {float(t_col[i])!r}\n"
            for i in range(cutoff, trace.num_edges)
        )
        nodes = probe_nodes(trace, trace.num_edges)
        with ServerHarness(
            trace.prefix(cutoff), ServeConfig(port=0, workers=2)
        ) as harness:
            response = harness.request(
                "POST", "/ingest", body=lines.encode("utf-8")
            )
            assert response.status == 200, response.body
            assert response.json()["applied"] == trace.num_edges - cutoff
            compared = assert_parity(
                harness, trace, trace.num_edges, nodes
            )
        assert compared > 50

    @pytest.mark.parametrize("with_telemetry", [False, True])
    def test_parity_with_and_without_telemetry(
        self, small_facebook, tmp_path, with_telemetry
    ):
        trace = small_facebook
        cutoff = trace.num_edges // 3
        nodes = probe_nodes(trace, cutoff, count=2)
        if with_telemetry:
            telemetry.configure(tmp_path / "serve.trace.jsonl", name="parity")
        try:
            with ServerHarness(
                trace.prefix(cutoff), ServeConfig(port=0, workers=2)
            ) as harness:
                assert_parity(harness, trace, cutoff, nodes, k=5)
                if with_telemetry:
                    metricz = harness.request("GET", "/metricz")
                    assert metricz.status == 200
                    assert b"serve_requests" in metricz.body.replace(b".", b"_")
        finally:
            if with_telemetry:
                telemetry.shutdown()
        if with_telemetry:
            recorded = telemetry.read_trace(tmp_path / "serve.trace.jsonl")
            names = {span["name"] for span in recorded.spans}
            assert "serve.request" in names
