"""Kill-resume parity: an interrupted, journaled run resumes to the
byte-identical canonical JSON of an uninterrupted serial run.

This is the acceptance bar for the fault-tolerance layer (and the
reason it can exist at all): cells are pure functions of the spec and
``reduce_cells`` is order-independent, so "run some cells, die, run the
rest later" is *exactly* equal to a clean run — not approximately.
Interruption is produced three ways: a fault-injected fatal exception
(serial and parallel), a fault-injected worker kill that exhausts the
retry budget, and a real driver SIGINT against the CLI in a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import faults
from repro.eval.faults import FaultPlan
from repro.eval.journal import CellJournal
from repro.eval.retry import CellExecutionError, RetryPolicy, cell_key
from repro.eval.runner import ExperimentSpec, iter_cells, run_experiment

FAST = dict(backoff_base=0.01, backoff_max=0.05)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="resume", dataset="facebook", scale=0.1, generation_seed=3,
        metrics=("CN", "PA"), repeats=2, max_steps=2,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


def interrupt_then_resume(spec, journal_path, fatal_plan, n_jobs, monkeypatch):
    """Run with a fatal fault plan until the run dies, then resume clean."""
    monkeypatch.setenv(faults.ENV_VAR, fatal_plan.to_json())
    with pytest.raises(CellExecutionError):
        run_experiment(
            spec, n_jobs=n_jobs, journal=journal_path,
            retry=RetryPolicy(max_attempts=1, max_pool_rebuilds=0, **FAST),
        )
    monkeypatch.delenv(faults.ENV_VAR)
    faults.clear()
    return run_experiment(spec, n_jobs=n_jobs, journal=journal_path)


class TestKillResumeParity:
    """The acceptance criterion, for n_jobs=1 and n_jobs>1."""

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_fatal_exception_mid_sweep_then_resume(
        self, n_jobs, tmp_path, monkeypatch
    ):
        spec = small_spec()
        clean = run_experiment(spec, n_jobs=1)  # uninterrupted serial run
        cells = list(iter_cells(spec, 2))
        fatal = FaultPlan(errors={cell_key(cells[len(cells) // 2]): 99})
        resumed = interrupt_then_resume(
            spec, tmp_path / "j.jsonl", fatal, n_jobs, monkeypatch
        )
        assert resumed.to_json() == clean.to_json()
        assert resumed.timing.journal_cells > 0  # something survived the crash
        assert resumed.timing.cells > 0  # something was genuinely resumed

    def test_worker_kill_mid_sweep_then_resume(self, tmp_path, monkeypatch):
        """Interruption by actual worker death (BrokenProcessPool path)."""
        spec = small_spec()
        clean = run_experiment(spec, n_jobs=1)
        fatal = FaultPlan(kill={"PA:0:0": 99})
        resumed = interrupt_then_resume(
            spec, tmp_path / "j.jsonl", fatal, 2, monkeypatch
        )
        assert resumed.to_json() == clean.to_json()

    def test_resume_with_different_job_count(self, tmp_path, monkeypatch):
        """A journal written under n_jobs=2 resumes under n_jobs=1."""
        spec = small_spec()
        clean = run_experiment(spec, n_jobs=1)
        fatal = FaultPlan(errors={"PA:1:0": 99})
        monkeypatch.setenv(faults.ENV_VAR, fatal.to_json())
        with pytest.raises(CellExecutionError):
            run_experiment(
                spec, n_jobs=2, journal=tmp_path / "j.jsonl",
                retry=RetryPolicy(max_attempts=1, max_pool_rebuilds=0, **FAST),
            )
        monkeypatch.delenv(faults.ENV_VAR)
        resumed = run_experiment(spec, n_jobs=1, journal=tmp_path / "j.jsonl")
        assert resumed.to_json() == clean.to_json()

    @given(
        seed=st.integers(min_value=0, max_value=3),
        metrics=st.lists(
            st.sampled_from(["CN", "PA", "RA"]), min_size=1, max_size=2, unique=True
        ),
        repeats=st.integers(min_value=1, max_value=2),
        kill_fraction=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=5, deadline=None)
    def test_property_interrupt_anywhere_resumes_exactly(
        self, seed, metrics, repeats, kill_fraction, tmp_path_factory
    ):
        """For random small specs and a random interruption point, resume
        parity holds (serial engine; the parametrized tests cover pools)."""
        spec = small_spec(
            generation_seed=seed, metrics=tuple(metrics), repeats=repeats
        )
        clean = run_experiment(spec, n_jobs=1)
        cells = list(iter_cells(spec, 2))
        fatal_cell = cells[int(kill_fraction * len(cells))]
        journal_path = tmp_path_factory.mktemp("resume") / "j.jsonl"
        faults.install(FaultPlan(errors={cell_key(fatal_cell): 99}))
        with pytest.raises(CellExecutionError):
            run_experiment(
                spec, n_jobs=1, journal=journal_path,
                retry=RetryPolicy(max_attempts=1, **FAST),
            )
        faults.clear()
        resumed = run_experiment(spec, n_jobs=1, journal=journal_path)
        assert resumed.to_json() == clean.to_json()
        # exactly the pre-interruption cells were restored
        assert resumed.timing.journal_cells == cells.index(fatal_cell)


class TestDriverSigintResume:
    """A real Ctrl-C against the CLI, then a real CLI resume."""

    def test_sigint_flushes_journal_and_resume_is_identical(self, tmp_path):
        spec = small_spec()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        journal_path = tmp_path / "journal.jsonl"
        out_path = tmp_path / "result.json"

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = "src" + (os.pathsep + existing if existing else "")
        # slow the third cell down so SIGINT reliably lands mid-sweep
        env[faults.ENV_VAR] = FaultPlan(delays={"CN:1:0": (30.0, 99)}).to_json()

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "experiment",
             "--spec", str(spec_path), "--journal", str(journal_path)],
            cwd="/root/repo", env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal_path.exists() and len(
                    journal_path.read_text().splitlines()
                ) >= 3:  # header + two completed cells
                    break
                time.sleep(0.1)
            else:
                pytest.fail("journal never accumulated cells")
            time.sleep(0.3)  # ensure the driver is inside the slow cell
            proc.send_signal(signal.SIGINT)
            _stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "resume with --journal" in stderr

        env.pop(faults.ENV_VAR)
        resume = subprocess.run(
            [sys.executable, "-m", "repro", "experiment",
             "--spec", str(spec_path), "--journal", str(journal_path),
             "--out", str(out_path)],
            cwd="/root/repo", env=env, capture_output=True, text=True, timeout=120,
        )
        assert resume.returncode == 0, resume.stderr
        clean = run_experiment(spec, n_jobs=1)
        assert out_path.read_text() == clean.to_json() + "\n"

    def test_interrupted_journal_loads_cleanly(self, tmp_path, monkeypatch):
        """Even a journal from a hard-failed run is a valid resume point."""
        spec = small_spec(metrics=("CN",))
        faults.install(FaultPlan(errors={"CN:1:0": 99}))
        with pytest.raises(CellExecutionError):
            run_experiment(
                spec, journal=tmp_path / "j.jsonl",
                retry=RetryPolicy(max_attempts=1, **FAST),
            )
        faults.clear()
        journal = CellJournal(tmp_path / "j.jsonl", spec)
        assert len(journal) == 2  # the two seeds of step 0
        journal.close()
