"""Further property-based tests: transforms, filters, weighted metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.weighted import (
    WeightedCommonNeighbors,
    WeightedResourceAllocation,
)
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.graph.transform import merge, rebase_time, relabel, time_window
from repro.metrics.candidates import two_hop_pairs
from repro.temporal.filters import FilterParams, TemporalFilter
from tests.test_properties import edge_streams


class TestTransformProperties:
    @given(edge_streams(max_nodes=10, max_edges=25), st.floats(0, 50), st.floats(1, 60))
    @settings(max_examples=50, deadline=None)
    def test_window_is_a_subtrace(self, stream, start, width):
        trace = TemporalGraph.from_stream(stream)
        window = time_window(trace, start, start + width)
        original = {(u, v) for u, v, _ in trace.edges()}
        for u, v, t in window.edges():
            assert (u, v) in original
            assert start <= t < start + width

    @given(edge_streams(max_nodes=10, max_edges=25))
    @settings(max_examples=50, deadline=None)
    def test_relabel_preserves_structure(self, stream):
        trace = TemporalGraph.from_stream(stream)
        compact, mapping = relabel(trace)
        assert compact.num_edges == trace.num_edges
        assert compact.num_nodes == trace.num_nodes
        assert sorted(mapping.values()) == list(range(len(mapping)))
        for u, v, t in trace.edges():
            assert compact.has_edge(mapping[u], mapping[v])

    @given(edge_streams(max_nodes=8, max_edges=15), edge_streams(max_nodes=8, max_edges=15))
    @settings(max_examples=40, deadline=None)
    def test_merge_contains_both(self, a_stream, b_stream):
        # Disjoint id spaces so only cross-stream duplicates are impossible.
        a = TemporalGraph.from_stream(a_stream)
        b = TemporalGraph.from_stream([(u + 100, v + 100, t) for u, v, t in b_stream])
        merged = merge([a, b])
        assert merged.num_edges == a.num_edges + b.num_edges
        times = [t for _, _, t in merged.edges()]
        assert times == sorted(times)

    @given(edge_streams(max_nodes=10, max_edges=20))
    @settings(max_examples=40, deadline=None)
    def test_rebase_starts_at_zero(self, stream):
        trace = TemporalGraph.from_stream(stream)
        rebased = rebase_time(trace)
        if rebased.num_edges:
            assert rebased.start_time == pytest.approx(0.0)
            assert rebased.end_time == pytest.approx(
                trace.end_time - trace.start_time
            )


class TestFilterProperties:
    @given(edge_streams(max_nodes=10, max_edges=25), st.floats(0.1, 30), st.floats(0.1, 30))
    @settings(max_examples=40, deadline=None)
    def test_tighter_thresholds_keep_fewer(self, stream, d_act, d_cn):
        trace = TemporalGraph.from_stream(stream)
        snapshot = Snapshot(trace, trace.num_edges)
        pairs = two_hop_pairs(snapshot)
        if len(pairs) == 0:
            return
        loose = TemporalFilter(
            FilterParams(d_act=d_act * 2, d_inact=1e6, window=10, min_new_edges=0, d_cn=d_cn * 2)
        )
        tight = TemporalFilter(
            FilterParams(d_act=d_act, d_inact=1e6, window=10, min_new_edges=0, d_cn=d_cn)
        )
        keep_loose = loose(snapshot, pairs)
        keep_tight = tight(snapshot, pairs)
        # Monotonicity: tightening thresholds can only remove pairs.
        assert not np.any(keep_tight & ~keep_loose)


class TestWeightedMetricProperties:
    @given(edge_streams(max_nodes=9, max_edges=20), st.floats(0.5, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_wra_invariant_under_uniform_weight_scaling(self, stream, scale):
        """WRA at alpha=1 normalises by strength, so w -> c*w cancels."""
        trace = TemporalGraph.from_stream(stream)
        snapshot = Snapshot(trace, trace.num_edges)
        pairs = two_hop_pairs(snapshot)
        if len(pairs) == 0:
            return
        base = {pair: 1.0 + (i % 3) for i, pair in enumerate(sorted(snapshot.edges()))}
        scaled = {pair: scale * w for pair, w in base.items()}
        a = WeightedResourceAllocation(base, alpha=1.0).fit(snapshot).score(pairs)
        snapshot.cache.clear()
        b = WeightedResourceAllocation(scaled, alpha=1.0).fit(snapshot).score(pairs)
        assert a == pytest.approx(b)

    @given(edge_streams(max_nodes=9, max_edges=20), st.floats(0.5, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_wcn_scales_linearly_at_alpha_one(self, stream, scale):
        trace = TemporalGraph.from_stream(stream)
        snapshot = Snapshot(trace, trace.num_edges)
        pairs = two_hop_pairs(snapshot)
        if len(pairs) == 0:
            return
        base = {pair: 2.0 for pair in snapshot.edges()}
        scaled = {pair: scale * w for pair, w in base.items()}
        a = WeightedCommonNeighbors(base, alpha=1.0).fit(snapshot).score(pairs)
        snapshot.cache.clear()
        b = WeightedCommonNeighbors(scaled, alpha=1.0).fit(snapshot).score(pairs)
        assert b == pytest.approx(scale * a)
