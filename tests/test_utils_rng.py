"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9)
        b = children[1].integers(0, 10**9)
        assert a != b

    def test_reproducible(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
