"""Tests for the degree-tail statistics (CCDF, Hill estimator)."""

import numpy as np
import pytest

from repro.graph.snapshots import Snapshot
from repro.graph.stats import degree_ccdf, hill_tail_exponent
from tests.conftest import build_trace


class TestDegreeCcdf:
    def test_starts_at_one_and_decreases(self, tiny_snapshot):
        degrees, ccdf = degree_ccdf(tiny_snapshot)
        assert ccdf[0] == 1.0
        assert (np.diff(ccdf) <= 0).all()

    def test_values_match_manual_count(self, tiny_snapshot):
        degrees, ccdf = degree_ccdf(tiny_snapshot)
        all_deg = tiny_snapshot.degree_array()
        for d, frac in zip(degrees, ccdf):
            assert frac == pytest.approx(np.mean(all_deg >= d))

    def test_max_degree_fraction(self, tiny_snapshot):
        degrees, ccdf = degree_ccdf(tiny_snapshot)
        all_deg = tiny_snapshot.degree_array()
        assert ccdf[-1] == pytest.approx(
            np.sum(all_deg == all_deg.max()) / len(all_deg)
        )


class TestHillEstimator:
    def test_recovers_known_exponent(self):
        """Degrees drawn from a pure Pareto tail recover alpha ~ 2."""
        rng = np.random.default_rng(0)
        alpha = 2.0
        degrees = np.ceil((1 + rng.pareto(alpha, size=4000)) * 3).astype(int)
        # Build a star forest realising those degrees approximately: use a
        # fake snapshot via monkeypatched degree_array for a pure unit test.
        class Fake:
            def degree_array(self):
                return degrees.astype(float)

        estimate = hill_tail_exponent(Fake(), tail_fraction=0.05)
        assert estimate == pytest.approx(alpha, rel=0.35)

    def test_subscription_heavier_than_friendship(self, small_facebook, small_youtube):
        fb = Snapshot(small_facebook, small_facebook.num_edges)
        yt = Snapshot(small_youtube, small_youtube.num_edges)
        # Smaller Hill alpha = heavier tail (supernodes).
        assert hill_tail_exponent(yt, 0.05) < hill_tail_exponent(fb, 0.05)

    def test_validation(self, tiny_snapshot):
        with pytest.raises(ValueError):
            hill_tail_exponent(tiny_snapshot, tail_fraction=0.0)

    def test_flat_tail_is_infinite(self):
        class Fake:
            def degree_array(self):
                return np.full(100, 7.0)

        assert hill_tail_exponent(Fake(), 0.2) == float("inf")
