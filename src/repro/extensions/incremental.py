"""Deprecated import path for incremental candidate maintenance.

The streaming tracker that used to live here has been promoted into the
first-class delta engine at :mod:`repro.graph.delta`, which extends the
same ``O(deg(u) + deg(v))``-per-edge bump idea to the full columnar state
(stream index, CSR adjacency, cached CN/AA/RA score tables) with a
byte-identical ``materialize()``.  This module remains importable for one
more release as a shim; new code should import from
:mod:`repro.graph.delta` directly.
"""

from __future__ import annotations

import warnings

from repro.graph.delta import IncrementalNeighborhood

warnings.warn(
    "repro.extensions.incremental is deprecated; import "
    "IncrementalNeighborhood from repro.graph.delta instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["IncrementalNeighborhood"]
