"""Incremental candidate maintenance under edge insertions.

The streaming tracker that used to live here has been promoted into the
first-class delta engine at :mod:`repro.graph.delta`, which extends the
same ``O(deg(u) + deg(v))``-per-edge bump idea to the full columnar state
(stream index, CSR adjacency, cached CN/AA/RA score tables) with a
byte-identical ``materialize()``.  This module remains the stable import
path for the lightweight dictionary-based tracker.
"""

from __future__ import annotations

from repro.graph.delta import IncrementalNeighborhood

__all__ = ["IncrementalNeighborhood"]
