"""Incremental candidate maintenance under edge insertions.

The paper's pipeline recomputes each metric from scratch per snapshot —
fine for offline evaluation, wasteful for a deployed recommender that sees
a live edge stream.  ``IncrementalNeighborhood`` maintains, under
``add_edge``:

- adjacency and degrees,
- the common-neighbour count of every unconnected 2-hop pair,

in ``O(deg(u) + deg(v))`` per inserted edge.  That makes the entire
common-neighbourhood metric family (CN and its weighted/normalised
variants) stream-updatable: the expensive object, the 2-hop candidate map,
never has to be rebuilt.

Consistency with the batch machinery (``two_hop_pairs`` + the ``CN``
metric) is enforced by the test suite on random edge streams.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.utils.pairs import Pair, canonical_pair


class IncrementalNeighborhood:
    """Streaming adjacency + common-neighbour counts for non-edges."""

    def __init__(self) -> None:
        self._adj: dict[int, set[int]] = {}
        self._edges: set[Pair] = set()
        #: unconnected pair -> number of common neighbours (> 0 only).
        self._cn: dict[Pair, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def degree(self, node: int) -> int:
        return len(self._adj.get(node, ()))

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_pair(u, v) in self._edges

    def common_neighbors(self, u: int, v: int) -> int:
        """CN count of an unconnected pair (0 if beyond two hops)."""
        if self.has_edge(u, v):
            raise ValueError(f"({u}, {v}) is an edge, not a candidate")
        return self._cn.get(canonical_pair(u, v), 0)

    # ------------------------------------------------------------------
    def _bump(self, a: int, b: int, delta: int) -> None:
        """Adjust the CN count of candidate pair (a, b)."""
        if a == b:
            return
        pair = canonical_pair(a, b)
        if pair in self._edges:
            return
        value = self._cn.get(pair, 0) + delta
        if value > 0:
            self._cn[pair] = value
        else:
            self._cn.pop(pair, None)

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge (u, v); returns False if it already existed.

        Updates in O(deg(u) + deg(v)): the new edge creates a new 2-path
        u-v-x for every neighbour x of v (affecting candidate (u, x)) and
        v-u-x for every neighbour x of u (affecting candidate (v, x)).
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) rejected")
        pair = canonical_pair(u, v)
        if pair in self._edges:
            return False
        self._adj.setdefault(u, set())
        self._adj.setdefault(v, set())
        # The pair stops being a candidate the moment it becomes an edge.
        self._cn.pop(pair, None)
        for x in self._adj[v]:
            self._bump(u, x, +1)
        for x in self._adj[u]:
            self._bump(v, x, +1)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edges.add(pair)
        return True

    def extend(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    def two_hop_pairs(self) -> np.ndarray:
        """Current unconnected 2-hop pairs as an (n, 2) array."""
        if not self._cn:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(sorted(self._cn), dtype=np.int64)

    def cn_scores(self, pairs: np.ndarray) -> np.ndarray:
        """CN scores for given candidate pairs (0 beyond two hops)."""
        return np.fromiter(
            (self._cn.get(canonical_pair(int(u), int(v)), 0) for u, v in pairs),
            dtype=np.float64,
            count=len(pairs),
        )

    def top_candidates(self, k: int) -> list[tuple[Pair, int]]:
        """The k candidate pairs with the highest CN count.

        Deterministic tie order (by pair id) — callers that need the
        paper's random tie-breaking should use ``repro.eval.ranking`` over
        ``two_hop_pairs()`` / ``cn_scores()`` instead.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        ranked = sorted(self._cn.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
