"""Weighted-network link prediction (the paper's future-work item [27]).

The paper's evaluation is purely topological; its Section 7 names edge
weights — and the weak-tie effect of Lü & Zhou, "Link prediction in
weighted networks: The role of weak ties" [27] — as the first extension.
This module provides:

- :func:`synthesize_weights` — interaction weights for a snapshot, since
  the traces record only link creation.  Weight of an edge grows with its
  *embeddedness* (shared neighbourhood) and the endpoints' activity, the
  standard empirical regularities of tie strength;
- weighted variants of the common-neighbourhood metrics with the weak-tie
  exponent ``alpha`` of [27]:

      WCN_a(u,v) = sum over common neighbours z of (w(u,z)^a + w(z,v)^a)
      WAA_a      = ... / log(1 + s(z))
      WRA_a      = ... / s(z)

  where ``s(z)`` is z's strength (sum of its edge weights).  ``alpha = 1``
  uses raw weights, ``alpha = 0`` collapses to the unweighted metric x2,
  and [27]'s finding is that small (even negative) alpha — *weak ties* —
  often predicts best.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    adjacency,
    cached,
    register,
    two_hop_matrix,
)
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng

WeightMap = "dict[Pair, float]"


def synthesize_weights(
    snapshot: Snapshot,
    seed: "int | np.random.Generator | None" = 0,
    embeddedness_gain: float = 0.5,
    noise: float = 0.3,
) -> dict[Pair, float]:
    """Plausible interaction weights for a snapshot's edges.

    ``weight(u,v) = 1 + embeddedness_gain * |CN(u,v)| + recency bonus +
    lognormal noise`` — strong ties are embedded and recently active, the
    two regularities the weak-ties literature builds on.  Weights are
    strictly positive.
    """
    from repro.metrics.base import matrix_values

    rng = ensure_rng(seed)
    a2 = two_hop_matrix(snapshot)
    now = snapshot.time
    span = max(1e-9, now - snapshot.trace.start_time)
    iu, iv = snapshot.edge_indices()
    embeddedness = matrix_values(a2, iu, iv)
    times = snapshot.edge_times()
    age = (now - times) / span  # 0 = fresh
    base = 1.0 + embeddedness_gain * embeddedness + (1.0 - age)
    values = base * rng.lognormal(0.0, noise, size=len(base))
    return {
        pair: float(w) for pair, w in zip(snapshot.edges(), values.tolist())
    }


def weight_matrix(snapshot: Snapshot, weights: "dict[Pair, float]", alpha: float):
    """Symmetric sparse matrix of ``w(u,v)^alpha`` over the snapshot edges."""
    import scipy.sparse as sp

    pos = snapshot.node_pos
    n = len(pos)
    rows, cols, data = [], [], []
    for (u, v), w in weights.items():
        if not snapshot.has_edge(u, v):
            raise ValueError(f"weight given for non-edge {(u, v)}")
        if w <= 0:
            raise ValueError(f"weights must be positive, got {w} for {(u, v)}")
        value = w**alpha
        rows.extend((pos[u], pos[v]))
        cols.extend((pos[v], pos[u]))
        data.extend((value, value))
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


class _WeightedNeighbourhoodMetric(SimilarityMetric):
    """Shared machinery: ``score = sum_z g(z) * (W^a A + A W^a)[u,v]``.

    ``(W^a @ A)[u,v] = sum_z w(u,z)^a A[z,v]`` sums the u-side weights over
    common neighbours; adding the transpose term gives the
    ``w(u,z)^a + w(z,v)^a`` form of [27].  Subclasses supply the per-node
    denominator ``g(z)`` as a diagonal scaling.
    """

    candidate_strategy = "two_hop"

    def __init__(
        self, weights: "dict[Pair, float] | None" = None, alpha: float = 1.0
    ) -> None:
        super().__init__()
        self.weights = weights
        self.alpha = alpha

    def _node_scaling(self, snapshot: Snapshot, strength: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _snapshot_weights(self, snapshot: Snapshot) -> "dict[Pair, float]":
        """Caller-supplied weights, or deterministic synthesized ones.

        The registry instantiates metrics with no arguments, so the
        registered WCN/WAA/WRA fall back to :func:`synthesize_weights`
        (seed 0, cached per snapshot) — the traces record only link
        creation, never interaction volume.
        """
        if self.weights is not None:
            return self.weights
        return cached(
            snapshot, "synthetic_weights", lambda: synthesize_weights(snapshot)
        )

    def fit(self, snapshot: Snapshot):
        import scipy.sparse as sp

        self.snapshot = snapshot
        weights = self._snapshot_weights(snapshot)
        w = weight_matrix(snapshot, weights, self.alpha)
        raw_strength = np.asarray(
            weight_matrix(snapshot, weights, 1.0).sum(axis=1)
        ).ravel()
        scaling = self._node_scaling(snapshot, raw_strength)
        a = adjacency(snapshot)
        diag = sp.diags(scaling)
        # sum_z scaling(z) * (w(u,z)^a + w(z,v)^a) for z adjacent to both.
        self._matrix = (w @ diag @ a + a @ diag @ w).tocsr()
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        from repro.metrics.base import matrix_values, pairs_to_indices

        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)

    def score_block(self, block) -> np.ndarray:
        # Edge-weighted sums are a different kernel shape (per-edge rather
        # than per-node weights), so the block contributes its shared
        # position columns; the fitted product supplies the values.
        self._require_fit()
        from repro.metrics.base import matrix_values

        return matrix_values(self._matrix, block.rows, block.cols)


@register
class WeightedCommonNeighbors(_WeightedNeighbourhoodMetric):
    """WCN [27]: ``sum_z w(u,z)^a + w(z,v)^a``."""

    name = "WCN"

    def _node_scaling(self, snapshot, strength):
        return np.ones_like(strength)


@register
class WeightedAdamicAdar(_WeightedNeighbourhoodMetric):
    """WAA [27]: ``sum_z (w(u,z)^a + w(z,v)^a) / log(1 + s(z))``."""

    name = "WAA"

    def _node_scaling(self, snapshot, strength):
        return 1.0 / np.log1p(strength)


@register
class WeightedResourceAllocation(_WeightedNeighbourhoodMetric):
    """WRA [27]: ``sum_z (w(u,z)^a + w(z,v)^a) / s(z)``."""

    name = "WRA"

    def _node_scaling(self, snapshot, strength):
        out = np.zeros_like(strength)
        mask = strength > 0
        out[mask] = 1.0 / strength[mask]
        return out
