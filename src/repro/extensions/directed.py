"""Directed link prediction (the paper's future-work item [43]).

Section 7 notes that "link direction [43] can improve prediction
performance" — subscription edges in particular are one-way.  The growth
engine records who initiated every edge (``GrowthEngine.directions``); this
module turns that into directed structure and directed metric variants:

- **in/out degrees** — a creator's popularity is its in-degree, a
  subscriber's activity its out-degree, a distinction undirected PA blurs;
- **directed preferential attachment** — ``out(u) * in(v)``, scoring the
  likely orientation of the pair;
- **directed common-neighbourhood overlaps** (the structural features of
  Yin et al. [43]): shared followees ``|out(u) ∩ out(v)|``, shared
  followers ``|in(u) ∩ in(v)|``, and the transitive-path count
  ``|out(u) ∩ in(v)|`` — all computed as sparse products of the directed
  adjacency ``D`` (``D Dᵀ``, ``Dᵀ D``, ``D D``).

All metric classes score *unordered* candidate pairs — the evaluation
framework is orientation-free — by taking the better of the two
orientations, so they drop straight into ``evaluate_step``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.generators.base import GrowthConfig, GrowthEngine
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    cached,
    matrix_values,
    pairs_to_indices,
)
from repro.utils.pairs import Pair


def generate_directed_trace(
    config: GrowthConfig, seed=None
) -> tuple[TemporalGraph, "dict[Pair, tuple[int, int]]"]:
    """Run the growth engine and return ``(trace, directions)``."""
    engine = GrowthEngine(config, seed=seed)
    trace = engine.run()
    return trace, dict(engine.directions)


class DirectedView:
    """Directed adjacency of a snapshot, from a direction map.

    Edges whose pair is missing from ``directions`` (e.g. edges of a
    hand-built trace) default to the canonical orientation ``u -> v``.
    """

    def __init__(self, snapshot: Snapshot, directions: "dict[Pair, tuple[int, int]]"):
        self.snapshot = snapshot
        pos = snapshot.node_pos
        n = len(pos)
        rows, cols = [], []
        for pair in snapshot.edges():
            src, dst = directions.get(pair, pair)
            if {src, dst} != set(pair):
                raise ValueError(f"direction {src}->{dst} does not match edge {pair}")
            rows.append(pos[src])
            cols.append(pos[dst])
        data = np.ones(len(rows))
        #: sparse directed adjacency, D[i, j] = 1 iff i -> j.
        self.matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        self._out_deg = np.asarray(self.matrix.sum(axis=1)).ravel()
        self._in_deg = np.asarray(self.matrix.sum(axis=0)).ravel()

    def out_degree(self, node: int) -> int:
        return int(self._out_deg[self.snapshot.node_pos[node]])

    def in_degree(self, node: int) -> int:
        return int(self._in_deg[self.snapshot.node_pos[node]])

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degrees aligned with ``snapshot.node_list``."""
        return self._out_deg

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degrees aligned with ``snapshot.node_list``."""
        return self._in_deg

    def reciprocity(self) -> float:
        """Fraction of directed edges whose reverse also exists.

        Always 0 for views built from a first-creation trace (each pair
        appears once); meaningful when callers merge several views.
        """
        total = self.matrix.nnz
        if not total:
            return 0.0
        mutual = int(self.matrix.multiply(self.matrix.T).nnz)
        return mutual / total


def directed_view(snapshot: Snapshot, directions) -> DirectedView:
    """Cached :class:`DirectedView` for a snapshot + direction map."""
    return cached(
        snapshot,
        f"directed_view_{id(directions)}",
        lambda: DirectedView(snapshot, directions),
    )


class _DirectedMetric(SimilarityMetric):
    """Base: scores unordered pairs by the better of the two orientations."""

    def __init__(self, directions: "dict[Pair, tuple[int, int]]") -> None:
        super().__init__()
        self.directions = directions

    def fit(self, snapshot: Snapshot):
        self.snapshot = snapshot
        self._dv = directed_view(snapshot, self.directions)
        self._prepare(self._dv)
        return self

    def _prepare(self, dv: DirectedView) -> None:
        raise NotImplementedError

    def _oriented_scores(self, rows, cols) -> np.ndarray:
        raise NotImplementedError

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        if len(pairs) == 0:
            return np.zeros(0)
        rows, cols = pairs_to_indices(snapshot, pairs)
        return np.maximum(
            self._oriented_scores(rows, cols), self._oriented_scores(cols, rows)
        )


class DirectedPreferentialAttachment(_DirectedMetric):
    """dPA: ``out(u) * in(v)`` — an active source meets a popular sink."""

    name = "dPA"
    candidate_strategy = "all"

    def _prepare(self, dv: DirectedView) -> None:
        self._out = dv.out_degrees
        self._in = dv.in_degrees

    def _oriented_scores(self, rows, cols) -> np.ndarray:
        return self._out[rows] * self._in[cols]


class _DirectedOverlapMetric(_DirectedMetric):
    """Overlap counts via one sparse product of the directed adjacency."""

    candidate_strategy = "two_hop"  # all three overlaps imply a common
    # undirected neighbour, so only 2-hop pairs can score non-zero.

    def _product(self, d: sp.csr_matrix) -> sp.csr_matrix:
        raise NotImplementedError

    def _prepare(self, dv: DirectedView) -> None:
        self._matrix = self._product(dv.matrix).tocsr()

    def _oriented_scores(self, rows, cols) -> np.ndarray:
        return matrix_values(self._matrix, rows, cols)


class SharedFollowees(_DirectedOverlapMetric):
    """dOUT: ``|out(u) ∩ out(v)|`` — subscribed to the same accounts."""

    name = "dOUT"

    def _product(self, d):
        return d @ d.T


class SharedFollowers(_DirectedOverlapMetric):
    """dIN: ``|in(u) ∩ in(v)|`` — accounts with a common audience."""

    name = "dIN"

    def _product(self, d):
        return d.T @ d


class TransitivePaths(_DirectedOverlapMetric):
    """dTRANS: ``|out(u) ∩ in(v)|`` — directed 2-paths ``u -> w -> v``."""

    name = "dTRANS"

    def _product(self, d):
        return d @ d
