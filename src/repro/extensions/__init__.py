"""Extensions beyond the paper's evaluation, from its Section 7 roadmap.

- :mod:`repro.extensions.weighted` — weighted-network link prediction and
  the weak-tie exponent of Lü & Zhou [27] ("Additional information, such
  as edge weights [27] ... can improve prediction performance.  We plan to
  consider these factors in future work.").
- :mod:`repro.extensions.directed` — directed link prediction ("link
  direction [43]", the other named future-work item), driven by the growth
  engine's record of who initiated each edge;
- :mod:`repro.extensions.incremental` — incremental maintenance of the
  candidate machinery under edge insertions, the engineering counterpart
  of the paper's scalability discussion.  The tracker itself now lives in
  :mod:`repro.graph.delta` (alongside the full columnar delta engine);
  this path re-exports it.
"""

from repro.extensions.directed import (
    DirectedPreferentialAttachment,
    DirectedView,
    SharedFollowees,
    SharedFollowers,
    TransitivePaths,
    generate_directed_trace,
)

# Canonical home; the repro.extensions.incremental shim (which warns on
# import) re-exports the same class for legacy callers.
from repro.graph.delta import IncrementalNeighborhood
from repro.extensions.weighted import (
    WeightedAdamicAdar,
    WeightedCommonNeighbors,
    WeightedResourceAllocation,
    synthesize_weights,
)

__all__ = [
    "DirectedPreferentialAttachment",
    "DirectedView",
    "SharedFollowees",
    "SharedFollowers",
    "TransitivePaths",
    "generate_directed_trace",
    "IncrementalNeighborhood",
    "WeightedCommonNeighbors",
    "WeightedAdamicAdar",
    "WeightedResourceAllocation",
    "synthesize_weights",
]
