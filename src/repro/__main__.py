"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   write a synthetic trace to a file (``u v t`` per line)
evaluate   run one predictor over a trace's snapshot sequence
compare    rank several metrics on one trace
suggest    print top-k link recommendations for the latest snapshot
report     markdown predictability report for a trace
experiment run a JSON ``ExperimentSpec`` (alias: ``run``; ``--jobs N``
           parallelises it, ``--telemetry PATH`` records a trace)
ingest     parse + validate trace file(s) and print the ingest report
           (``--jobs N`` shards the parse across processes with
           byte-identical output; ``--manifest`` caches verified shards)
audit      diagnose a trace file: ingest taxonomy + graph-integrity audit
           (``--shards``/``--manifest`` audit multi-file shard sets)
trace      inspect a recorded telemetry trace (``summary`` / ``show``)
serve      online link-prediction HTTP service over a trace's delta engine
           (``--wal DIR`` adds WAL-backed durability + crash recovery)
recover    offline WAL recovery: checkpoint + replay + integrity audit
wal        WAL maintenance (``verify``: classify clean / torn / corrupt)

Exit codes
----------
0    success (for ``audit``: the trace is clean; for ``wal verify``: the
     log is clean; for ``recover``: recovered state passed its audit)
1    ``audit`` found flagged events or integrity violations; ``wal
     verify`` found a torn tail or corruption; ``recover`` failed its
     post-replay audit or hit WAL corruption
2    usage, spec, or I/O error (bad arguments, unreadable files, a WAL
     bound to a different trace/policy)
130  interrupted (Ctrl-C); journaled runs resume with the same --journal

Examples
--------
    python -m repro generate --dataset facebook --out fb.txt.gz --gzip
    python -m repro evaluate --trace fb.txt --metric RA --delta 260
    python -m repro compare --dataset youtube --metrics Rescal,BRA,PA,JC
    python -m repro suggest --dataset facebook --metric RA -k 10
    python -m repro run --spec spec.json --jobs 8 --telemetry run.trace.jsonl
    python -m repro trace summary run.trace.jsonl
    python -m repro ingest crawl.txt --jobs 4 --manifest crawl.shards.json
    python -m repro audit --trace crawl.txt.gz
    python -m repro serve --trace fb.txt --port 8080 --queue-size 64
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import __version__
from repro.core.api import LinkPredictor, available_metrics
from repro.generators import presets
from repro.graph.io import read_trace, write_trace
from repro.graph.snapshots import snapshot_sequence

_EXIT_CODES_EPILOG = """\
exit codes:
  0    success (audit: trace is clean)
  1    audit found flagged events or integrity violations
  2    usage, spec, or I/O error
  130  interrupted (Ctrl-C)
"""


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (bad value -> exit 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (bad value -> exit 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive, finite float (bad -> exit 2)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not np.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {text}")
    return value


def _load_trace(args):
    """Trace from --trace file or --dataset preset.

    File loads run the ingest pipeline under ``--policy``; anything the
    pipeline flagged, repaired, or quarantined is summarised on stderr so
    preprocessing decisions are visible next to the results they shaped.
    """
    if args.trace:
        from repro.ingest import IngestPolicy

        policy = IngestPolicy.from_string(getattr(args, "policy", "default"))
        trace = read_trace(args.trace, policy=policy)
        report = trace.ingest_report
        if report is not None and not report.clean:
            print(report.summary(), file=sys.stderr)
        return trace
    return presets.load(args.dataset, scale=args.scale, seed=args.seed)


def _default_delta(args, trace) -> int:
    if args.delta:
        return args.delta
    if args.trace is None:
        return presets.snapshot_delta(args.dataset, args.scale)
    return max(10, trace.num_edges // 20)


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", help="path to a 'u v t' edge-stream file")
    parser.add_argument(
        "--dataset",
        default="facebook",
        choices=sorted(presets.DATASETS),
        help="synthetic preset to use when --trace is not given",
    )
    parser.add_argument("--scale", type=float, default=0.5, help="preset size multiplier")
    parser.add_argument("--seed", type=int, default=0, help="generation / tie-break seed")
    parser.add_argument("--delta", type=int, help="snapshot delta (new edges per snapshot)")
    parser.add_argument(
        "--policy",
        default="default",
        choices=["default", "strict", "repair", "quarantine"],
        help="ingest policy for --trace files: how parse errors, self-loops, "
        "duplicates, bad timestamps, and out-of-order events are handled",
    )


def cmd_generate(args) -> int:
    trace = presets.load(args.dataset, scale=args.scale, seed=args.seed)
    write_trace(trace, args.out, compress=True if args.gzip else None)
    print(f"wrote {trace} to {args.out}")
    return 0


def cmd_ingest(args) -> int:
    """Parse + validate trace file(s), optionally sharded, print the report.

    With ``--jobs > 1`` (or ``$REPRO_JOBS``) the files are split into
    line-aligned shards and parsed over a process pool; output — columns,
    checksum, taxonomy counts, rejects sidecars — is byte-identical to a
    serial ingest of the same stream.  ``--manifest`` persists the shard
    plan (``repro-shards v1``) so a re-ingest skips the parse of every
    shard whose bytes still hash to the planned checksum.
    """
    from repro.ingest import IngestPolicy, scan_trace
    from repro.ingest.shard import resolve_jobs, scan_shards

    policy = IngestPolicy.from_string(args.policy)
    jobs = resolve_jobs(args.jobs)
    plain_serial = (
        jobs == 1
        and len(args.traces) == 1
        and args.manifest is None
        and args.shards is None
        and args.shard_bytes is None
    )
    if plain_serial:
        # --jobs 1 on one file is the reference serial pipeline, so the
        # CI parity smoke compares serial vs sharded, not shard vs shard.
        _us, _vs, _ts, report = scan_trace(
            args.traces[0], policy=policy, quarantine_path=args.rejects
        )
    else:
        _us, _vs, _ts, report = scan_shards(
            args.traces, policy=policy, quarantine_path=args.rejects,
            jobs=jobs, shard_bytes=args.shard_bytes,
            target_shards=args.shards, manifest=args.manifest,
        )
    print(report.summary(), file=sys.stderr)
    if args.json:
        print(report.to_json())
    else:
        print(
            f"{report.events_accepted} events accepted, "
            f"checksum {report.checksum}"
        )
    return 0


def _audit_target(args, policy):
    """Resolve the audit's input set and load it; returns (trace, label)."""
    from repro.ingest import load_trace
    from repro.ingest.shard import load_shards, manifest_sources, resolve_jobs

    jobs = resolve_jobs(getattr(args, "jobs", None))
    shards = getattr(args, "shards", None)
    manifest = getattr(args, "manifest", None)
    if shards:
        paths = list(shards)
    elif args.trace:
        paths = [args.trace]
    elif manifest:
        paths = manifest_sources(manifest)
    else:
        raise ValueError("audit needs --trace, --shards, or --manifest")
    if len(paths) == 1 and manifest is None and jobs == 1:
        trace = load_trace(
            paths[0], policy=policy, quarantine_path=args.rejects
        )
    else:
        trace = load_shards(
            paths, policy=policy, jobs=jobs, manifest=manifest,
            quarantine_path=args.rejects if len(paths) == 1 else None,
        )
    return trace, ", ".join(str(p) for p in paths)


def cmd_audit(args) -> int:
    """Diagnose a trace end to end: ingest taxonomy + core invariants.

    Loads under a diagnostic (default: repair-everything) policy so a dirty
    file is fully classified instead of aborting at the first error, prints
    the ingest and audit summaries to stderr, and exits 1 when anything was
    flagged — the fail-fast gate CI runs on fixture traces.  ``--shards``
    audits a multi-file shard set as one stream; ``--jobs`` parallelises
    the load (identical verdicts either way).
    """
    from repro.graph.audit import audit_graph
    from repro.ingest import IngestPolicy, TraceFormatError

    policy = IngestPolicy.from_string(args.policy)
    try:
        trace, label = _audit_target(args, policy)
    except TraceFormatError as exc:
        print(f"[ingest] {exc}", file=sys.stderr)
        return 1
    ingest_report = trace.ingest_report
    print(ingest_report.summary(), file=sys.stderr)
    audit_report = audit_graph(trace)
    print(audit_report.summary(), file=sys.stderr)
    clean = ingest_report.clean and audit_report.ok
    if args.delta is not None:
        clean = _delta_replay_audit(trace, args.delta) and clean
    print(f"{label}: {'clean' if clean else 'FLAGGED'} — {trace}")
    return 0 if clean else 1


def _delta_replay_audit(trace, batch_size: int) -> bool:
    """Replay the trace through a DeltaGraph, auditing after every batch.

    The smoke mode behind ``repro audit --delta N``: exercises the
    incremental engine's full invariant surface (core 12 checks plus the
    delta-structure checks) on a real trace, batch by batch.
    """
    from repro.graph.delta import DeltaGraph

    if batch_size < 1:
        print("[delta] --delta batch size must be >= 1", file=sys.stderr)
        return False
    events = list(trace.edges())
    engine = DeltaGraph()
    batches = 0
    for start in range(0, len(events), batch_size):
        engine.apply(events[start : start + batch_size])
        batches += 1
        report = engine.audit()
        if not report.ok:
            print(f"[delta] batch {batches} FAILED its audit", file=sys.stderr)
            print(report.summary(), file=sys.stderr)
            return False
    print(
        f"[delta] replayed {len(events)} events in {batches} batches, "
        f"all audits clean",
        file=sys.stderr,
    )
    return True


def cmd_evaluate(args) -> int:
    trace = _load_trace(args)
    predictor = LinkPredictor(metric=args.metric, seed=args.seed)
    result = predictor.evaluate_sequence(trace, delta=_default_delta(args, trace))
    print(result.summary())
    if args.verbose:
        for step in result.steps:
            print(
                f"  step {step.step:3d}  k={step.k:5d}  hits={step.hits:4d}  "
                f"ratio={step.ratio:9.2f}  absolute={100 * step.absolute:6.2f}%"
            )
    return 0


def cmd_compare(args) -> int:
    trace = _load_trace(args)
    delta = _default_delta(args, trace)
    names = args.metrics.split(",")
    unknown = [n for n in names if n not in available_metrics()]
    if unknown:
        print(f"unknown metrics: {unknown}; available: {available_metrics()}")
        return 2
    rows = []
    for name in names:
        predictor = LinkPredictor(metric=name, seed=args.seed)
        result = predictor.evaluate_sequence(trace, delta=delta)
        rows.append((name, result.mean_ratio, result.best_absolute))
    rows.sort(key=lambda r: -r[1])
    print(f"{'metric':10s} {'mean ratio':>12s} {'best abs':>10s}")
    for name, ratio, absolute in rows:
        print(f"{name:10s} {ratio:12.2f} {100 * absolute:9.2f}%")
    return 0


def cmd_report(args) -> int:
    from repro.core.report import build_report

    trace = _load_trace(args)
    name = args.trace or args.dataset
    report = build_report(
        trace, delta=args.delta, seed=args.seed, name=str(name)
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"wrote report to {args.out}")
    else:
        print(report)
    return 0


def _write_timing_json(path: str, spec, timing) -> None:
    """Serialise RunTiming + the ``[faults]`` footer as machine-readable JSON.

    ``payload["timing"]`` round-trips through
    :meth:`~repro.eval.runner.RunTiming.from_payload`; ``payload["faults"]``
    restates the footer's aggregates so dashboards need no re-derivation.
    """
    payload = {
        "name": spec.name,
        "timing": timing.to_payload(),
        "faults": {
            "failure_kinds": timing.failure_kinds(),
            "retries": timing.retries,
            "pool_rebuilds": timing.pool_rebuilds,
            "degraded_to_serial": timing.degraded_to_serial,
            "journal_cells": timing.journal_cells,
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, indent=2) + "\n")


def cmd_experiment(args) -> int:
    from repro import telemetry
    from repro.eval.retry import RetryPolicy
    from repro.eval.runner import ExperimentSpec, run_experiment

    spec = ExperimentSpec.load(args.spec)
    policy = RetryPolicy(
        max_attempts=args.max_attempts, timeout_seconds=args.cell_timeout
    )
    if args.telemetry_prom and not args.telemetry:
        print("error: --telemetry-prom requires --telemetry", file=sys.stderr)
        return 2
    if args.telemetry:
        telemetry.configure(
            args.telemetry, prom_path=args.telemetry_prom, name=spec.name
        )
    try:
        try:
            result = run_experiment(
                spec, n_jobs=args.jobs, journal=args.journal, retry=policy
            )
        except KeyboardInterrupt:
            # the journal is flushed per cell, so everything finished so far
            # is already durable; tell the user how to pick the run back up.
            if args.journal:
                print(
                    f"\ninterrupted — completed cells are journaled; resume with "
                    f"--journal {args.journal}",
                    file=sys.stderr,
                )
            else:
                print(
                    "\ninterrupted — re-run with --journal PATH to make runs "
                    "resumable",
                    file=sys.stderr,
                )
            return 130
    finally:
        if args.telemetry:
            # flushes buffered spans and appends the final metric records,
            # including on the interrupt path — partial traces stay readable.
            telemetry.shutdown()
    print(f"experiment: {spec.name} ({result.steps_evaluated} steps)")
    print(result.summary_table())
    if args.out:
        result.save(args.out, include_timing=args.include_timing)
        print(f"full results written to {args.out}")
    if args.timing_json:
        _write_timing_json(args.timing_json, spec, result.timing)
        print(f"timing written to {args.timing_json}")
    if args.telemetry:
        print(f"telemetry trace written to {args.telemetry}")
    return 0


def cmd_trace(args) -> int:
    from repro.telemetry import read_trace as read_telemetry_trace
    from repro.telemetry import render_tree, summarize

    # TraceFileError is a ValueError: main() maps unreadable files to exit 2.
    trace = read_telemetry_trace(args.trace_file)
    if args.trace_command == "summary":
        print(summarize(trace))
    else:
        print(
            render_tree(
                trace, max_depth=args.max_depth, min_seconds=args.min_seconds
            )
        )
    return 0


def cmd_serve(args) -> int:
    """Run the online serving loop until SIGTERM/SIGINT, then drain.

    Exit 0 when the drain completed cleanly (every in-flight request
    finished inside the drain budget), 1 when stragglers were abandoned.
    """
    import asyncio
    import signal

    from repro import telemetry
    from repro.serve import LinkPredictionServer, ScoreStore, ServeConfig

    trace = _load_trace(args)
    if args.telemetry:
        telemetry.configure(args.telemetry, name="serve")
    from repro.ingest import IngestPolicy

    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        workers=args.workers,
        deadline_s=args.deadline_ms / 1000.0,
        drain_s=args.drain_s,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        audit_every=args.audit_every,
        policy=args.policy,
        wal_dir=args.wal,
        fsync=args.fsync,
        fsync_interval_s=args.fsync_interval_s,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
    )
    policy = IngestPolicy.from_string(args.policy)
    manager = None
    recovery = None
    store_trace = trace
    if args.wal:
        from repro.serve import DurabilityManager

        # Mismatch/corruption surfaces here as a ValueError -> exit 2:
        # an operator pointed the server at the wrong WAL directory.
        manager, recovery = DurabilityManager.attach(
            args.wal,
            trace,
            policy,
            fsync=args.fsync,
            fsync_interval_s=args.fsync_interval_s,
            checkpoint_every=args.checkpoint_every,
            checkpoint_keep=args.checkpoint_keep,
        )
        if recovery is not None:
            if recovery.start_trace is not None:
                # serve degraded reads from the checkpoint immediately;
                # the WAL tail replays in the background before /readyz.
                store_trace = recovery.start_trace
            print(
                f"recovering from {args.wal}: checkpoint seq "
                f"{recovery.checkpoint_seq}, {len(recovery.records)} WAL "
                f"records ({recovery.events} events) to replay",
                file=sys.stderr,
            )
    store = ScoreStore(
        store_trace,
        policy=policy,
        audit_every=args.audit_every,
        durability=manager,
    )
    server = LinkPredictionServer(store, config, recovery=recovery)

    async def _run() -> bool:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_shutdown)
        # stdout contract: harnesses poll for this line to learn the port.
        print(f"serving on http://{config.host}:{server.port}", flush=True)
        return await server.serve_until_shutdown()

    try:
        clean = asyncio.run(_run())
    except KeyboardInterrupt:
        # SIGINT raced the handler installation; nothing was in flight.
        clean = True
    if args.telemetry:
        telemetry.shutdown()
        print(f"telemetry trace written to {args.telemetry}", file=sys.stderr)
    print(
        "drained cleanly" if clean else "drain budget exceeded; work abandoned",
        file=sys.stderr,
    )
    return 0 if clean else 1


def cmd_recover(args) -> int:
    """Offline WAL recovery: checkpoint + replay + mandatory audit.

    Exit 0 when the recovered engine passed its integrity audit, 1 when
    replay succeeded but the audit flagged violations (or the WAL is
    corrupt mid-file), 2 when the WAL belongs to a different trace/policy
    or the arguments are unusable.
    """
    from repro.graph.wal import RecoveryError, WalCorruptError, recover_state
    from repro.ingest import IngestPolicy

    trace = _load_trace(args)
    policy = IngestPolicy.from_string(args.policy)
    try:
        result = recover_state(args.wal_dir, trace, policy)
    except RecoveryError as exc:
        print(json.dumps(exc.result.describe(), indent=2))
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except WalCorruptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result.describe(), indent=2))
    snapshot = result.engine.materialize()
    print(
        f"recovered state: {snapshot.num_edges} edges, "
        f"{snapshot.num_nodes} nodes, audit clean",
        file=sys.stderr,
    )
    return 0


def cmd_wal_verify(args) -> int:
    """Classify one WAL: 0 clean, 1 torn tail or corruption, 2 usage."""
    import os

    from repro.graph.wal import WAL_FILE, verify_wal

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, WAL_FILE)
    report = verify_wal(path)  # missing/unreadable file -> OSError -> 2
    print(
        json.dumps(
            {
                "path": report.path,
                "status": report.status,
                "records": report.records,
                "events": report.events,
                "torn_bytes": report.torn_bytes,
                "detail": report.detail,
            },
            indent=2,
        )
    )
    return 0 if report.clean else 1


def cmd_suggest(args) -> int:
    trace = _load_trace(args)
    delta = _default_delta(args, trace)
    latest = snapshot_sequence(trace, delta)[-1]
    predictor = LinkPredictor(metric=args.metric, seed=args.seed)
    for u, v in predictor.suggest(latest, args.k):
        print(f"{u} {v}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Link prediction experiments (IMC 2016 reproduction).",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic trace to a file")
    p.add_argument("--dataset", default="facebook", choices=sorted(presets.DATASETS))
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output path")
    p.add_argument(
        "--gzip",
        action="store_true",
        help="gzip the output (also implied by a .gz suffix on --out)",
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "ingest",
        help="parse + validate trace(s), optionally sharded in parallel",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "traces", nargs="+", metavar="TRACE",
        help="trace file(s) in stream order (a multi-file shard set is "
        "ingested as one concatenated stream)",
    )
    p.add_argument(
        "--policy",
        default="default",
        choices=["default", "strict", "repair", "quarantine"],
        help="ingest policy (default: default)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        help="parallel ingest workers (default: $REPRO_JOBS if set, else "
        "1 = serial; 0 = one per CPU core; output is byte-identical for "
        "every value)",
    )
    p.add_argument(
        "--shards",
        type=_positive_int,
        metavar="N",
        help="target shard count when splitting plain-text files "
        "(default: 2x jobs)",
    )
    p.add_argument(
        "--shard-bytes",
        type=_positive_int,
        metavar="B",
        help="split plain-text files into ~B-byte line-aligned chunks "
        "(overrides --shards; gzip members are always whole-file shards)",
    )
    p.add_argument(
        "--manifest",
        metavar="PATH",
        help="repro-shards v1 manifest: read to skip re-parsing shards "
        "whose bytes still match their planned checksum, rewritten to "
        "describe this run",
    )
    p.add_argument(
        "--rejects",
        help="sidecar path for quarantined lines (single trace only; "
        "default: <trace>.rejects)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the full ingest-report JSON to stdout",
    )
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser(
        "audit",
        help="diagnose a trace file (ingest taxonomy + invariants)",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--trace", help="path to a 'u v t' trace file")
    p.add_argument(
        "--shards",
        nargs="+",
        metavar="TRACE",
        help="audit a multi-file shard set as one concatenated stream "
        "(alternative to --trace)",
    )
    p.add_argument(
        "--manifest",
        metavar="PATH",
        help="repro-shards v1 manifest; alone it names the source files "
        "to audit, with --shards/--trace it is used as the parse cache",
    )
    p.add_argument(
        "--jobs",
        type=int,
        help="parallel ingest workers (default: $REPRO_JOBS if set, else "
        "1; 0 = one per CPU core; verdicts are identical for every value)",
    )
    p.add_argument(
        "--policy",
        default="repair",
        choices=["default", "strict", "repair", "quarantine"],
        help="ingest policy to diagnose under (default: repair, so the "
        "whole file is classified instead of stopping at the first error)",
    )
    p.add_argument(
        "--rejects",
        help="sidecar path for quarantined lines (default: <trace>.rejects; "
        "only written under --policy quarantine)",
    )
    p.add_argument(
        "--delta",
        type=_positive_int,
        metavar="N",
        help="additionally replay the trace through the incremental delta "
        "engine in batches of N events, auditing after every batch",
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("evaluate", help="run one predictor over a trace")
    _add_trace_arguments(p)
    p.add_argument("--metric", default="RA", choices=available_metrics())
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", help="rank several metrics on one trace")
    _add_trace_arguments(p)
    p.add_argument(
        "--metrics", default="RA,BRA,JC,PA,SP", help="comma-separated metric names"
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("suggest", help="top-k recommendations for the latest snapshot")
    _add_trace_arguments(p)
    p.add_argument("--metric", default="RA", choices=available_metrics())
    p.add_argument("-k", type=int, default=10)
    p.set_defaults(func=cmd_suggest)

    p = sub.add_parser("report", help="markdown predictability report for a trace")
    _add_trace_arguments(p)
    p.add_argument("--out", help="write the report to a file instead of stdout")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "experiment",
        aliases=["run"],
        help="run a JSON experiment spec (alias: run)",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--spec", required=True, help="path to an ExperimentSpec JSON file")
    p.add_argument("--out", help="write the full result JSON here")
    p.add_argument(
        "--jobs",
        type=int,
        help="worker processes (overrides the spec's n_jobs; 0 = one per "
        "CPU core; results are identical for every value)",
    )
    p.add_argument(
        "--include-timing",
        action="store_true",
        help="include the run's timing block in the --out JSON (off by "
        "default so result files stay byte-identical across runs)",
    )
    p.add_argument(
        "--journal",
        help="append completed work cells to this JSONL file; re-running "
        "with the same spec and journal resumes, executing only the "
        "missing cells (results stay byte-identical to a clean run)",
    )
    p.add_argument(
        "--cell-timeout",
        type=float,
        help="per-cell soft deadline in seconds (a hung cell is retried; "
        "default: no timeout)",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per cell before the run fails (default 3; failed "
        "attempts back off exponentially with deterministic jitter)",
    )
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        help="record a span trace of the run (JSONL) to PATH; inspect it "
        "with 'repro trace summary PATH' / 'repro trace show PATH'",
    )
    p.add_argument(
        "--telemetry-prom",
        metavar="PATH",
        help="also export the run's counters/histograms in Prometheus "
        "textfile format (requires --telemetry)",
    )
    p.add_argument(
        "--timing-json",
        metavar="PATH",
        help="write the run's timing + faults footer as machine-readable "
        "JSON (execution metadata only — never part of --out results)",
    )
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "serve",
        help="online link-prediction HTTP service over a trace",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_trace_arguments(p)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8080,
        help="bind port (0 = ephemeral; the bound port is printed)",
    )
    p.add_argument(
        "--queue-size",
        type=_positive_int,
        default=64,
        help="admission-queue bound; a full queue sheds the newest "
        "request with 429 + Retry-After (default 64)",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        help="scoring worker pool size (default: $REPRO_JOBS if set, "
        "else min(4, cpu count))",
    )
    p.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=1000.0,
        help="default per-request deadline budget, queue wait included "
        "(default 1000; clients may lower it via ?deadline_ms=)",
    )
    p.add_argument(
        "--drain-s",
        type=_positive_float,
        default=5.0,
        help="drain budget on SIGTERM: in-flight requests get this long "
        "before the process exits (default 5)",
    )
    p.add_argument(
        "--breaker-threshold",
        type=_positive_int,
        default=5,
        help="consecutive write failures that trip the circuit breaker "
        "(reads then degrade to the last-good snapshot; default 5)",
    )
    p.add_argument(
        "--breaker-cooldown-s",
        type=_positive_float,
        default=30.0,
        help="seconds the tripped breaker stays open before one probe "
        "write is allowed through (default 30)",
    )
    p.add_argument(
        "--audit-every",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="run the delta-engine integrity audit after every Nth "
        "accepted ingest batch (0 = never; default 0)",
    )
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        help="record per-request spans + queue/latency metrics to PATH "
        "(JSONL; also enables GET /metricz)",
    )
    p.add_argument(
        "--wal",
        metavar="DIR",
        help="durable mode: write-ahead-log accepted ingest batches to "
        "DIR (created if missing) and recover from it on restart; "
        "/readyz stays 503 until replay + audit complete",
    )
    p.add_argument(
        "--fsync",
        default="always",
        choices=["always", "interval", "never"],
        help="WAL fsync cadence: 'always' fsyncs before every ack (RPO "
        "0), 'interval' group-commits every --fsync-interval-s, 'never' "
        "leaves syncing to the kernel (default: always)",
    )
    p.add_argument(
        "--fsync-interval-s",
        type=_positive_float,
        default=0.05,
        metavar="S",
        help="group-commit interval for --fsync interval (default 0.05)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=_nonnegative_int,
        default=64,
        metavar="N",
        help="write a recovery checkpoint after every Nth WAL-logged "
        "batch (0 = only on clean drain; default 64)",
    )
    p.add_argument(
        "--checkpoint-keep",
        type=_positive_int,
        default=3,
        metavar="N",
        help="checkpoints retained on disk; older ones are pruned "
        "(default 3)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "recover",
        help="offline WAL recovery: checkpoint + replay + integrity audit",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("wal_dir", help="WAL directory written by serve --wal")
    _add_trace_arguments(p)
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "wal",
        help="WAL maintenance commands",
        epilog=_EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    wal_sub = p.add_subparsers(dest="wal_command", required=True)
    pw = wal_sub.add_parser(
        "verify",
        help="classify a WAL: exit 0 clean, 1 torn tail/corrupt, 2 usage",
    )
    pw.add_argument("path", help="WAL file or directory containing wal.log")
    pw.set_defaults(func=cmd_wal_verify)

    p = sub.add_parser(
        "trace", help="inspect a recorded telemetry trace file"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summary", help="per-phase wall time and counter tables"
    )
    ps.add_argument("trace_file", help="trace file written by --telemetry")
    ps.set_defaults(func=cmd_trace)
    ps = trace_sub.add_parser("show", help="the full span tree")
    ps.add_argument("trace_file", help="trace file written by --telemetry")
    ps.add_argument(
        "--max-depth", type=int, default=None, help="limit tree depth"
    )
    ps.add_argument(
        "--min-seconds",
        type=float,
        default=0.0,
        help="hide spans shorter than this many seconds",
    )
    ps.set_defaults(func=cmd_trace)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130
    except (ValueError, OSError) as exc:
        # spec mistakes and IO problems get one readable line, not a
        # traceback (json.JSONDecodeError is a ValueError subclass).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
