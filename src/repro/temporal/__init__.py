"""Temporal analysis and the paper's temporal filters (Section 6).

Three observations about network dynamics drive this subpackage:

- recently active nodes create most new edges (Figs. 13-14),
- a recently arrived *common neighbour* often precedes triangle closure
  (Fig. 15),
- both signals separate positive from negative candidate pairs sharply
  enough to act as hard filters.

:class:`~repro.temporal.filters.TemporalFilter` implements the 4-criterion
filter of Section 6.2; :mod:`repro.temporal.calibrate` discovers per-network
thresholds (Table 7) from positive/negative CDFs;
:mod:`repro.temporal.timeseries` implements the time-series baseline [10]
the filters are compared against in Section 6.3.
"""

from repro.temporal.activity import PairActivity, pair_activity
from repro.temporal.calibrate import calibrate_filter
from repro.temporal.filters import FilterParams, TemporalFilter
from repro.temporal.timeseries import TimeSeriesMetric

__all__ = [
    "PairActivity",
    "pair_activity",
    "FilterParams",
    "TemporalFilter",
    "calibrate_filter",
    "TimeSeriesMetric",
]
