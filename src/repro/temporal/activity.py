"""Per-pair temporal activity features (Section 6.1).

For a candidate pair ``(u, v)`` observed at snapshot time ``t``:

- the *active* node is the endpoint with the smaller idle time, the
  *inactive* node the other one;
- ``recent_edges`` counts edges the active node created in the last ``d``
  days;
- the *CN time gap* is ``t`` minus the most recent time the pair gained a
  common neighbour (the arrival time of common neighbour ``w`` is
  ``max(t_{uw}, t_{vw})``); pairs with no common neighbour get ``inf``.

The node-level kernels run directly on the trace's event columns: one
``searchsorted`` bounds the events at or before the snapshot time, then a
``maximum.at`` / ``bincount`` scatter produces every node's last-activity
time or windowed edge count in a single vectorised pass — no per-node
Python bisect loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.snapshots import Snapshot


@dataclass
class PairActivity:
    """Vectorised activity features for a batch of candidate pairs."""

    active_idle: np.ndarray     # idle time of the fresher endpoint (days)
    inactive_idle: np.ndarray   # idle time of the staler endpoint (days)
    recent_edges: np.ndarray    # active endpoint's edges in the window
    cn_gap: np.ndarray          # days since last common-neighbour arrival

    def __len__(self) -> int:
        return len(self.active_idle)


def _global_positions(snapshot: Snapshot) -> np.ndarray:
    """Snapshot node positions in the trace-wide dense id space."""
    index = snapshot.trace.stream_index()
    return np.searchsorted(index.node_ids, snapshot.node_ids)


def node_idle_times(snapshot: Snapshot) -> np.ndarray:
    """Idle time of every node (aligned with ``node_list``).

    Memoised on the snapshot cache: the delta engine seeds the column from
    its incrementally maintained last-activity table (bitwise what this
    kernel computes — a running ``maximum.at`` is exact for float64), and
    repeat calls within one snapshot reuse the first pass.
    """
    cached = snapshot.cache.get("node_idle_times")
    if cached is not None:
        return cached
    trace = snapshot.trace
    _, _, times = trace.columns()
    index = trace.stream_index()
    now = snapshot.time
    upto = int(np.searchsorted(times, now, side="right"))
    last = np.full(len(index.node_ids), -np.inf)
    np.maximum.at(last, index.eu[:upto], times[:upto])
    np.maximum.at(last, index.ev[:upto], times[:upto])
    idle = now - last[_global_positions(snapshot)]
    # A snapshot node always has an edge at or before the snapshot time,
    # but guard the never-active case (matches TemporalGraph.idle_time).
    missing = np.flatnonzero(~np.isfinite(idle))
    if len(missing):
        node_list = snapshot.node_list
        for i in missing:
            idle[i] = now - trace.node_arrival_time(node_list[int(i)])
    snapshot.cache["node_idle_times"] = idle
    return idle


def node_recent_edges(snapshot: Snapshot, window: float) -> np.ndarray:
    """Recent edge count of every node (aligned with ``node_list``)."""
    trace = snapshot.trace
    _, _, times = trace.columns()
    index = trace.stream_index()
    now = snapshot.time
    hi = int(np.searchsorted(times, now, side="right"))
    lo = int(np.searchsorted(times, now - window, side="right"))
    counts = np.bincount(
        np.concatenate((index.eu[lo:hi], index.ev[lo:hi])),
        minlength=len(index.node_ids),
    )
    return counts[_global_positions(snapshot)].astype(np.float64)


def cn_time_gap(snapshot: Snapshot, u: int, v: int) -> float:
    """Days since ``(u, v)`` last gained a common neighbour (inf if none)."""
    nu, nv = snapshot.neighbors(u), snapshot.neighbors(v)
    common = nu & nv if len(nu) < len(nv) else nv & nu
    if not common:
        return np.inf
    trace = snapshot.trace
    latest = max(
        max(trace.edge_time(u, w), trace.edge_time(v, w)) for w in common
    )
    return snapshot.time - latest


def pair_activity(
    snapshot: Snapshot,
    pairs: np.ndarray,
    window: float,
    compute_cn_gap: bool = True,
    cn_gap_mask: "np.ndarray | None" = None,
) -> PairActivity:
    """Compute activity features for candidate ``pairs`` at a snapshot.

    Node-level quantities are vectorised; the common-neighbour gap requires
    per-pair set intersections, so ``cn_gap_mask`` lets callers restrict it
    to pairs that survived the (cheap) node-level criteria — the evaluation
    order the temporal filter uses.
    """
    idle = node_idle_times(snapshot)
    recent = node_recent_edges(snapshot, window)
    pairs = np.asarray(pairs, dtype=np.int64)
    rows = snapshot.positions_of(pairs[:, 0])
    cols = snapshot.positions_of(pairs[:, 1])
    idle_u, idle_v = idle[rows], idle[cols]
    active_idle = np.minimum(idle_u, idle_v)
    inactive_idle = np.maximum(idle_u, idle_v)
    # The "active" endpoint is the one with smaller idle time.
    u_active = idle_u <= idle_v
    recent_edges = np.where(u_active, recent[rows], recent[cols])
    gaps = np.full(len(pairs), np.inf)
    if compute_cn_gap:
        index = (
            np.flatnonzero(cn_gap_mask) if cn_gap_mask is not None else range(len(pairs))
        )
        for i in index:
            gaps[i] = cn_time_gap(snapshot, int(pairs[i, 0]), int(pairs[i, 1]))
    return PairActivity(
        active_idle=active_idle,
        inactive_idle=inactive_idle,
        recent_edges=recent_edges,
        cn_gap=gaps,
    )
