"""Per-pair temporal activity features (Section 6.1).

For a candidate pair ``(u, v)`` observed at snapshot time ``t``:

- the *active* node is the endpoint with the smaller idle time, the
  *inactive* node the other one;
- ``recent_edges`` counts edges the active node created in the last ``d``
  days;
- the *CN time gap* is ``t`` minus the most recent time the pair gained a
  common neighbour (the arrival time of common neighbour ``w`` is
  ``max(t_{uw}, t_{vw})``); pairs with no common neighbour get ``inf``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.snapshots import Snapshot


@dataclass
class PairActivity:
    """Vectorised activity features for a batch of candidate pairs."""

    active_idle: np.ndarray     # idle time of the fresher endpoint (days)
    inactive_idle: np.ndarray   # idle time of the staler endpoint (days)
    recent_edges: np.ndarray    # active endpoint's edges in the window
    cn_gap: np.ndarray          # days since last common-neighbour arrival

    def __len__(self) -> int:
        return len(self.active_idle)


def node_idle_times(snapshot: Snapshot) -> np.ndarray:
    """Idle time of every node (aligned with ``node_list``)."""
    return np.asarray(
        [snapshot.idle_time(u) for u in snapshot.node_list], dtype=np.float64
    )


def node_recent_edges(snapshot: Snapshot, window: float) -> np.ndarray:
    """Recent edge count of every node (aligned with ``node_list``)."""
    return np.asarray(
        [snapshot.recent_edge_count(u, window) for u in snapshot.node_list],
        dtype=np.float64,
    )


def cn_time_gap(snapshot: Snapshot, u: int, v: int) -> float:
    """Days since ``(u, v)`` last gained a common neighbour (inf if none)."""
    nu, nv = snapshot.neighbors(u), snapshot.neighbors(v)
    common = nu & nv if len(nu) < len(nv) else nv & nu
    if not common:
        return np.inf
    trace = snapshot.trace
    latest = max(
        max(trace.edge_time(u, w), trace.edge_time(v, w)) for w in common
    )
    return snapshot.time - latest


def pair_activity(
    snapshot: Snapshot,
    pairs: np.ndarray,
    window: float,
    compute_cn_gap: bool = True,
    cn_gap_mask: "np.ndarray | None" = None,
) -> PairActivity:
    """Compute activity features for candidate ``pairs`` at a snapshot.

    Node-level quantities are vectorised; the common-neighbour gap requires
    per-pair set intersections, so ``cn_gap_mask`` lets callers restrict it
    to pairs that survived the (cheap) node-level criteria — the evaluation
    order the temporal filter uses.
    """
    idle = node_idle_times(snapshot)
    recent = node_recent_edges(snapshot, window)
    pos = snapshot.node_pos
    rows = np.fromiter((pos[int(u)] for u in pairs[:, 0]), dtype=np.int64, count=len(pairs))
    cols = np.fromiter((pos[int(v)] for v in pairs[:, 1]), dtype=np.int64, count=len(pairs))
    idle_u, idle_v = idle[rows], idle[cols]
    active_idle = np.minimum(idle_u, idle_v)
    inactive_idle = np.maximum(idle_u, idle_v)
    # The "active" endpoint is the one with smaller idle time.
    u_active = idle_u <= idle_v
    recent_edges = np.where(u_active, recent[rows], recent[cols])
    gaps = np.full(len(pairs), np.inf)
    if compute_cn_gap:
        index = (
            np.flatnonzero(cn_gap_mask) if cn_gap_mask is not None else range(len(pairs))
        )
        for i in index:
            gaps[i] = cn_time_gap(snapshot, int(pairs[i, 0]), int(pairs[i, 1]))
    return PairActivity(
        active_idle=active_idle,
        inactive_idle=inactive_idle,
        recent_edges=recent_edges,
        cn_gap=gaps,
    )
