"""Time-series based link prediction [10] (the Section 6.3 baseline).

For each candidate pair the base similarity metric is evaluated at several
equally spaced past time points; the per-pair score series is then
aggregated into a single prediction score.  The paper implements the two
best aggregations from [10]:

- **MA** (moving average): mean of the series,
- **LR** (linear regression): fit a line to the series and extrapolate one
  step ahead,

with the spacing equal to the gap between consecutive snapshots.  The
wrapper conforms to the :class:`~repro.metrics.base.SimilarityMetric`
protocol, so it drops into ``evaluate_step`` like any ordinary metric —
including *with* a temporal filter on top, which is how Fig. 16's four-way
comparison (Basic/Time-Model x unfiltered/filtered) is produced.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import SimilarityMetric, get_metric


def _linear_extrapolate(series: np.ndarray) -> np.ndarray:
    """Per-row OLS line fit over t = 0..w-1, evaluated at t = w.

    ``series`` is ``(n_pairs, w)``; returns the predicted next value of
    each row.  With w == 1 this degenerates to the last observation.
    """
    n, w = series.shape
    if w == 1:
        return series[:, 0].copy()
    t = np.arange(w, dtype=np.float64)
    t_mean = t.mean()
    y_mean = series.mean(axis=1)
    denom = float(np.sum((t - t_mean) ** 2))
    slope = (series - y_mean[:, None]) @ (t - t_mean) / denom
    return y_mean + slope * (w - t_mean)


class TimeSeriesMetric(SimilarityMetric):
    """Wrap a base metric with MA or LR aggregation over past snapshots.

    Parameters
    ----------
    base:
        Name of the underlying similarity metric (e.g. ``"RA"``).
    aggregation:
        ``"ma"`` (moving average) or ``"lr"`` (linear regression).
    points:
        Number of past time points (including the fitted snapshot itself).
    spacing_days:
        Gap between time points; ``None`` uses the paper's rule — the same
        number of days as between the two most recent snapshots, inferred
        at ``fit`` time from a tenth of the trace span as a fallback.
    """

    candidate_strategy = "two_hop"

    def __init__(
        self,
        base: str = "RA",
        aggregation: str = "ma",
        points: int = 3,
        spacing_days: "float | None" = None,
    ) -> None:
        super().__init__()
        if aggregation not in ("ma", "lr"):
            raise ValueError(f"aggregation must be 'ma' or 'lr', got {aggregation!r}")
        if points < 1:
            raise ValueError(f"points must be >= 1, got {points}")
        self.base_name = base
        self.aggregation = aggregation
        self.points = points
        self.spacing_days = spacing_days
        self.name = f"{base}+{aggregation.upper()}"
        prototype = get_metric(base)
        self.candidate_strategy = prototype.candidate_strategy

    def _past_snapshots(self, snapshot: Snapshot) -> list[Snapshot]:
        """The fitted snapshot plus earlier cuts at the configured spacing."""
        spacing = self.spacing_days
        if spacing is None:
            spacing = max(1.0, (snapshot.time - snapshot.trace.start_time) / 10.0)
        history = [snapshot]
        for i in range(1, self.points):
            target = snapshot.time - i * spacing
            cutoff = snapshot.trace.edge_index_at_time(target)
            if cutoff < 1:
                break
            history.append(Snapshot(snapshot.trace, cutoff, index=-i))
        history.reverse()  # oldest first
        return history

    def fit(self, snapshot: Snapshot) -> "TimeSeriesMetric":
        self.snapshot = snapshot
        self._history = self._past_snapshots(snapshot)
        self._fitted = []
        for snap in self._history:
            metric = get_metric(self.base_name)
            metric.fit(snap)
            self._fitted.append(metric)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        self._require_fit()
        if len(pairs) == 0:
            return np.zeros(0)
        series = np.zeros((len(pairs), len(self._fitted)))
        for j, (snap, metric) in enumerate(zip(self._history, self._fitted)):
            # Pairs whose endpoints did not exist yet score 0 at that point.
            exists = np.fromiter(
                (snap.has_node(int(u)) and snap.has_node(int(v)) for u, v in pairs),
                dtype=bool,
                count=len(pairs),
            )
            if exists.any():
                series[exists, j] = metric.score(pairs[exists])
        if self.aggregation == "ma":
            return series.mean(axis=1)
        return _linear_extrapolate(series)
