"""The 4-criterion temporal filter (Section 6.2).

A candidate pair survives the filter only if *all* of the following hold:

1. idle time of the active node  < ``d_act`` days,
2. idle time of the inactive node < ``d_inact`` days,
3. the active node created >= ``min_new_edges`` edges in the last
   ``window`` days,
4. the pair gained a common neighbour less than ``d_cn`` days ago —
   applied only to pairs that *have* a common neighbour (pairs beyond two
   hops skip this criterion, per the paper's footnote).

The filter is a drop-in :data:`~repro.eval.experiment.PairFilter`: pass it
as ``pair_filter=`` to ``evaluate_step`` /
``ClassificationPredictor.predict_step``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.temporal.activity import pair_activity

#: Table 7 of the paper: per-network thresholds discovered on the original
#: traces.  Included for reference; synthetic traces have a compressed time
#: scale, so use :func:`repro.temporal.calibrate.calibrate_filter` to derive
#: thresholds instead of reusing these.
PAPER_PARAMS = {
    "facebook": dict(d_act=15, d_inact=40, window=21, min_new_edges=2, d_cn=40),
    "youtube": dict(d_act=3, d_inact=30, window=7, min_new_edges=3, d_cn=20),
    "renren": dict(d_act=3, d_inact=20, window=7, min_new_edges=3, d_cn=10),
}


@dataclass(frozen=True)
class FilterParams:
    """Thresholds of one temporal filter (one row of Table 7)."""

    d_act: float          # max idle time of the active node (days)
    d_inact: float        # max idle time of the inactive node (days)
    window: float         # recent-activity window d (days)
    min_new_edges: float  # min edges the active node created in the window
    d_cn: float           # max days since the last common-neighbour arrival

    def __post_init__(self) -> None:
        for field_name in ("d_act", "d_inact", "window", "d_cn"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.min_new_edges < 0:
            raise ValueError("min_new_edges must be non-negative")

    @classmethod
    def paper(cls, network: str) -> "FilterParams":
        """The original Table 7 thresholds for ``network``."""
        return cls(**PAPER_PARAMS[network])


class TemporalFilter:
    """Callable pair filter implementing Section 6.2."""

    def __init__(self, params: FilterParams) -> None:
        self.params = params

    def __call__(self, snapshot: Snapshot, pairs: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over ``pairs``.

        Node-level criteria run first (vectorised); the per-pair
        common-neighbour gap is only computed for their survivors.
        """
        if len(pairs) == 0:
            return np.zeros(0, dtype=bool)
        p = self.params
        activity = pair_activity(
            snapshot, pairs, window=p.window, compute_cn_gap=False
        )
        keep = (
            (activity.active_idle < p.d_act)
            & (activity.inactive_idle < p.d_inact)
            & (activity.recent_edges >= p.min_new_edges)
        )
        if keep.any():
            survivors = pair_activity(
                snapshot,
                pairs,
                window=p.window,
                compute_cn_gap=True,
                cn_gap_mask=keep,
            )
            # Pairs with no common neighbour (gap = inf) skip criterion 4.
            has_cn = np.isfinite(survivors.cn_gap)
            keep &= ~has_cn | (survivors.cn_gap < p.d_cn)
        return keep

    def reduction(self, snapshot: Snapshot, pairs: np.ndarray) -> float:
        """Fraction of candidates removed (the search-space saving)."""
        if len(pairs) == 0:
            return 0.0
        return 1.0 - float(self(snapshot, pairs).mean())

    def __repr__(self) -> str:
        return f"TemporalFilter({self.params})"
