"""Threshold discovery for the temporal filter (Table 7's methodology).

The paper picks thresholds where the positive-pair CDF has climbed steeply
while the negative-pair CDF has not (e.g. ">90% of positive pairs have
<3 days idle time, only 40% of negative pairs do").  The same rule is
automated here: each threshold is the ``coverage`` quantile of the positive
pairs' distribution, which by construction retains that share of true
positives while discarding the bulk of negatives.

"While each parameter is network specific, the methodology to discover them
is general" — this module *is* that methodology.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.temporal.activity import pair_activity
from repro.temporal.filters import FilterParams
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng


def positive_negative_pairs(
    snapshot: Snapshot,
    truth: "set[Pair]",
    candidates: np.ndarray,
    negative_sample: int = 5000,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Split candidates into positives (in ``truth``) and sampled negatives."""
    generator = ensure_rng(rng)
    truth_set = truth
    is_positive = np.fromiter(
        ((int(u), int(v)) in truth_set for u, v in candidates),
        dtype=bool,
        count=len(candidates),
    )
    positives = candidates[is_positive]
    negatives = candidates[~is_positive]
    if len(negatives) > negative_sample:
        idx = generator.choice(len(negatives), size=negative_sample, replace=False)
        negatives = negatives[idx]
    return positives, negatives


def calibrate_filter(
    snapshot: Snapshot,
    truth: "set[Pair]",
    candidates: np.ndarray,
    window: "float | None" = None,
    coverage: float = 0.9,
    rng: "int | np.random.Generator | None" = None,
) -> FilterParams:
    """Derive :class:`FilterParams` from one observed prediction step.

    ``window`` defaults to the snapshot spacing implied by the trace (about
    one snapshot's worth of days); ``coverage`` is the share of positive
    pairs each criterion must retain (the paper's plots use ~90%).
    """
    if not 0 < coverage < 1:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    if len(candidates) == 0:
        raise ValueError("cannot calibrate on an empty candidate set")
    positives, _negatives = positive_negative_pairs(
        snapshot, truth, candidates, rng=rng
    )
    if len(positives) == 0:
        raise ValueError("no positive pairs among candidates; cannot calibrate")
    if window is None:
        # Heuristic default: a tenth of the observed history, at least a day.
        window = max(1.0, (snapshot.time - snapshot.trace.start_time) / 10.0)
    activity = pair_activity(snapshot, positives, window=window)
    pct = 100.0 * coverage
    d_act = float(np.percentile(activity.active_idle, pct))
    d_inact = float(np.percentile(activity.inactive_idle, pct))
    min_new_edges = float(np.percentile(activity.recent_edges, 100.0 - pct))
    finite_gaps = activity.cn_gap[np.isfinite(activity.cn_gap)]
    d_cn = float(np.percentile(finite_gaps, pct)) if len(finite_gaps) else window
    # Guard against degenerate zero thresholds on bursty traces.
    eps = 1e-6
    return FilterParams(
        d_act=max(d_act, eps),
        d_inact=max(d_inact, eps),
        window=window,
        min_new_edges=min_new_edges,
        d_cn=max(d_cn, eps),
    )
