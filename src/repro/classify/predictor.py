"""The classification-based prediction pipeline (Section 5.1).

Training and evaluation follow the paper's three-snapshot protocol:

1. snowball-sample a node set from ``G_{t-2}`` (seed node fixed);
2. re-sample ``G_{t-1}`` *with the same seed* so train/test populations
   align;
3. train on pairs among the ``G_{t-2}`` sample, labelled by connectivity in
   ``G_{t-1}``, with negatives undersampled at ratio theta;
4. score all unconnected pairs among the ``G_{t-1}`` sample, take the top-k
   (k = true new-edge count inside the sample), compare against ``G_t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classify.features import FeatureExtractor
from repro.classify.sampling import labeled_pairs, undersample_indices
from repro.eval.accuracy import score_prediction
from repro.eval.experiment import MetricStepResult, PairFilter
from repro.eval.ranking import top_k_pairs
from repro.graph.sampling import snowball_sample
from repro.graph.snapshots import Snapshot, new_edges_between
from repro.metrics import CLASSIFIER_FEATURES
from repro.metrics.candidates import random_nonedge_pairs
from repro.ml import CLASSIFIERS, StandardScaler
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng


@dataclass
class SampledInstance:
    """One train/test data instance (a row of Table 6)."""

    train_view: Snapshot   # sampled G_{t-2}
    label_view: Snapshot   # sampled G_{t-1} (labels for training)
    test_view: Snapshot    # sampled G_{t-1} (candidate universe for testing)
    truth: set[Pair]       # new edges of G_t among test_view's nodes
    seed_node: int

    @property
    def k(self) -> int:
        return len(self.truth)


def sampled_instance(
    g_prev2: Snapshot,
    g_prev1: Snapshot,
    g_next: Snapshot,
    fraction: float = 1.0,
    rng: "int | np.random.Generator | None" = None,
    seed_node: "int | None" = None,
) -> SampledInstance:
    """Build a snowball-sampled instance from three consecutive snapshots.

    ``fraction=1.0`` keeps every node (the paper's Facebook setting);
    smaller fractions reproduce the p=2% sampling used for Renren/YouTube.
    """
    generator = ensure_rng(rng)
    if fraction >= 1.0:
        train_view, label_view, test_view = g_prev2, g_prev1, g_prev1
        seed = -1
    else:
        nodes_prev2 = snowball_sample(g_prev2, fraction, seed_node=seed_node, rng=generator)
        # Reuse the same seed on the next snapshot (Section 5.1).
        seed = seed_node if seed_node is not None else min(nodes_prev2)
        if seed not in nodes_prev2:
            seed = min(nodes_prev2)
        nodes_prev1 = snowball_sample(g_prev1, fraction, seed_node=seed, rng=generator)
        train_view = g_prev2.subgraph(nodes_prev2)
        label_view = g_prev1.subgraph(nodes_prev1 | nodes_prev2)
        test_view = g_prev1.subgraph(nodes_prev1)
    fresh = new_edges_between(g_prev1, g_next)
    truth = {
        (u, v) for (u, v) in fresh if test_view.has_node(u) and test_view.has_node(v)
    }
    return SampledInstance(
        train_view=train_view,
        label_view=label_view,
        test_view=test_view,
        truth=truth,
        seed_node=seed,
    )


class ClassificationPredictor:
    """A trained classifier over similarity-metric features.

    Parameters
    ----------
    classifier:
        ``"SVM"``, ``"LR"``, ``"NB"`` or ``"RF"`` (the paper's four), or a
        ready classifier instance following the :mod:`repro.ml` protocol.
    theta:
        Undersampling ratio as a fraction (``1/50`` reproduces the paper's
        "1:50"); ``None`` trains on the full imbalanced pair set.
    log_features:
        Apply ``log1p`` to the heavy-tailed non-negative feature columns
        (the library default — see
        :class:`~repro.classify.features.FeatureExtractor`).  ``False``
        reproduces the paper-faithful raw-feature configuration, whose
        accuracy is far more sensitive to the undersampling ratio
        (Fig. 10's phenomenon).
    """

    def __init__(
        self,
        classifier: str = "SVM",
        theta: "float | None" = 0.01,
        feature_names=CLASSIFIER_FEATURES,
        seed: "int | np.random.Generator | None" = None,
        log_features: bool = True,
    ) -> None:
        if isinstance(classifier, str):
            try:
                factory = CLASSIFIERS[classifier]
            except KeyError:
                raise KeyError(
                    f"unknown classifier {classifier!r}; choose from {sorted(CLASSIFIERS)}"
                ) from None
            self.classifier = factory()
            self.classifier_name = classifier
        else:
            self.classifier = classifier
            self.classifier_name = type(classifier).__name__
        self.theta = theta
        self.extractor = FeatureExtractor(feature_names, log_transform=log_features)
        self.scaler = StandardScaler()
        self.rng = ensure_rng(seed)
        self._trained = False

    # ------------------------------------------------------------------
    def train(self, train_view: Snapshot, label_view: Snapshot) -> "ClassificationPredictor":
        """Fit on candidate pairs of ``train_view`` labelled by ``label_view``.

        The full-candidate feature matrix is cached on the snapshot, so
        training several predictors (different classifiers, thetas, seeds)
        against the same view computes the similarity features only once.
        """
        pairs, features_all = self.extractor.compute_for_candidates(train_view)
        labels = labeled_pairs(train_view, label_view, pairs)
        if labels.sum() == 0:
            raise ValueError(
                "no positive pairs between the training snapshots; "
                "use a larger sample or a later snapshot"
            )
        if self.theta is not None:
            keep = undersample_indices(labels, self.theta, self.rng)
            features, labels = features_all[keep], labels[keep]
        else:
            features = features_all
        self.classifier.fit(self.scaler.fit_transform(features), labels)
        self._trained = True
        return self

    def score_pairs(self, view: Snapshot, pairs: np.ndarray) -> np.ndarray:
        """Decision scores for candidate pairs of ``view``."""
        if not self._trained:
            raise RuntimeError("ClassificationPredictor: call train() first")
        if len(pairs) == 0:
            return np.zeros(0)
        features = self.extractor.compute(view, pairs)
        return self.classifier.decision_function(self.scaler.transform(features))

    def feature_weights(self) -> np.ndarray:
        """Normalised |coefficients| per feature (linear classifiers only)."""
        coef = getattr(self.classifier, "coef_", None)
        if coef is None:
            raise RuntimeError(
                f"{self.classifier_name} exposes no linear coefficients"
            )
        magnitude = np.abs(coef)
        return magnitude / magnitude.sum() if magnitude.sum() else magnitude

    # ------------------------------------------------------------------
    def predict_step(
        self,
        test_view: Snapshot,
        truth: "set[Pair]",
        rng: "int | np.random.Generator | None" = None,
        pair_filter: "PairFilter | None" = None,
        step: int = 0,
    ) -> MetricStepResult:
        """Top-k prediction on the test view, scored against ground truth."""
        if not self._trained:
            raise RuntimeError("ClassificationPredictor: call train() first")
        generator = ensure_rng(rng)
        pairs, features = self.extractor.compute_for_candidates(test_view)
        if pair_filter is not None and len(pairs):
            mask = np.asarray(pair_filter(test_view, pairs), dtype=bool)
            pairs, features = pairs[mask], features[mask]
        k = len(truth)
        scores = (
            self.classifier.decision_function(self.scaler.transform(features))
            if len(pairs)
            else np.zeros(0)
        )
        top = top_k_pairs(pairs, scores, k, generator)
        predicted = {(int(u), int(v)) for u, v in top}
        fill = 0
        if len(predicted) < k:
            filler = random_nonedge_pairs(test_view, k - len(predicted), generator, exclude=predicted)
            fill = len(filler)
            predicted.update(filler)
            top = np.asarray(sorted(predicted), dtype=np.int64).reshape(-1, 2)
        outcome = score_prediction(test_view, predicted, truth)
        return MetricStepResult(
            metric=self.classifier_name,
            step=step,
            snapshot_time=test_view.time,
            outcome=outcome,
            predicted=top,
            random_fill=fill,
        )

    def evaluate_instance(
        self,
        instance: SampledInstance,
        rng: "int | np.random.Generator | None" = None,
        pair_filter: "PairFilter | None" = None,
    ) -> MetricStepResult:
        """Train on the instance's train/label views and test in one call."""
        self.train(instance.train_view, instance.label_view)
        return self.predict_step(
            instance.test_view, instance.truth, rng=rng, pair_filter=pair_filter
        )
