"""Training-set construction: labelling and undersampling (Section 5.2).

Link formation is extremely imbalanced (the paper measures ~1:100,000
positive:negative in its snapshots).  Training uses the standard
undersampling remedy [15]: keep every positive pair, subsample negatives to
a target ratio theta.  Section 5.2's finding — accuracy improves as theta
approaches the true imbalance, up to ~5x over balanced 1:1 sampling — is one
of the headline reproduction targets (Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.utils.rng import ensure_rng


def labeled_pairs(
    observed: Snapshot, future: Snapshot, pairs: np.ndarray
) -> np.ndarray:
    """Label candidate ``pairs`` of ``observed``: 1 if connected in ``future``.

    ``pairs`` must be unconnected in ``observed`` (candidate pairs); the
    label says whether the pair closed by the ``future`` snapshot.
    """
    return np.fromiter(
        (1 if future.has_edge(int(u), int(v)) else 0 for u, v in pairs),
        dtype=np.int64,
        count=len(pairs),
    )


def undersample_indices(
    labels: np.ndarray,
    theta: float,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Row indices of an undersampled training set.

    Keeps every positive row and subsamples negatives to
    ``neg = pos / theta``; returns a shuffled index array usable against
    any row-aligned structure (pairs, feature matrices, labels).
    """
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    labels = np.asarray(labels)
    pos_idx = np.flatnonzero(labels == 1)
    neg_idx = np.flatnonzero(labels == 0)
    if len(pos_idx) == 0:
        raise ValueError("undersampling requires at least one positive pair")
    target_neg = int(round(len(pos_idx) / theta))
    generator = ensure_rng(rng)
    if target_neg < len(neg_idx):
        neg_idx = generator.choice(neg_idx, size=target_neg, replace=False)
    keep = np.concatenate([pos_idx, neg_idx])
    generator.shuffle(keep)
    return keep


def undersample(
    pairs: np.ndarray,
    labels: np.ndarray,
    theta: float,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Keep all positives, subsample negatives to ``neg = pos / theta``.

    ``theta`` is the paper's undersampling ratio written as a fraction:
    ``theta = 1/50`` means a 1:50 positive:negative training set.  If the
    requested number of negatives exceeds the available pool, all negatives
    are kept (matching how the paper's largest ratios saturate).
    """
    labels = np.asarray(labels)
    if len(pairs) != len(labels):
        raise ValueError("pairs and labels must align")
    keep = undersample_indices(labels, theta, rng)
    return pairs[keep], labels[keep]


def sampled_candidate_pairs(view: Snapshot) -> np.ndarray:
    """All unconnected pairs among a (possibly sampled) snapshot's nodes."""
    from repro.metrics.candidates import all_nonedge_pairs

    return all_nonedge_pairs(view)


def true_imbalance(observed: Snapshot, future: Snapshot) -> float:
    """The dataset's actual positive:negative ratio (as a fraction).

    Used to report how far an undersampling theta is from reality, e.g.
    the paper's ~1:100,000.
    """
    pairs = sampled_candidate_pairs(observed)
    labels = labeled_pairs(observed, future, pairs)
    positives = int(labels.sum())
    negatives = len(labels) - positives
    if negatives == 0:
        raise ValueError("no negative pairs: graph is complete")
    return positives / negatives
