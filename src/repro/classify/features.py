"""Feature-matrix construction for classification-based prediction.

Each node pair's feature vector is its score under every similarity metric
of Table 3 (the paper's 14 features).  Feature computation dominates the
cost of classification-based prediction — the same observation the paper
makes — so the extractor fits each metric once per snapshot and scores all
pairs in vectorised batches.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics import CLASSIFIER_FEATURES
from repro.metrics.base import get_metric
from repro.metrics.kernels import score_pairs


class FeatureExtractor:
    """Computes the (n_pairs, n_metrics) feature matrix for node pairs.

    ``log_transform=True`` (default) applies ``log1p`` to every wholly
    non-negative feature column before it is returned.  Several similarity
    metrics are extremely heavy-tailed (PA spans 6 orders of magnitude on a
    supernode network); without the transform, z-scaling flattens exactly
    the tail that top-k prediction rewards and linear classifiers lose
    ranking power on disassortative networks.
    """

    def __init__(
        self,
        metric_names: Sequence[str] = CLASSIFIER_FEATURES,
        log_transform: bool = True,
    ) -> None:
        if not metric_names:
            raise ValueError("at least one feature metric is required")
        self.metric_names = tuple(metric_names)
        self.log_transform = log_transform

    def compute_for_candidates(self, snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
        """Features for *all* unconnected pairs of ``snapshot``, cached.

        Returns ``(pairs, features)``.  Training at several undersampling
        ratios and repeated prediction sweeps all draw their rows from this
        one matrix, so the 14-metric computation happens once per snapshot
        (feature computation dominates classification cost — the paper
        makes the same observation about its own pipeline).
        """
        from repro.metrics.base import cached
        from repro.metrics.candidates import all_nonedge_pairs

        pairs = all_nonedge_pairs(snapshot)
        key = ("features", self.log_transform) + self.metric_names
        features = cached(snapshot, key, lambda: self.compute(snapshot, pairs))
        return pairs, features

    def compute(self, snapshot: Snapshot, pairs: np.ndarray) -> np.ndarray:
        """Feature matrix of ``pairs`` as scored on ``snapshot``.

        Columns follow ``self.metric_names``.  Non-finite scores (e.g. the
        -inf of SP on disconnected pairs) are mapped to large-magnitude
        finite sentinels so downstream classifiers never see inf/NaN.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or (len(pairs) and pairs.shape[1] != 2):
            raise ValueError(f"pairs must be (n, 2), got shape {pairs.shape}")
        features = np.empty((len(pairs), len(self.metric_names)), dtype=np.float64)
        for j, name in enumerate(self.metric_names):
            metric = get_metric(name)
            metric.fit(snapshot)
            # Batched kernel route: every feature column scores the same
            # pair array, so the shared common-neighbour expansion is paid
            # once per snapshot and reused across all metric columns.
            column = score_pairs(metric, snapshot, pairs)
            finite = np.isfinite(column)
            if not finite.all():
                bound = np.abs(column[finite]).max() if finite.any() else 1.0
                column = np.where(
                    np.isneginf(column), -10.0 * bound - 1.0,
                    np.where(np.isposinf(column), 10.0 * bound + 1.0, column),
                )
                column = np.nan_to_num(column)
            if self.log_transform and len(column) and column.min() >= 0:
                column = np.log1p(column)
            features[:, j] = column
        return features
