"""Classification-based link prediction (Section 5).

The pipeline trains a binary classifier on the transition
``G_{t-2} -> G_{t-1}`` (features computed on ``G_{t-2}``, labels = connected
in ``G_{t-1}``) and predicts the transition ``G_{t-1} -> G_t``.  Scaling
measures from the paper are built in: snowball sampling of the node
population (Section 5.1) and undersampling of the negative class at a ratio
theta (Section 5.2).
"""

from repro.classify.features import FeatureExtractor
from repro.classify.predictor import ClassificationPredictor, sampled_instance
from repro.classify.sampling import labeled_pairs, undersample, undersample_indices
from repro.classify.sequence import (
    compare_classifiers_on_sequence,
    evaluate_classifier_sequence,
)

__all__ = [
    "FeatureExtractor",
    "ClassificationPredictor",
    "sampled_instance",
    "labeled_pairs",
    "undersample",
    "undersample_indices",
    "evaluate_classifier_sequence",
    "compare_classifiers_on_sequence",
]
