"""Sequence-level evaluation of classification-based prediction.

The paper evaluates classifiers on a handful of hand-picked instances
(Table 6) because feature computation at their scale is expensive.  At
this library's scale we can afford the classifier analogue of the
metric-based sequence experiment: for every consecutive snapshot triple
``(G_{t-2}, G_{t-1}, G_t)``, train on the first transition and test on the
second.  Averaging over the whole sequence gives far more stable numbers
than single instances — the benchmark for Fig. 9 uses this.

Feature matrices are cached per snapshot
(:meth:`~repro.classify.features.FeatureExtractor.compute_for_candidates`),
so evaluating several classifiers over the same sequence pays the feature
cost once per snapshot, not once per classifier.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.classify.predictor import ClassificationPredictor
from repro.eval.experiment import MetricStepResult, PairFilter
from repro.graph.snapshots import Snapshot, new_edges_between
from repro.utils.rng import ensure_rng


def classifier_steps(snapshots: Sequence[Snapshot]):
    """Yield ``(train_view, label/test view, truth)`` for each triple."""
    for g2, g1, g0 in zip(snapshots, snapshots[1:], snapshots[2:]):
        yield g2, g1, new_edges_between(g1, g0)


def evaluate_classifier_sequence(
    classifier: str,
    snapshots: Sequence[Snapshot],
    theta: "float | None" = 0.01,
    seed: "int | np.random.Generator | None" = 0,
    pair_filter: "PairFilter | None" = None,
    max_steps: "int | None" = None,
) -> list[MetricStepResult]:
    """Run one classifier over every consecutive snapshot triple.

    Each step trains a fresh model (the paper's protocol — classifiers are
    snapshot-local, not incrementally updated) and predicts the next
    transition's top-k.
    """
    rng = ensure_rng(seed)
    results: list[MetricStepResult] = []
    for i, (train_view, test_view, truth) in enumerate(classifier_steps(snapshots)):
        if max_steps is not None and i >= max_steps:
            break
        if not truth:
            continue  # nothing to predict in this interval
        predictor = ClassificationPredictor(classifier, theta=theta, seed=rng)
        try:
            predictor.train(train_view, test_view)
        except ValueError:
            continue  # no positive training pairs in this interval
        step = predictor.predict_step(
            test_view, truth, rng=rng, pair_filter=pair_filter, step=i
        )
        results.append(step)
    return results


def compare_classifiers_on_sequence(
    classifiers: Sequence[str],
    snapshots: Sequence[Snapshot],
    theta: "float | None" = 0.01,
    seed: int = 0,
    max_steps: "int | None" = None,
) -> dict[str, float]:
    """Mean accuracy ratio per classifier over the sequence."""
    out = {}
    for name in classifiers:
        results = evaluate_classifier_sequence(
            name, snapshots, theta=theta, seed=seed, max_steps=max_steps
        )
        out[name] = float(np.mean([r.ratio for r in results])) if results else 0.0
    return out
