"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of the protocol for the serving layer: request-line +
headers + optional ``Content-Length`` body on the way in, status +
headers + body on the way out, with keep-alive honoured.  Chunked
transfer encoding, expect/continue, and multipart are deliberately out
of scope — a malformed or unsupported request gets a clean 4xx instead
of a stack trace, and every parse limit is explicit so a hostile peer
cannot make the server buffer unboundedly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: request-line + single-header length cap (matches asyncio's default
#: StreamReader limit, so readline() can never overrun it).
MAX_LINE_BYTES = 64 * 1024
#: header-count cap; more than this is a malformed or hostile request.
MAX_HEADERS = 100

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed HTTP from the peer; the handler answers ``status``."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str
    path: str
    params: "dict[str, str]" = field(default_factory=dict)
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> "Request | None":
    """Parse one request; None on clean EOF (peer closed between requests)."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(400, "request line too long") from None
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, "malformed request line")
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        if len(headers) > MAX_HEADERS:
            raise ProtocolError(400, "too many headers")
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "non-integer Content-Length") from None
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                413, f"body of {length} bytes exceeds the {max_body_bytes} cap"
            )
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "transfer encodings are not supported")

    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=split.path,
        params=params,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: "dict[str, str] | None" = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response, Content-Length framed.

    A ``Content-Type`` entry in ``headers`` overrides the default
    instead of duplicating the header (used by the Prometheus text
    endpoint).
    """
    extra = dict(headers or {})
    for name in list(extra):
        if name.lower() == "content-type":
            content_type = extra.pop(name)
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: dict) -> bytes:
    """Canonical JSON body.

    ``json.dumps`` emits shortest-round-trip float literals, so every
    float64 score crosses the wire bit-exactly — the property the
    serve-vs-batch parity suite asserts.
    """
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def error_body(status: int, detail: str, **extra) -> bytes:
    payload = {"error": REASONS.get(status, "error"), "detail": detail}
    payload.update(extra)
    return json_body(payload)
