"""Bounded admission queue with an explicit reject-newest overload policy.

The server's only buffering point.  Every /predict and /ingest request
must win a queue slot *before* any work is scheduled on its behalf;
when the queue is full the newest request is rejected immediately with
429 + ``Retry-After`` — the server never buffers unboundedly, so memory
stays flat and queue wait (the latency a request inherits from the
backlog) is bounded by ``queue_size / service_rate``.

Reject-newest (rather than drop-oldest) is deliberate: the oldest
queued requests have burned the most deadline budget already, but they
are also the ones whose clients have waited longest and are closest to
being served; rejecting the newcomer gives every *admitted* request an
unchanged position and keeps the 429 decision O(1) at the door, where
the client can still cheaply retry against another replica.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import monotonic


class DeadlineExceeded(Exception):
    """An admitted request could not finish within its deadline budget."""


@dataclass
class Job:
    """One admitted unit of work travelling through the queue.

    ``run`` is a zero-argument callable returning an awaitable; the
    worker awaits it under the remaining deadline.  ``future`` carries
    the outcome back to the connection handler, which enforces the same
    deadline from its side — whichever side notices expiry first wins,
    and ``abandoned`` lets a worker skip a request whose client has
    already been answered with 504.
    """

    name: str
    run: "object"
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float
    abandoned: bool = False
    started_at: "float | None" = None

    def remaining(self, now: "float | None" = None) -> float:
        return self.deadline_at - (monotonic() if now is None else now)


@dataclass
class AdmissionStats:
    """Counters the queue maintains; exposed on /statz and as metrics."""

    admitted: int = 0
    shed: int = 0
    expired_in_queue: int = 0
    max_depth: int = 0


class AdmissionQueue:
    """A bounded FIFO of :class:`Job` with shed accounting.

    ``try_admit`` never blocks: the overload decision is made at the
    door.  Workers ``get`` jobs; the sentinel pushed by ``close`` wakes
    each worker exactly once during drain.
    """

    _SENTINEL = object()

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        # +workers sentinels may transiently exceed maxsize during drain;
        # an unbounded asyncio.Queue guarded by our own bound keeps the
        # close path free of blocking puts.
        self._queue: asyncio.Queue = asyncio.Queue()
        self._live = 0
        self.stats = AdmissionStats()

    @property
    def depth(self) -> int:
        """Number of admitted jobs not yet picked up by a worker."""
        return self._live

    def try_admit(self, job: Job) -> bool:
        """Admit ``job`` or reject it (the caller answers 429)."""
        if self._live >= self.maxsize:
            self.stats.shed += 1
            return False
        self._live += 1
        self.stats.admitted += 1
        self.stats.max_depth = max(self.stats.max_depth, self._live)
        self._queue.put_nowait(job)
        return True

    async def get(self) -> "Job | None":
        """Next job, or None when the queue has been closed (drain)."""
        item = await self._queue.get()
        if item is self._SENTINEL:
            return None
        self._live -= 1
        return item

    def close(self, workers: int) -> None:
        """Wake ``workers`` pending getters with a shutdown sentinel."""
        for _ in range(workers):
            self._queue.put_nowait(self._SENTINEL)
