"""Tiny HTTP/1.1 client for the serving layer (stdlib only).

Used by the robustness tests, the parity suite, and the load bench.
Deliberately symmetrical with :mod:`repro.serve.protocol`: one request
per call, ``Content-Length`` framing, no chunked bodies.  The async
path (:func:`request`) is what the open-loop bench drives — thousands
of concurrent in-flight requests on one event loop; :func:`sync_request`
wraps ``http.client`` for plain scripts and CI smoke checks.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from dataclasses import dataclass, field


@dataclass
class ClientResponse:
    """One parsed response."""

    status: int
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body)

    @property
    def degraded(self) -> bool:
        return "x-repro-degraded" in self.headers


def _request_bytes(
    method: str,
    target: str,
    body: "bytes | None",
    headers: "dict[str, str] | None",
    host: str,
    close: bool,
) -> bytes:
    lines = [
        f"{method} {target} HTTP/1.1",
        f"Host: {host}",
    ]
    if close:
        lines.append("Connection: close")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    payload = body or b""
    if payload or method in ("POST", "PUT"):
        lines.append(f"Content-Length: {len(payload)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


async def _read_response(reader: asyncio.StreamReader) -> ClientResponse:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before responding")
    parts = status_line.decode("latin-1").split(" ", 2)
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").rstrip("\r\n").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0"))
    if length:
        body = await reader.readexactly(length)
    return ClientResponse(status=status, headers=headers, body=body)


async def request(
    host: str,
    port: int,
    method: str,
    target: str,
    *,
    body: "bytes | None" = None,
    headers: "dict[str, str] | None" = None,
    timeout: float = 30.0,
) -> ClientResponse:
    """One request over a fresh connection (``Connection: close``)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        writer.write(
            _request_bytes(method, target, body, headers, host, close=True)
        )
        await writer.drain()
        return await asyncio.wait_for(_read_response(reader), timeout=timeout)
    finally:
        writer.close()


def sync_request(
    host: str,
    port: int,
    method: str,
    target: str,
    *,
    body: "bytes | None" = None,
    headers: "dict[str, str] | None" = None,
    timeout: float = 30.0,
) -> ClientResponse:
    """Blocking variant via ``http.client`` (scripts, CI smoke checks)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, target, body=body, headers=headers or {})
        raw = conn.getresponse()
        return ClientResponse(
            status=raw.status,
            headers={k.lower(): v for k, v in raw.getheaders()},
            body=raw.read(),
        )
    finally:
        conn.close()
