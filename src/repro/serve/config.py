"""Serving-layer configuration with fail-fast validation.

Every overload-policy knob of the server lives in one frozen dataclass so
the CLI, tests, and the load bench configure identical machinery.  The
defaults are deliberately conservative: a small bounded queue, a
one-second deadline, and a worker pool sized off ``REPRO_JOBS`` (the same
environment variable the batch runner's process pool honours) — a server
that starts with no flags at all still sheds instead of buffering
unboundedly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields

#: environment variable the worker pool is sized from (shared with the
#: batch runner's process pool).
JOBS_ENV_VAR = "REPRO_JOBS"


def default_workers() -> int:
    """Worker pool size: ``REPRO_JOBS`` if set, else min(4, cpu count)."""
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR}={env!r} is not an integer"
            ) from None
        if value < 1:
            raise ValueError(f"{JOBS_ENV_VAR} must be >= 1, got {value}")
        return value
    return max(1, min(4, os.cpu_count() or 1))


@dataclass(frozen=True)
class ServeConfig:
    """All serving knobs; validated eagerly on construction."""

    #: bind address / port (0 = ephemeral, the bound port is reported).
    host: str = "127.0.0.1"
    port: int = 8080
    #: admission-queue bound; a full queue rejects the *newest* request
    #: with 429 + Retry-After rather than buffering it.
    queue_size: int = 64
    #: scoring worker pool size (None = resolve via :func:`default_workers`).
    workers: "int | None" = None
    #: default per-request deadline budget (queue wait + execution).
    deadline_s: float = 1.0
    #: largest deadline a client may request via ``?deadline_ms=``.
    max_deadline_s: float = 30.0
    #: drain budget after SIGTERM: in-flight requests get this long.
    drain_s: float = 5.0
    #: Retry-After hint attached to 429 shed responses.
    retry_after_s: float = 1.0
    #: consecutive write failures that trip the circuit breaker.
    breaker_threshold: int = 5
    #: seconds the tripped breaker stays open before a half-open probe.
    breaker_cooldown_s: float = 30.0
    #: audit the delta engine after every Nth accepted batch (0 = never).
    audit_every: int = 0
    #: ingest policy name applied to POST /ingest bodies.
    policy: str = "default"
    #: largest k a /predict request may ask for.
    max_k: int = 1000
    #: largest accepted request body (bytes).
    max_body_bytes: int = 1 << 20
    #: idle keep-alive timeout per connection.
    keepalive_s: float = 30.0
    #: periodic telemetry span flush interval (0 disables the flusher).
    telemetry_flush_s: float = 1.0
    #: WAL directory (None = in-memory only, no durability).
    wal_dir: "str | None" = None
    #: WAL fsync cadence: "always" (fsync before every ack), "interval"
    #: (group commit every ``fsync_interval_s``), "never" (kernel only).
    fsync: str = "always"
    #: group-commit interval for ``fsync="interval"``.
    fsync_interval_s: float = 0.05
    #: checkpoint after every Nth WAL-logged batch (0 = only on drain).
    checkpoint_every: int = 64
    #: checkpoints retained on disk (older ones pruned).
    checkpoint_keep: int = 3
    #: resolved at construction; access via ``resolved_workers``.
    _workers_resolved: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        positive_ints = {
            "queue_size": self.queue_size,
            "breaker_threshold": self.breaker_threshold,
            "max_k": self.max_k,
            "max_body_bytes": self.max_body_bytes,
        }
        for name, value in positive_ints.items():
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        positive_floats = {
            "deadline_s": self.deadline_s,
            "max_deadline_s": self.max_deadline_s,
            "drain_s": self.drain_s,
            "retry_after_s": self.retry_after_s,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "keepalive_s": self.keepalive_s,
        }
        for name, value in positive_floats.items():
            if not float(value) > 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if not isinstance(self.port, int) or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port!r}")
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ValueError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if self.audit_every < 0:
            raise ValueError(
                f"audit_every must be >= 0, got {self.audit_every!r}"
            )
        if self.telemetry_flush_s < 0:
            raise ValueError(
                f"telemetry_flush_s must be >= 0, got {self.telemetry_flush_s!r}"
            )
        if self.fsync not in ("always", "interval", "never"):
            raise ValueError(
                f"fsync must be 'always', 'interval', or 'never', got "
                f"{self.fsync!r}"
            )
        if not float(self.fsync_interval_s) > 0:
            raise ValueError(
                f"fsync_interval_s must be positive, got {self.fsync_interval_s!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every!r}"
            )
        if not isinstance(self.checkpoint_keep, int) or self.checkpoint_keep < 1:
            raise ValueError(
                f"checkpoint_keep must be a positive integer, got "
                f"{self.checkpoint_keep!r}"
            )
        if self.deadline_s > self.max_deadline_s:
            raise ValueError(
                f"deadline_s ({self.deadline_s}) exceeds max_deadline_s "
                f"({self.max_deadline_s})"
            )
        object.__setattr__(
            self,
            "_workers_resolved",
            self.workers if self.workers is not None else default_workers(),
        )

    @property
    def resolved_workers(self) -> int:
        return self._workers_resolved

    def describe(self) -> dict:
        """JSON-safe dump of the effective configuration (for /statz)."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.init and f.name != "workers"
        }
        out["workers"] = self.resolved_workers
        return out
