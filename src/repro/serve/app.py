"""The asyncio HTTP server: overload-safe online link prediction.

Request lifecycle::

    accept -> parse -> [health/ready/stat/metric answered inline]
           -> admission queue (bounded; full -> 429 + Retry-After)
           -> worker task (bounded pool, sized off REPRO_JOBS)
           -> score store (thread executor; writes serialised + breaker)
           -> response (deadline enforced end to end; expiry -> 504)

Robustness machinery, all explicit and separately testable:

- **Admission control** (:mod:`repro.serve.admission`): one bounded
  queue in front of all /predict and /ingest work; reject-newest with
  429 + ``Retry-After`` once full.  Health endpoints bypass it so
  orchestrators can still probe an overloaded server.
- **Deadlines**: every admitted request carries a budget covering queue
  wait *and* execution.  The connection side awaits the outcome under
  ``asyncio.wait_for`` and answers 504 the moment the budget expires —
  a hung score lookup can never wedge the response path.  Workers skip
  jobs whose client was already answered.
- **Bounded workers**: ``workers`` asyncio consumer tasks paired with a
  same-sized thread pool for the CPU-bound scoring calls.  A lookup
  that ignores cancellation occupies one thread until it returns, but
  the admission bound keeps the total exposure finite.
- **Circuit breaker** (:mod:`repro.serve.breaker`): consecutive write
  failures open it; writes then shed fast with 503 while reads keep
  serving the last-good snapshot with a ``X-Repro-Degraded`` header.
  ``/readyz`` turns 503 (route traffic away), ``/healthz`` stays 200
  (do not restart a still-useful process).
- **Graceful drain**: SIGTERM stops the listener, lets in-flight
  requests finish inside ``drain_s``, then flushes telemetry sinks.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from time import monotonic

from repro import telemetry
from repro.serve import protocol
from repro.serve.admission import AdmissionQueue, DeadlineExceeded, Job
from repro.serve.breaker import OPEN, BreakerOpen, CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.protocol import ProtocolError, Request, error_body, json_body
from repro.serve.store import (
    IngestRejected,
    ScoreStore,
    StoreWriteError,
    UnknownNodeError,
)
from repro.telemetry.metrics import SECONDS_BUCKETS

#: header announcing degraded (stale-snapshot) reads while the breaker
#: is open or half-open.
DEGRADED_HEADER = "X-Repro-Degraded"

#: (status, body, extra headers) — the shape every route handler returns.
Response = "tuple[int, bytes, dict]"


class ServerStats:
    """Plain counters mirrored to /statz (and telemetry when enabled)."""

    def __init__(self) -> None:
        self.requests = 0
        self.responses: dict[int, int] = {}
        self.deadline_misses = 0
        self.write_failures = 0
        self.drained_clean: "bool | None" = None

    def count(self, status: int) -> None:
        self.responses[status] = self.responses.get(status, 0) + 1

    def describe(self) -> dict:
        return {
            "requests": self.requests,
            "responses": {str(k): v for k, v in sorted(self.responses.items())},
            "deadline_misses": self.deadline_misses,
            "write_failures": self.write_failures,
        }


class LinkPredictionServer:
    """One server instance bound to a :class:`ScoreStore`."""

    def __init__(
        self, store: ScoreStore, config: ServeConfig, *, recovery=None
    ) -> None:
        self.store = store
        self.config = config
        #: pending :class:`~repro.serve.durability.RecoveryPlan` — while
        #: set, reads serve the checkpoint snapshot with a "recovering"
        #: degraded header, writes 503, and /readyz stays unready until
        #: the background replay + audit completes.
        self._recovery_plan = recovery
        self._recovering = recovery is not None
        self._recovery_error: "str | None" = None
        self._recovery_result: "dict | None" = None
        self._recovery_task: "asyncio.Task | None" = None
        self._durability_task: "asyncio.Task | None" = None
        self.queue = AdmissionQueue(config.queue_size)
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown_s
        )
        self.stats = ServerStats()
        self.port: "int | None" = None
        self._executor = ThreadPoolExecutor(
            max_workers=config.resolved_workers,
            thread_name_prefix="repro-serve",
        )
        self._write_lock = asyncio.Lock()
        self._draining = False
        self._shutdown = asyncio.Event()
        self._server: "asyncio.base_events.Server | None" = None
        self._worker_tasks: "list[asyncio.Task]" = []
        self._flusher_task: "asyncio.Task | None" = None
        self._connections: "set[asyncio.StreamWriter]" = set()
        # in-flight *requests* (not connections): an idle keep-alive
        # connection must not hold up a drain.
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_at = monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.ensure_future(self._worker_loop())
            for _ in range(self.config.resolved_workers)
        ]
        if telemetry.tracer.enabled and self.config.telemetry_flush_s:
            self._flusher_task = asyncio.ensure_future(self._flush_loop())
        if self._recovering:
            self._recovery_task = asyncio.ensure_future(self._recover())
        if self.store.durability is not None and self.config.fsync == "interval":
            self._durability_task = asyncio.ensure_future(self._durability_loop())

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (call from loop signal handlers)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> bool:
        """Block until :meth:`request_shutdown`, then drain; True = clean."""
        await self._shutdown.wait()
        return await self.drain()

    async def drain(self) -> bool:
        """Stop accepting, finish in-flight within the budget, flush.

        Returns True when every in-flight request completed inside
        ``drain_s``; False when stragglers had to be abandoned.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.config.drain_s)
        except asyncio.TimeoutError:
            clean = False
        # Wake connections parked in read_request (idle keep-alive peers);
        # closing the transport EOFs their reader and ends their loop.
        for writer in list(self._connections):
            writer.close()
        self.queue.close(len(self._worker_tasks))
        for task in self._worker_tasks:
            try:
                await asyncio.wait_for(task, timeout=1.0)
            except asyncio.TimeoutError:
                task.cancel()
                clean = False
        if self._flusher_task is not None:
            self._flusher_task.cancel()
        if self._durability_task is not None:
            self._durability_task.cancel()
        if self._recovery_task is not None and not self._recovery_task.done():
            # a drain mid-recovery waits for the replay (bounded by the
            # same budget) so the final checkpoint reflects it.
            try:
                await asyncio.wait_for(self._recovery_task, self.config.drain_s)
            except asyncio.TimeoutError:
                self._recovery_task.cancel()
                clean = False
        # final fsync + checkpoint: a cleanly drained server restarts
        # from a checkpoint instead of replaying its whole WAL.
        self.store.finalize_durability()
        self._executor.shutdown(wait=False)
        self.stats.drained_clean = clean
        telemetry.flush()
        return clean

    async def _flush_loop(self) -> None:
        """Periodically push buffered telemetry spans to the trace sink."""
        while True:
            await asyncio.sleep(self.config.telemetry_flush_s)
            telemetry.flush()

    async def _durability_loop(self) -> None:
        """Group-commit heartbeat: fsync pending WAL records each interval."""
        manager = self.store.durability
        while True:
            await asyncio.sleep(self.config.fsync_interval_s)
            await asyncio.get_running_loop().run_in_executor(
                self._executor, manager.tick
            )

    async def _recover(self) -> None:
        """Background WAL replay: checkpoint state is already serving reads.

        Runs under the write lock (no ingest can interleave), replays the
        surviving records into the engine, audits, and only then flips
        the server ready.  Failure — a replay error or a dirty audit —
        leaves the server permanently degraded (reads keep the checkpoint
        snapshot, writes stay 503) rather than serving unverified state;
        /readyz reports the reason so orchestrators route traffic away.
        """
        plan = self._recovery_plan
        loop = asyncio.get_running_loop()
        started = monotonic()
        async with self._write_lock:
            try:
                result = await loop.run_in_executor(
                    self._executor, self.store.replay_wal, plan.records
                )
            except Exception as exc:  # noqa: BLE001 — recovery verdict
                self._recovery_error = f"{type(exc).__name__}: {exc}"
                if telemetry.metrics.enabled:
                    telemetry.metrics.counter("serve.recovery_failures").inc()
                return
            self._recovery_result = {
                **plan.describe(),
                **result,
                "duration_s": round(monotonic() - started, 6),
            }
            self._recovering = False
        if telemetry.tracer.enabled:
            telemetry.tracer.record(
                "serve.recovery", started, monotonic(), attrs=plan.describe()
            )

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            job = await self.queue.get()
            if job is None:
                return
            if job.abandoned or job.future.done():
                self.queue.stats.expired_in_queue += 1
                continue
            now = monotonic()
            remaining = job.remaining(now)
            if remaining <= 0:
                self.queue.stats.expired_in_queue += 1
                if not job.future.done():
                    job.future.set_exception(DeadlineExceeded(job.name))
                continue
            job.started_at = now
            try:
                result = await asyncio.wait_for(job.run(), timeout=remaining)
            except asyncio.TimeoutError:
                if not job.future.done():
                    job.future.set_exception(DeadlineExceeded(job.name))
            except Exception as exc:  # noqa: BLE001 — forwarded to the conn
                if not job.future.done():
                    job.future.set_exception(exc)
            else:
                if not job.future.done():
                    job.future.set_result(result)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        protocol.read_request(reader, self.config.max_body_bytes),
                        timeout=self.config.keepalive_s,
                    )
                except asyncio.TimeoutError:
                    break
                except ProtocolError as exc:
                    writer.write(
                        protocol.response_bytes(
                            exc.status,
                            error_body(exc.status, exc.detail),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                if self._draining:
                    writer.write(
                        protocol.response_bytes(
                            503,
                            error_body(503, "server is draining"),
                            headers={"Retry-After": "1"},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                self._active_requests += 1
                self._idle.clear()
                try:
                    started = monotonic()
                    status, body, headers = await self._dispatch(request)
                    self._observe(request, status, started)
                finally:
                    self._active_requests -= 1
                    if self._active_requests == 0:
                        self._idle.set()
                keep = request.keep_alive and not self._draining
                try:
                    writer.write(
                        protocol.response_bytes(
                            status, body, headers=headers, keep_alive=keep
                        )
                    )
                    await writer.drain()
                except ConnectionError:
                    break
                if not keep:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()

    def _observe(self, request: Request, status: int, started: float) -> None:
        self.stats.requests += 1
        self.stats.count(status)
        ended = monotonic()
        if telemetry.tracer.enabled:
            # record(), not span(): the tracer's span stack is for nested
            # synchronous phases and would corrupt under interleaved
            # async requests.  Retroactive admission has no such state.
            telemetry.tracer.record(
                "serve.request",
                started,
                ended,
                attrs={
                    "path": request.path,
                    "method": request.method,
                    "status": status,
                },
            )
        if telemetry.metrics.enabled:
            telemetry.metrics.counter(
                "serve.requests", path=request.path, status=str(status)
            ).inc()
            telemetry.metrics.histogram(
                "serve.latency_seconds", bounds=SECONDS_BUCKETS, path=request.path
            ).observe(ended - started)
            telemetry.metrics.gauge("serve.queue_depth").set(self.queue.depth)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Response:
        path, method = request.path, request.method
        if path == "/healthz":
            return self._healthz() if method == "GET" else _method_not_allowed("GET")
        if path == "/readyz":
            return self._readyz() if method == "GET" else _method_not_allowed("GET")
        if path == "/statz":
            return self._statz() if method == "GET" else _method_not_allowed("GET")
        if path == "/metricz":
            return self._metricz() if method == "GET" else _method_not_allowed("GET")
        if path == "/predict":
            if method != "GET":
                return _method_not_allowed("GET")
            return await self._predict(request)
        if path == "/ingest":
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._ingest(request)
        return 404, error_body(404, f"no route for {path}"), {}

    def _degraded_headers(self) -> dict:
        if self._recovering:
            return {DEGRADED_HEADER: "recovering"}
        if self.breaker.degraded:
            return {DEGRADED_HEADER: "stale-snapshot"}
        return {}

    def _healthz(self) -> Response:
        payload = {
            "status": "ok",
            "uptime_s": round(monotonic() - self._started_at, 3),
            "snapshot_edges": self.store.snapshot.num_edges,
        }
        return 200, json_body(payload), self._degraded_headers()

    def _readyz(self) -> Response:
        reasons = []
        if self._draining:
            reasons.append("draining")
        if self._recovering:
            if self._recovery_error is not None:
                reasons.append(f"recovery failed: {self._recovery_error}")
            else:
                reasons.append("recovering")
        if self.breaker.degraded:
            reasons.append(f"breaker {self.breaker.state}")
        if not reasons:
            return 200, json_body({"ready": True}), {}
        return (
            503,
            json_body({"ready": False, "reasons": reasons}),
            {"Retry-After": "1", **self._degraded_headers()},
        )

    def _statz(self) -> Response:
        payload = {
            "config": self.config.describe(),
            "store": self.store.describe(),
            "queue": {
                "depth": self.queue.depth,
                "maxsize": self.queue.maxsize,
                "admitted": self.queue.stats.admitted,
                "shed": self.queue.stats.shed,
                "expired_in_queue": self.queue.stats.expired_in_queue,
                "max_depth": self.queue.stats.max_depth,
            },
            "breaker": self.breaker.describe(),
            "server": self.stats.describe(),
        }
        if self.store.durability is not None:
            durability = self.store.durability.describe()
            durability["recovering"] = self._recovering
            if self._recovery_error is not None:
                durability["recovery_error"] = self._recovery_error
            if self._recovery_result is not None:
                durability["recovery"] = self._recovery_result
            payload["durability"] = durability
        return 200, json_body(payload), {}

    def _metricz(self) -> Response:
        if not telemetry.metrics.enabled:
            return (
                404,
                error_body(404, "telemetry is off; start with --telemetry"),
                {},
            )
        text = telemetry.prometheus_text(telemetry.metrics.payloads())
        return (
            200,
            text.encode("utf-8"),
            {"Content-Type": "text/plain; version=0.0.4"},
        )

    # ------------------------------------------------------------------
    # Admitted endpoints
    # ------------------------------------------------------------------
    def _deadline_s(self, request: Request) -> float:
        raw = request.params.get("deadline_ms")
        if raw is None:
            return self.config.deadline_s
        try:
            value = float(raw) / 1000.0
        except ValueError:
            raise ProtocolError(400, f"deadline_ms {raw!r} is not a number") from None
        if value <= 0:
            raise ProtocolError(400, "deadline_ms must be positive")
        return min(value, self.config.max_deadline_s)

    async def _predict(self, request: Request) -> Response:
        try:
            u = int(request.params["u"])
        except KeyError:
            return 400, error_body(400, "missing required parameter u"), {}
        except ValueError:
            return (
                400,
                error_body(400, f"u={request.params['u']!r} is not an integer"),
                {},
            )
        try:
            k = int(request.params.get("k", "10"))
        except ValueError:
            return (
                400,
                error_body(400, f"k={request.params['k']!r} is not an integer"),
                {},
            )
        if not 1 <= k <= self.config.max_k:
            return (
                400,
                error_body(400, f"k must be in [1, {self.config.max_k}], got {k}"),
                {},
            )
        metric = request.params.get("metric", "RA")
        try:
            deadline_s = self._deadline_s(request)
        except ProtocolError as exc:
            return exc.status, error_body(exc.status, exc.detail), {}

        loop = asyncio.get_running_loop()

        def run():
            return loop.run_in_executor(
                self._executor, self.store.predict, u, k, metric
            )

        status, body, headers = await self._admitted("predict", run, deadline_s)
        return status, body, {**headers, **self._degraded_headers()}

    async def _ingest(self, request: Request) -> Response:
        if self._recovering:
            # writes would race the WAL replay (and, post-recovery-
            # failure, extend unverified state); reads stay up degraded.
            detail = (
                "recovery failed; server is read-only"
                if self._recovery_error is not None
                else "recovering from WAL; write path not yet open"
            )
            return (
                503,
                error_body(503, detail),
                {"Retry-After": "1", **self._degraded_headers()},
            )
        # Fast-fail at the door only in the *open* state, via the
        # non-consuming state property — the half-open probe slot is
        # claimed later, under the write lock, by the worker that will
        # actually perform the write.
        if self.breaker.state == OPEN:
            retry = max(1, round(self.breaker.retry_after()))
            return (
                503,
                error_body(503, "write path open (circuit breaker)"),
                {"Retry-After": str(retry), **self._degraded_headers()},
            )
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError:
            return 400, error_body(400, "body is not valid UTF-8"), {}
        try:
            deadline_s = self._deadline_s(request)
        except ProtocolError as exc:
            return exc.status, error_body(exc.status, exc.detail), {}
        status, body, headers = await self._admitted(
            "ingest", lambda: self._guarded_ingest(text), deadline_s
        )
        return status, body, {**headers, **self._degraded_headers()}

    async def _guarded_ingest(self, text: str):
        """Serialised write with breaker bookkeeping.

        Runs inside a worker under the request deadline.  The breaker is
        consulted again under the lock — its state may have changed while
        the job sat in the queue, and in half-open this is the call that
        claims the single probe slot.
        """
        async with self._write_lock:
            if not self.breaker.allow():
                raise BreakerOpen(self.breaker.retry_after())
            loop = asyncio.get_running_loop()
            if self.store.poisoned:
                # recovery before the probe write: restore the engine
                # from the last-good snapshot an audit failure left us.
                await loop.run_in_executor(self._executor, self.store.resync)
            try:
                payload = await loop.run_in_executor(
                    self._executor, self.store.ingest_lines, text
                )
            except IngestRejected:
                # client error (strict-policy violation), not write-path
                # sickness: hand back the probe, leave the counters be.
                self.breaker.release_probe()
                raise
            except Exception as exc:
                self.stats.write_failures += 1
                self.breaker.record_failure()
                if telemetry.metrics.enabled:
                    telemetry.metrics.counter("serve.write_failures").inc()
                if isinstance(exc, StoreWriteError):
                    raise
                raise StoreWriteError(f"{type(exc).__name__}: {exc}") from exc
            self.breaker.record_success()
            if self.store.durability is not None:
                # cadence-gated; still under the write lock so the
                # checkpointed trace is exactly the WAL's sequence.
                await loop.run_in_executor(
                    self._executor, self.store.checkpoint_if_due
                )
            return payload

    async def _admitted(self, name: str, run, deadline_s: float) -> Response:
        """Queue one unit of work and await it under the deadline."""
        now = monotonic()
        loop = asyncio.get_running_loop()
        job = Job(
            name=name,
            run=run,
            future=loop.create_future(),
            enqueued_at=now,
            deadline_at=now + deadline_s,
        )
        if not self.queue.try_admit(job):
            if telemetry.metrics.enabled:
                telemetry.metrics.counter("serve.shed").inc()
            retry = max(1, round(self.config.retry_after_s))
            return (
                429,
                error_body(
                    429,
                    "admission queue full",
                    queue_depth=self.queue.depth,
                    queue_size=self.queue.maxsize,
                ),
                {"Retry-After": str(retry)},
            )
        try:
            result = await asyncio.wait_for(job.future, timeout=deadline_s)
        except (asyncio.TimeoutError, DeadlineExceeded):
            job.abandoned = True
            self.stats.deadline_misses += 1
            if telemetry.metrics.enabled:
                telemetry.metrics.counter("serve.deadline_misses").inc()
            return (
                504,
                error_body(
                    504, f"deadline of {deadline_s:.3f}s exceeded", endpoint=name
                ),
                {},
            )
        except UnknownNodeError as exc:
            return 404, error_body(404, f"unknown node {exc.args[0]}"), {}
        except KeyError as exc:
            return 400, error_body(400, f"unknown metric: {exc.args[0]}"), {}
        except IngestRejected as exc:
            return (
                400,
                error_body(
                    400, str(exc), error_class=exc.error_class, line=exc.lineno
                ),
                {},
            )
        except BreakerOpen as exc:
            retry = max(1, round(exc.retry_after))
            return 503, error_body(503, str(exc)), {"Retry-After": str(retry)}
        except StoreWriteError as exc:
            return 500, error_body(500, str(exc)), {}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            return 500, error_body(500, f"{type(exc).__name__}: {exc}"), {}
        if name == "predict":
            queue_wait = (job.started_at or job.enqueued_at) - job.enqueued_at
            result["queue_wait_ms"] = round(queue_wait * 1000.0, 3)
        return 200, json_body(result), {}


def _method_not_allowed(allowed: str) -> "tuple[int, bytes, dict]":
    return 405, error_body(405, f"use {allowed}"), {"Allow": allowed}


def stats_snapshot(server: LinkPredictionServer) -> dict:
    """Convenience: the /statz payload as a dict (used by the bench)."""
    status, body, _headers = server._statz()
    assert status == 200
    return json.loads(body)
