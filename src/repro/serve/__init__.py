"""repro.serve — overload-safe online serving of link-prediction scores.

The serving counterpart of the batch pipeline: a stdlib-only asyncio
HTTP service that answers top-k neighbour predictions from a
DeltaGraph-backed score store and accepts edge batches through the same
ingest taxonomy and delta engine the offline path uses — so a served
score is byte-identical to what ``run_experiment`` computes on the same
prefix.

Layout (each robustness mechanism is its own importable, testable unit):

====================  ==================================================
:mod:`~.config`       ``ServeConfig`` — validated knobs, REPRO_JOBS pool
                      sizing
:mod:`~.admission`    bounded queue, reject-newest 429 policy, deadline
                      bookkeeping
:mod:`~.breaker`      write-path circuit breaker (closed/open/half-open)
:mod:`~.store`        ``ScoreStore`` — last-good snapshot reads, policied
                      delta writes, fault hooks
:mod:`~.durability`   ``DurabilityManager`` — WAL group commit, checkpoint
                      cadence, startup recovery plans
:mod:`~.protocol`     minimal HTTP/1.1 framing over asyncio streams
:mod:`~.app`          ``LinkPredictionServer`` — routing, workers, drain
:mod:`~.client`       async + sync HTTP clients (tests, bench, smoke)
:mod:`~.harness`      in-process server on a background loop (tests,
                      bench)
====================  ==================================================

Entry point: ``python -m repro serve --trace edges.txt --port 8080``.
"""

from repro.serve.admission import AdmissionQueue, DeadlineExceeded, Job
from repro.serve.app import DEGRADED_HEADER, LinkPredictionServer
from repro.serve.breaker import BreakerOpen, CircuitBreaker
from repro.serve.client import ClientResponse, request, sync_request
from repro.serve.config import ServeConfig, default_workers
from repro.serve.durability import DurabilityManager, RecoveryPlan
from repro.serve.harness import ServerHarness
from repro.serve.store import (
    INGEST_FAULT_KEY,
    PREDICT_FAULT_KEY,
    IngestRejected,
    ScoreStore,
    StoreWriteError,
    UnknownNodeError,
)

__all__ = [
    "AdmissionQueue",
    "BreakerOpen",
    "CircuitBreaker",
    "ClientResponse",
    "DEGRADED_HEADER",
    "DeadlineExceeded",
    "DurabilityManager",
    "RecoveryPlan",
    "INGEST_FAULT_KEY",
    "IngestRejected",
    "Job",
    "LinkPredictionServer",
    "PREDICT_FAULT_KEY",
    "ScoreStore",
    "ServeConfig",
    "ServerHarness",
    "StoreWriteError",
    "UnknownNodeError",
    "default_workers",
    "request",
    "sync_request",
]
