"""Serving-side durability: WAL lifecycle, group commit, checkpoint cadence.

:mod:`repro.graph.wal` knows how to frame, scan, checkpoint, and replay;
this module decides *when* — the policy layer the server and the
:class:`~repro.serve.store.ScoreStore` share:

- **fsync cadence** (the latency/durability trade the operator picks):
  ``always`` fsyncs every accepted batch before the ack (RPO = 0 acked
  events, the default), ``interval`` group-commits — appends are
  acknowledged from the OS buffer and a background tick fsyncs every
  ``fsync_interval_s`` (RPO = one interval of acked batches on power
  loss; a plain process crash loses nothing since the kernel still owns
  the buffered pages), ``never`` leaves syncing to the kernel (bench /
  bulk-load only).
- **checkpoint cadence**: every ``checkpoint_every`` accepted batches the
  manager fsyncs the WAL (a checkpoint must never cover records that
  could still be lost — otherwise recovery would start *ahead* of the
  replayable log) and atomically writes a column-only checkpoint stamped
  with the covered WAL sequence, then prunes to ``checkpoint_keep``.
- **startup** (:meth:`DurabilityManager.attach`): open or create the WAL
  directory.  An existing log is scanned (torn tail truncated, never
  counted as loss — its records were never acknowledged as durable) and
  returned as a :class:`RecoveryPlan`: the newest valid checkpoint's
  columns to serve degraded reads from *immediately*, plus the surviving
  records past it for the server to replay in the background before
  ``/readyz`` flips healthy.

Thread-safety: the server serialises ingest (and therefore
:meth:`record_batch` / :meth:`maybe_checkpoint`) under its asyncio write
lock, but the interval-fsync tick runs on the event loop thread while
appends run on executor threads — an internal mutex makes every manager
entry point atomic.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from time import monotonic

import numpy as np

from repro import telemetry
from repro.graph.dyngraph import TemporalGraph
from repro.graph.wal import (
    WAL_FILE,
    WalRecord,
    WalTail,
    WriteAheadLog,
    newest_valid_checkpoint,
    prune_checkpoints,
    wal_fingerprint,
    write_checkpoint,
)

#: accepted fsync cadences.
FSYNC_MODES = ("always", "interval", "never")


@dataclass
class RecoveryPlan:
    """What :meth:`DurabilityManager.attach` found in an existing WAL dir.

    ``start_trace`` is the newest valid checkpoint's columns (``None``
    when recovery starts from the base trace); ``records`` are the
    surviving WAL records *past* that checkpoint, to be replayed through
    the store before the server reports ready.
    """

    start_trace: "TemporalGraph | None"
    checkpoint_seq: int
    records: "list[WalRecord]" = field(default_factory=list)
    tail: "WalTail | None" = None
    total_records: int = 0

    @property
    def events(self) -> int:
        return sum(len(r) for r in self.records)

    def describe(self) -> dict:
        return {
            "checkpoint_seq": self.checkpoint_seq,
            "wal_records": self.total_records,
            "records_to_replay": len(self.records),
            "events_to_replay": self.events,
            "torn_bytes": self.tail.torn_bytes if self.tail else 0,
        }


class DurabilityManager:
    """Owns one WAL directory on behalf of a serving process."""

    def __init__(
        self,
        directory: str,
        wal: WriteAheadLog,
        *,
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
        checkpoint_every: int = 64,
        checkpoint_keep: int = 3,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"fsync mode must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        self.directory = directory
        self.wal = wal
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.last_checkpoint_seq = 0
        self.checkpoints_written = 0
        self._lock = threading.Lock()
        self._last_sync_at = monotonic()
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        directory: "str | os.PathLike[str]",
        base_trace: TemporalGraph,
        policy,
        *,
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
        checkpoint_every: int = 64,
        checkpoint_keep: int = 3,
    ) -> "tuple[DurabilityManager, RecoveryPlan | None]":
        """Open (or create) a WAL directory bound to ``base_trace``+policy.

        Returns the manager plus a :class:`RecoveryPlan` when a WAL
        already existed — ``None`` means a fresh directory with nothing
        to replay.  Raises :class:`~repro.graph.wal.WalMismatchError`
        when the directory belongs to a different trace or policy, and
        :class:`~repro.graph.wal.WalCorruptError` on mid-file damage a
        crash cannot explain (an operator decision, not something to
        silently repair).
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        fingerprint = wal_fingerprint(base_trace, policy)
        wal_path = os.path.join(directory, WAL_FILE)
        plan: "RecoveryPlan | None" = None
        if os.path.exists(wal_path):
            wal, records, tail = WriteAheadLog.open(wal_path, fingerprint)
            checkpoint = newest_valid_checkpoint(
                directory, fingerprint, max_seq=len(records)
            )
            if checkpoint is not None:
                start_trace = TemporalGraph.from_columns(
                    checkpoint["u"],
                    checkpoint["v"],
                    checkpoint["t"],
                    validated=True,
                )
                checkpoint_seq = int(checkpoint["seq"])
            else:
                start_trace = None
                checkpoint_seq = 0
            plan = RecoveryPlan(
                start_trace=start_trace,
                checkpoint_seq=checkpoint_seq,
                records=[r for r in records if r.seq > checkpoint_seq],
                tail=tail,
                total_records=len(records),
            )
        else:
            wal = WriteAheadLog.create(
                wal_path, fingerprint, meta={"base_edges": int(base_trace.num_edges)}
            )
            checkpoint_seq = 0
        manager = cls(
            directory,
            wal,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            checkpoint_every=checkpoint_every,
            checkpoint_keep=checkpoint_keep,
        )
        manager.last_checkpoint_seq = checkpoint_seq
        return manager, plan

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def record_batch(self, events: "list[tuple[int, int, float]]") -> "int | None":
        """Durably log one accepted batch; returns its WAL sequence.

        Empty batches (everything screened away) are not logged — replay
        of a no-op record would waste recovery time for nothing.  Under
        the ``always`` cadence the record is fsynced before this returns,
        so the caller's ack implies durability; under ``interval`` /
        ``never`` the record is in the OS buffer and the durability lag
        gauge ticks up until the next sync.
        """
        if not events:
            return None
        count = len(events)
        u = np.fromiter((e[0] for e in events), dtype=np.int64, count=count)
        v = np.fromiter((e[1] for e in events), dtype=np.int64, count=count)
        t = np.fromiter((e[2] for e in events), dtype=np.float64, count=count)
        with self._lock:
            seq = self.wal.append(u, v, t)
            if self.fsync == "always":
                self.wal.sync()
                self._last_sync_at = monotonic()
            self._observe_lag()
        return seq

    def tick(self) -> bool:
        """Group-commit heartbeat: fsync when the interval has elapsed.

        Called periodically by the server's background loop; a no-op
        unless the cadence is ``interval`` and unsynced records exist.
        Returns True when it synced.
        """
        if self.fsync != "interval":
            return False
        with self._lock:
            if self.wal.pending_records == 0:
                return False
            if monotonic() - self._last_sync_at < self.fsync_interval_s:
                return False
            self.wal.sync()
            self._last_sync_at = monotonic()
            self._observe_lag()
        return True

    def maybe_checkpoint(self, trace: TemporalGraph, force: bool = False) -> "int | None":
        """Checkpoint ``trace`` if the cadence (or ``force``) says so.

        ``trace`` must be the engine's stream at exactly the manager's
        current WAL sequence — the server guarantees this by calling
        under the same lock that serialises ingest.  The WAL is synced
        *first* (invariant: a checkpoint's sequence stamp never exceeds
        the durable log), then the checkpoint is written atomically and
        old ones pruned to ``checkpoint_keep``.
        """
        with self._lock:
            seq = self.wal.seq
            due = (
                self.checkpoint_every > 0
                and seq - self.last_checkpoint_seq >= self.checkpoint_every
            )
            if not (due or (force and seq > self.last_checkpoint_seq)):
                return None
            self.wal.sync()
            self._last_sync_at = monotonic()
            write_checkpoint(self.directory, seq, trace, self.wal.header["fingerprint"])
            self.last_checkpoint_seq = seq
            self.checkpoints_written += 1
            prune_checkpoints(self.directory, self.checkpoint_keep)
            self._observe_lag()
        return seq

    def sync(self) -> None:
        with self._lock:
            self.wal.sync()
            self._last_sync_at = monotonic()
            self._observe_lag()

    def close(self, trace: "TemporalGraph | None" = None) -> None:
        """Final sync (and checkpoint, when a trace is given) + close.

        The drain path passes the engine's trace so a cleanly stopped
        server restarts from a checkpoint instead of replaying its whole
        WAL — RTO for planned restarts collapses to checkpoint load time.
        """
        if self._closed:
            return
        if trace is not None:
            self.maybe_checkpoint(trace, force=True)
        with self._lock:
            self.wal.close()
            self._closed = True

    # ------------------------------------------------------------------
    def _observe_lag(self) -> None:
        if telemetry.metrics.enabled:
            telemetry.metrics.gauge("wal.durability_lag_records").set(
                self.wal.pending_records
            )

    def describe(self) -> dict:
        """JSON-safe durability state for /statz."""
        return {
            "dir": self.directory,
            "fsync": self.fsync,
            "fsync_interval_s": self.fsync_interval_s,
            "wal_seq": self.wal.seq,
            "synced_seq": self.wal.synced_seq,
            "pending_records": self.wal.pending_records,
            "wal_bytes": self.wal.offset,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_keep": self.checkpoint_keep,
            "last_checkpoint_seq": self.last_checkpoint_seq,
            "checkpoints_written": self.checkpoints_written,
        }
