"""In-process server harness: a live server on a background event loop.

The robustness tests and the load bench both need a real server — real
sockets, real admission queue, real workers — without shelling out to a
subprocess for every case.  The harness runs the event loop on a
daemon thread, starts a :class:`LinkPredictionServer` on an ephemeral
port, and exposes a blocking :meth:`request` (plus :meth:`submit` for
driving many concurrent requests from the bench).  ``with`` semantics
guarantee the drain path runs even when an assertion fails mid-test.
"""

from __future__ import annotations

import asyncio
import threading

from repro.graph.dyngraph import TemporalGraph
from repro.serve import client
from repro.serve.app import LinkPredictionServer
from repro.serve.config import ServeConfig
from repro.serve.store import ScoreStore


class ServerHarness:
    """Start/stop wrapper around one in-process server instance."""

    def __init__(
        self,
        trace: TemporalGraph,
        config: "ServeConfig | None" = None,
        *,
        store: "ScoreStore | None" = None,
        recovery=None,
    ) -> None:
        self.config = config if config is not None else ServeConfig(port=0)
        self.store = store if store is not None else ScoreStore(trace)
        self.server = LinkPredictionServer(
            self.store, self.config, recovery=recovery
        )
        self.loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        port = self.server.port
        assert port is not None, "harness not started"
        return port

    @property
    def host(self) -> str:
        return self.config.host

    def start(self) -> "ServerHarness":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-harness", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if self.server.port is None:
            raise RuntimeError("server did not come up within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 — reported to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, *, drain: bool = True) -> "bool | None":
        """Drain (optionally) and tear the loop down; True = clean drain."""
        loop = self.loop
        if loop is None or not loop.is_running():
            return None
        clean: "bool | None" = None
        if drain:
            future = asyncio.run_coroutine_threadsafe(self.server.drain(), loop)
            clean = future.result(timeout=self.config.drain_s + 10.0)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        return clean

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def submit(self, coro) -> "asyncio.Future":
        """Schedule a coroutine on the server's loop (concurrent load)."""
        assert self.loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def request(
        self,
        method: str,
        target: str,
        *,
        body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
        timeout: float = 30.0,
    ) -> client.ClientResponse:
        """One blocking request against the live server."""
        future = self.submit(
            client.request(
                self.host,
                self.port,
                method,
                target,
                body=body,
                headers=headers,
                timeout=timeout,
            )
        )
        return future.result(timeout=timeout + 5.0)
