"""DeltaGraph-backed score store: snapshot-consistent reads, policied writes.

The store owns the server's only mutable state.  Reads never touch the
live :class:`~repro.graph.delta.DeltaGraph` — they are served from the
*last-good snapshot*, the snapshot materialised after the most recent
successful write (or at startup).  Writes are serialised by the server,
screened through the ingest error taxonomy under an
:class:`~repro.ingest.IngestPolicy`, applied via ``delta.apply``, and
only then atomically swap in a freshly materialised snapshot.  A write
that fails — an injected fault, an apply error, or a failed integrity
audit — leaves the previous snapshot untouched, which is exactly what
lets the circuit breaker degrade reads to stale-but-served instead of
taking the whole service down.

Byte-parity with the batch pipeline holds by construction: the snapshot
is ``DeltaGraph.materialize()`` output (proven byte-identical to a full
rebuild by ``tests/test_delta_equivalence.py``), and per-pair scores are
computed by the same registered metric classes the experiment runner
uses, so a served score is bit-for-bit the score ``run_experiment``
would compute on the same prefix.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.eval import faults
from repro.graph.delta import DeltaGraph
from repro.graph.dyngraph import TemporalGraph
from repro.ingest import IngestPolicy, classify_event_line
from repro.metrics.base import all_metric_names, get_metric
from repro.metrics.candidates import candidate_pairs
from repro.metrics.kernels import score_pairs

#: fault-plan keys honoured by the store (see repro.eval.faults.before_key).
PREDICT_FAULT_KEY = "serve.predict"
INGEST_FAULT_KEY = "serve.ingest"


class UnknownNodeError(KeyError):
    """The queried node is not in the served snapshot."""


class IngestRejected(ValueError):
    """A strict-policy taxonomy violation in a POST /ingest body."""

    def __init__(self, error_class: str, lineno: int, detail: str) -> None:
        super().__init__(f"{error_class} at body line {lineno}: {detail}")
        self.error_class = error_class
        self.lineno = lineno
        self.detail = detail


class StoreWriteError(RuntimeError):
    """A write failed after screening (apply error or failed audit)."""


class ScoreStore:
    """Serving-side state: a delta engine plus its last-good snapshot.

    Thread-safety contract: ``predict`` may run concurrently from any
    number of pool threads; ``ingest_lines`` must be externally
    serialised (the server holds an asyncio lock across it).  The
    snapshot swap is a single attribute assignment, so readers always
    see either the old or the new snapshot, never a mix.
    """

    def __init__(
        self,
        trace: TemporalGraph,
        *,
        policy: "IngestPolicy | None" = None,
        audit_every: int = 0,
        durability=None,
    ) -> None:
        if trace.num_edges == 0:
            raise ValueError("cannot serve an empty trace")
        self.policy = policy if policy is not None else IngestPolicy.default()
        self.audit_every = audit_every
        #: optional :class:`~repro.serve.durability.DurabilityManager`;
        #: when set, accepted batches are WAL-logged before they are
        #: applied, so an ack always implies a replayable record.
        self.durability = durability
        self._engine = DeltaGraph(trace)
        self._snapshot = self._engine.materialize()
        self._batches_accepted = 0
        self._poisoned = False
        self._op_counts: dict[str, int] = {}
        self._op_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def snapshot(self):
        """The last-good snapshot (atomic reference read)."""
        return self._snapshot

    @property
    def poisoned(self) -> bool:
        """True after a failed audit, until :meth:`resync` runs."""
        return self._poisoned

    def describe(self) -> dict:
        snapshot = self._snapshot
        return {
            "snapshot_edges": snapshot.num_edges,
            "snapshot_nodes": snapshot.num_nodes,
            "snapshot_time": snapshot.time,
            "engine_edges": self._engine.num_edges,
            "batches_accepted": self._batches_accepted,
            "poisoned": self._poisoned,
            "durable": self.durability is not None,
            "metrics": all_metric_names(),
        }

    def _fault_point(self, key: str) -> None:
        """Run the deterministic fault hook with a per-key call index."""
        with self._op_lock:
            attempt = self._op_counts.get(key, 0)
            self._op_counts[key] = attempt + 1
        faults.before_key(key, attempt)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def predict(self, u: int, k: int, metric_name: str) -> dict:
        """Top-k predicted neighbours of ``u`` under ``metric_name``.

        Runs entirely against the last-good snapshot.  Candidates are the
        metric's own enumeration strategy restricted to pairs touching
        ``u``; scores route through the batched kernel layer
        (:func:`repro.metrics.kernels.score_pairs` — warm delta tables
        for CN/AA/RA, shared neighbour-intersection blocks otherwise),
        so each value is bit-identical to the batch pipeline's score for
        the same pair on the same prefix.  Ranking is deterministic:
        descending score, ascending neighbour id on ties — a stable
        contract for clients, unlike the evaluation protocol's random
        tie-breaking (which is a property of the *accuracy experiment*,
        not of a production ranking).
        """
        self._fault_point(PREDICT_FAULT_KEY)
        snapshot = self._snapshot
        metric = get_metric(metric_name)  # KeyError -> 400 upstream
        if not snapshot.has_node(u):
            raise UnknownNodeError(u)
        pairs = candidate_pairs(snapshot, metric.candidate_strategy)
        if len(pairs):
            mask = (pairs[:, 0] == u) | (pairs[:, 1] == u)
            mine = pairs[mask]
        else:
            mine = pairs
        predictions = []
        if len(mine):
            metric.fit(snapshot)
            scores = score_pairs(metric, snapshot, mine)
            others = np.where(mine[:, 0] == u, mine[:, 1], mine[:, 0])
            order = np.lexsort((others, -scores))[:k]
            predictions = [
                {"v": int(others[i]), "score": float(scores[i])}
                for i in order
            ]
        return {
            "u": int(u),
            "k": int(k),
            "metric": metric_name,
            "snapshot": {
                "edges": snapshot.num_edges,
                "nodes": snapshot.num_nodes,
                "time": snapshot.time,
            },
            "candidates": int(len(mine)),
            "predictions": predictions,
        }

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def ingest_lines(self, text: str) -> dict:
        """Screen, apply, and re-materialise one edge batch.

        ``text`` is trace-file syntax (``u v [t]`` per line; blank lines
        and ``#`` comments ignored).  Lines travel the same taxonomy as
        file ingest — parse errors, bad node ids, bad timestamps,
        self-loops, out-of-order and duplicate events — with the store's
        policy deciding strict (reject the whole batch, 400), repair, or
        quarantine (drop and count) per class.  The surviving events go
        through ``DeltaGraph.apply``; an optional audit runs every
        ``audit_every``-th accepted batch; success swaps in a fresh
        snapshot.  Everything before ``apply`` is side-effect-free, so a
        rejected batch changes nothing.
        """
        events, counts = self._screen(text)
        self._fault_point(INGEST_FAULT_KEY)
        if self._poisoned:
            raise StoreWriteError(
                "engine poisoned by an earlier audit failure; resync required"
            )
        logged = False
        if self.durability is not None and events:
            # WAL-before-apply: screening already enforced everything
            # ``apply`` validates (finite, non-negative, non-decreasing
            # past the stream end), so a logged batch always replays.
            # A WAL write failure aborts before any in-memory mutation —
            # the StoreWriteError trips the breaker and the server
            # degrades to read-only rather than acking non-durable data.
            try:
                self.durability.record_batch(events)
            except OSError as exc:
                raise StoreWriteError(f"WAL append failed: {exc}") from exc
            logged = True
        try:
            report = self._engine.apply(events)
        except ValueError as exc:
            if logged:
                # The WAL now holds a record the engine does not: the
                # in-memory state is behind the durable log and only a
                # restart (recovery replays the WAL) reconverges them.
                self._poisoned = True
            raise StoreWriteError(f"delta apply rejected the batch: {exc}") from exc
        self._batches_accepted += 1
        if self.audit_every and self._batches_accepted % self.audit_every == 0:
            audit = self._engine.audit()
            if not audit.ok:
                self._poisoned = True
                raise StoreWriteError(
                    f"delta audit failed after batch "
                    f"{self._batches_accepted}: {audit.summary()}"
                )
        if report.applied:
            self._snapshot = self._engine.materialize()
        counts["duplicate_edge"] = counts.get("duplicate_edge", 0) + report.duplicates
        counts["self_loop"] = counts.get("self_loop", 0) + report.self_loops
        return {
            "applied": report.applied,
            "new_nodes": report.new_nodes,
            "snapshot_edges": self._snapshot.num_edges,
            "rejected": {k: v for k, v in sorted(counts.items()) if v},
        }

    def resync(self) -> None:
        """Rebuild the engine from the last-good snapshot's prefix.

        The recovery path behind the breaker's half-open probe: after an
        audit failure the maintained delta structures cannot be trusted,
        but the last-good snapshot's event prefix can — it passed its own
        audit when it was materialised.  Rebuilding from that prefix
        discards everything after it (the batches that corrupted the
        engine) and restores the store to a provably consistent state.
        """
        if not self._poisoned:
            return
        good = self._snapshot
        self._engine = DeltaGraph(good.trace.prefix(good.num_edges))
        self._snapshot = self._engine.materialize()
        self._poisoned = False

    # ------------------------------------------------------------------
    # Durability path
    # ------------------------------------------------------------------
    def replay_wal(self, records) -> dict:
        """Replay surviving WAL records into the engine, audit, swap.

        The recovery tail: the store was constructed from the newest
        valid checkpoint's columns (or the base trace), so the engine is
        already at the checkpoint's WAL sequence and ``records`` are
        everything past it.  The audit is mandatory — a recovered engine
        that fails it poisons the store (reads keep serving the
        checkpoint snapshot; writes stay down) rather than serving
        unverified state.
        """
        from repro.graph.wal import replay_records

        applied = replay_records(self._engine, records)
        audit = self._engine.audit()
        if not audit.ok:
            self._poisoned = True
            raise StoreWriteError(
                f"post-replay audit failed: {audit.summary()}"
            )
        if applied:
            self._snapshot = self._engine.materialize()
        return {"records": len(records), "events": applied}

    def checkpoint_if_due(self) -> "int | None":
        """Cadence-gated checkpoint of the engine's current stream.

        Must run serialised with writes (the server calls it under the
        ingest lock) so the trace handed to the manager is at exactly the
        manager's WAL sequence.
        """
        if self.durability is None or self._poisoned:
            return None
        return self.durability.maybe_checkpoint(self._engine.trace)

    def finalize_durability(self) -> None:
        """Drain hook: final fsync + checkpoint + WAL close."""
        if self.durability is None:
            return
        self.durability.close(None if self._poisoned else self._engine.trace)

    # ------------------------------------------------------------------
    def _screen(self, text: str) -> "tuple[list[tuple[int, int, float]], dict]":
        """Apply the ingest taxonomy to a request body; policy decides."""
        policy = self.policy
        counts: dict[str, int] = {}

        def handle(error_class: str, lineno: int, detail: str) -> str:
            action = policy.action(error_class)
            if action == "strict":
                raise IngestRejected(error_class, lineno, detail)
            counts[error_class] = counts.get(error_class, 0) + 1
            return action

        parsed: list[tuple[int, int, float]] = []
        end_time = self._engine.trace.end_time if self._engine.num_edges else 0.0
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            verdict = classify_event_line(parts)
            if verdict is not None:
                handle(verdict[0], lineno, verdict[1])
                continue
            u, v = int(parts[0]), int(parts[1])
            t = float(parts[2]) if len(parts) == 3 else end_time
            if not math.isfinite(t):
                handle("nonfinite_time", lineno, f"timestamp {parts[2]!r}")
                continue
            if t < 0:
                action = handle("negative_time", lineno, f"timestamp {t!r}")
                if action != "repair":
                    continue
                t = 0.0  # the taxonomy's deterministic fix: clamp to zero
            if u == v:
                handle("self_loop", lineno, f"node {u}")
                continue
            parsed.append((u, v, t))

        # Ordering: the file-ingest repair is a stable time sort; the
        # serving twist is that events cannot be reordered into the
        # already-committed past, so anything older than the stream's end
        # is clamped up to it (repair) or dropped (quarantine).
        events: list[tuple[int, int, float]] = []
        last = end_time
        out_of_order = [
            i for i in range(1, len(parsed)) if parsed[i][2] < parsed[i - 1][2]
        ]
        stale = [i for i, ev in enumerate(parsed) if ev[2] < end_time]
        if out_of_order or stale:
            lineno = (out_of_order or stale)[0] + 1
            action = handle(
                "out_of_order",
                lineno,
                f"{len(out_of_order)} in-batch inversions, "
                f"{len(stale)} events before stream end {end_time!r}",
            )
            if action == "repair":
                parsed.sort(key=lambda ev: ev[2])
                events = [(u, v, max(t, end_time)) for u, v, t in parsed]
            else:  # quarantine: keep the longest in-order suffix stream
                for u, v, t in parsed:
                    if t >= last:
                        events.append((u, v, t))
                        last = t
                    else:
                        counts["out_of_order"] = counts.get("out_of_order", 0) + 1
        else:
            events = parsed

        if policy.action("duplicate_edge") == "strict" and events:
            seen: set = set()
            trace = self._engine.trace
            for lineno, (u, v, t) in enumerate(events, start=1):
                pair = (u, v) if u < v else (v, u)
                if pair in seen or trace.has_edge(u, v):
                    raise IngestRejected(
                        "duplicate_edge", lineno, f"edge {pair} already exists"
                    )
                seen.add(pair)
        return events, counts
