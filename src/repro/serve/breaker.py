"""Write-path circuit breaker: fail fast, degrade reads to last-good state.

The ingest path is the only part of the server that mutates shared state,
and a delta engine that keeps failing to apply (or failing its audit) must
not be hammered: every attempt burns a worker slot and, after an audit
failure, risks serving corrupt scores.  The breaker is the standard
three-state machine:

``closed``
    Writes flow.  ``breaker_threshold`` *consecutive* failures trip it.
``open``
    Writes are rejected immediately with 503 + ``Retry-After`` (the
    remaining cooldown).  Reads keep working from the last successfully
    materialised snapshot — stale-but-served — and carry a
    ``X-Repro-Degraded`` header; ``/readyz`` reports 503 while
    ``/healthz`` stays 200, so an orchestrator routes traffic away
    without restarting a process that is still useful.
``half-open``
    After the cooldown one probe write is let through.  Success closes
    the breaker (and, if the engine was poisoned by an audit failure,
    the store resynchronises from the last-good snapshot first);
    failure re-opens it for a fresh cooldown.
"""

from __future__ import annotations

import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpen(Exception):
    """Raised on the write path while the breaker is rejecting writes."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"write path open; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class CircuitBreaker:
    """Consecutive-failure breaker with a monotonic-clock cooldown.

    ``clock`` is injectable so tests can drive state transitions
    without sleeping.
    """

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if not cooldown_s > 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; performs the timed open -> half-open move."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False
        return self._state

    @property
    def degraded(self) -> bool:
        """True while reads should carry the degraded header."""
        return self.state != CLOSED

    def retry_after(self) -> float:
        """Seconds a rejected writer should wait before retrying."""
        if self.state == OPEN:
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))
        return 0.0

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a write proceed right now?

        In half-open exactly one probe is admitted; concurrent writers
        queued behind it are rejected until the probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def release_probe(self) -> None:
        """Return a half-open probe slot without judging the write.

        For outcomes that say nothing about write-path health — e.g. a
        batch rejected by a *strict ingest policy* is the client's
        fault, not the engine's — the probe must be handed back or the
        breaker would stay half-open with its one slot leaked forever.
        """
        self._probe_in_flight = False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._state = CLOSED

    def record_failure(self) -> None:
        self._probe_in_flight = False
        if self._state == HALF_OPEN:
            # failed probe: straight back to open, fresh cooldown.
            self._state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.threshold:
            self._state = OPEN
            self._opened_at = self._clock()
            self.trips += 1

    def describe(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "threshold": self.threshold,
            "trips": self.trips,
            "retry_after_s": round(self.retry_after(), 3),
        }
