"""Timestamped, growing, undirected graphs.

A :class:`TemporalGraph` records the complete edge-creation history of a
network: an append-only stream of ``(u, v, t)`` events, exactly the shape of
the Facebook / Renren / YouTube traces the paper works from ("detailed
timestamps capture the time when specific edges were created").  Timestamps
are floats measured in *days* since the trace start.

The event stream is stored **columnar**: three parallel append-only columns
``u[]``, ``v[]``, ``t[]`` (exposed as contiguous NumPy arrays by
:meth:`TemporalGraph.columns`) plus a compact node-id remap table
(:meth:`TemporalGraph.stream_index`).  Snapshots are views over a stream
prefix, and the slicing/temporal queries below are ``searchsorted`` / slice
operations over the columns instead of per-event Python work.

The class supports the two access patterns the paper's methodology needs:

- *stream access* for slicing the trace into snapshots with a constant number
  of new edges per snapshot (Section 3.2), and
- *per-node creation-time logs* for the temporal analysis of Section 6
  (idle times, recent-edge counts, common-neighbour arrival gaps).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.utils.pairs import Pair, canonical_pair


@dataclass(frozen=True)
class StreamIndex:
    """Compact node-id remap table over one trace's full event stream.

    Built once per trace (amortised over every snapshot of a sequence) and
    cached until new edges are appended:

    - ``node_ids`` — sorted unique node ids appearing in the stream;
    - ``eu`` / ``ev`` — the event columns remapped to dense indices into
      ``node_ids`` (so vectorised kernels never hash raw ids);
    - ``first_seen`` — per dense node id, the stream index of the event
      that introduced the node (the key that lets a snapshot at cutoff
      ``c`` recover its node set as ``first_seen < c`` without a scan).
    """

    node_ids: np.ndarray
    eu: np.ndarray
    ev: np.ndarray
    first_seen: np.ndarray


class TemporalGraph:
    """An undirected graph built from a time-ordered edge-creation stream.

    Edges must be appended in non-decreasing timestamp order, mirroring how a
    real trace is recorded.  Nodes are integers; a node exists from the
    moment its first edge is created (or from an explicit
    :meth:`add_node` call, modelling account creation before first link).
    """

    #: provenance of the load when this graph came from
    #: :func:`repro.ingest.load_trace` (an ``IngestReport``), else None.
    ingest_report = None

    def __init__(self) -> None:
        self._adj: dict[int, set[int]] = {}
        # Columnar event stream: parallel append buffers, canonical u < v.
        self._us: list[int] = []
        self._vs: list[int] = []
        self._ts: list[float] = []
        self._edge_times: dict[Pair, float] = {}
        self._node_arrival: dict[int, float] = {}
        # Per-node sorted list of times at which the node created an edge.
        self._node_edge_times: dict[int, list[float]] = {}
        # Lazily materialised column arrays / remap table, keyed by the
        # stream length they were built at (append invalidates by length).
        self._cols: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None
        self._cols_len: int = -1
        self._index: "StreamIndex | None" = None
        self._index_len: int = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, t: float = 0.0) -> None:
        """Register ``node`` as existing from time ``t`` (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()
            self._node_arrival[node] = t
            self._node_edge_times[node] = []

    def add_edge(self, u: int, v: int, t: float) -> bool:
        """Append edge ``(u, v)`` created at time ``t``.

        Returns ``True`` if the edge was new, ``False`` if it already existed
        (duplicate events in a trace are ignored, as the paper's traces only
        record first creation).  Raises ``ValueError`` on out-of-order
        timestamps or self-loops.
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) rejected")
        if self._ts and t < self._ts[-1]:
            raise ValueError(
                f"edge timestamps must be non-decreasing: got {t} after {self._ts[-1]}"
            )
        pair = canonical_pair(u, v)
        if pair in self._edge_times:
            return False
        self.add_node(u, t)
        self.add_node(v, t)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._us.append(pair[0])
        self._vs.append(pair[1])
        self._ts.append(t)
        self._edge_times[pair] = t
        self._node_edge_times[u].append(t)
        self._node_edge_times[v].append(t)
        return True

    @classmethod
    def from_stream(cls, stream: Iterable[tuple[int, int, float]]) -> "TemporalGraph":
        """Build a graph from an iterable of ``(u, v, t)`` events."""
        graph = cls()
        for u, v, t in stream:
            graph.add_edge(u, v, t)
        return graph

    @classmethod
    def from_columns(
        cls,
        u: np.ndarray,
        v: np.ndarray,
        t: np.ndarray,
        *,
        validated: bool = False,
    ) -> "TemporalGraph":
        """Build a graph directly from ``(u, v, t)`` event columns.

        With ``validated=False`` this is just :meth:`from_stream` on the
        zipped columns — every event goes through :meth:`add_edge`'s
        checks.  With ``validated=True`` the caller guarantees what the
        ingest pipeline (:func:`repro.ingest.load_trace`) establishes —
        times sorted non-decreasing, no self-loops, no duplicate pairs —
        and construction skips the per-event validation: endpoints are
        canonicalised vectorised, the column caches are seeded from the
        input arrays, and one branch-free pass builds the derived node
        structures.  Violating the contract corrupts invariants that
        :func:`repro.graph.audit.audit_graph` exists to catch.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        t = np.asarray(t, dtype=np.float64)
        if not validated:
            return cls.from_stream(zip(u.tolist(), v.tolist(), t.tolist()))
        graph = cls()
        graph._load_columns(u, v, t)
        return graph

    def _load_columns(self, u: np.ndarray, v: np.ndarray, t: np.ndarray) -> None:
        """Populate a freshly-initialised graph from trusted columns.

        The per-node structures are built by one grouped pass over the
        doubled endpoint column instead of a per-event Python loop: sort
        ``(endpoint, event)`` once, then each node's neighbours, arrival,
        and edge-time log fall out of a contiguous slice.  Nodes are
        inserted in first-appearance order (ties within one event resolve
        to the smaller endpoint first), matching ``add_edge`` so dict
        iteration order is identical however the graph was built.
        """
        us = np.minimum(u, v)
        vs = np.maximum(u, v)
        pu, pv, pt = us.tolist(), vs.tolist(), t.tolist()
        self._us, self._vs, self._ts = pu, pv, pt
        adj = self._adj
        arrival = self._node_arrival
        logs = self._node_edge_times
        edge_times = self._edge_times
        # One branch-light pass sharing the boxed ints/floats of pu/pv/pt
        # across every derived structure — vectorised variants of this
        # rebuild were measured with a *higher* tracemalloc peak (doubled
        # index arrays plus re-boxed slice copies outweigh the loop).
        for a, b, when in zip(pu, pv, pt):
            edge_times[(a, b)] = when
            nbrs = adj.get(a)
            if nbrs is None:
                adj[a] = {b}
                arrival[a] = when
                logs[a] = [when]
            else:
                nbrs.add(b)
                logs[a].append(when)
            nbrs = adj.get(b)
            if nbrs is None:
                adj[b] = {a}
                arrival[b] = when
                logs[b] = [when]
            else:
                nbrs.add(a)
                logs[b].append(when)
        cols = (
            np.ascontiguousarray(us),
            np.ascontiguousarray(vs),
            np.ascontiguousarray(t),
        )
        for arr in cols:
            arr.flags.writeable = False
        self._cols = cols
        self._cols_len = len(pu)

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The event stream as contiguous ``(u, v, t)`` column arrays.

        Rebuilt lazily only when edges were appended since the last call;
        the returned arrays are read-only so snapshot views can alias them
        safely (appends never mutate an already-built prefix).
        """
        n = len(self._us)
        if self._cols is None or self._cols_len != n:
            u = np.asarray(self._us, dtype=np.int64)
            v = np.asarray(self._vs, dtype=np.int64)
            t = np.asarray(self._ts, dtype=np.float64)
            for arr in (u, v, t):
                arr.flags.writeable = False
            self._cols = (u, v, t)
            self._cols_len = n
        return self._cols

    def stream_index(self) -> StreamIndex:
        """Cached :class:`StreamIndex` over the current stream.

        One O(E log E) vectorised pass shared by every snapshot built on
        this trace — the amortisation that makes ``snapshot_sequence``
        O(E + Σ nnz) instead of restarting from event 0 per snapshot.
        """
        n = len(self._us)
        if self._index is None or self._index_len != n:
            u, v, _ = self.columns()
            node_ids = np.unique(np.concatenate((u, v)))
            eu = np.searchsorted(node_ids, u)
            ev = np.searchsorted(node_ids, v)
            first_seen = np.full(len(node_ids), n, dtype=np.int64)
            order = np.arange(n, dtype=np.int64)
            np.minimum.at(first_seen, eu, order)
            np.minimum.at(first_seen, ev, order)
            for arr in (node_ids, eu, ev, first_seen):
                arr.flags.writeable = False
            self._index = StreamIndex(node_ids, eu, ev, first_seen)
            self._index_len = n
        return self._index

    def _install_stream_caches(
        self,
        cols: "tuple[np.ndarray, np.ndarray, np.ndarray]",
        index: StreamIndex,
    ) -> None:
        """Install externally maintained column / index caches.

        The delta engine (:mod:`repro.graph.delta`) patches the column
        arrays and :class:`StreamIndex` incrementally per batch; this hook
        lets it hand the results back so :meth:`columns` and
        :meth:`stream_index` serve them instead of rebuilding from the raw
        lists.  Lengths must match the current stream — the caches are
        keyed by stream length, so a stale install would silently poison
        every snapshot built afterwards.
        """
        n = len(self._us)
        if any(len(arr) != n for arr in cols):
            raise ValueError(
                f"column cache length mismatch: stream has {n} events"
            )
        if len(index.eu) != n or len(index.ev) != n:
            raise ValueError(
                f"stream index length mismatch: stream has {n} events"
            )
        if len(index.node_ids) != len(index.first_seen):
            raise ValueError("node_ids and first_seen lengths differ")
        self._cols = cols
        self._cols_len = n
        self._index = index
        self._index_len = n

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return len(self._us)

    @property
    def start_time(self) -> float:
        """Timestamp of the first edge (0.0 for an empty graph)."""
        return self._ts[0] if self._ts else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last edge (0.0 for an empty graph)."""
        return self._ts[-1] if self._ts else 0.0

    def nodes(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(u, v, t)`` events in creation order."""
        return zip(self._us, self._vs, self._ts)

    def neighbors(self, node: int) -> set[int]:
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def has_node(self, node: int) -> bool:
        return node in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_pair(u, v) in self._edge_times

    def node_arrival_time(self, node: int) -> float:
        """Time the node entered the network."""
        return self._node_arrival[node]

    def edge_time(self, u: int, v: int) -> float:
        """Creation time of an existing edge."""
        pair = canonical_pair(u, v)
        try:
            return self._edge_times[pair]
        except KeyError:
            raise KeyError(f"edge {pair} not in graph") from None

    # ------------------------------------------------------------------
    # Temporal queries (Section 6 analysis)
    # ------------------------------------------------------------------
    def node_edge_times(self, node: int) -> list[float]:
        """Sorted creation times of all edges incident to ``node``."""
        return self._node_edge_times[node]

    def idle_time(self, node: int, now: float) -> float:
        """Time since ``node`` last created an edge, as of time ``now``.

        Nodes that never created an edge are idle since their arrival.
        """
        times = self._node_edge_times[node]
        # Only events at or before `now` count: binary-search the prefix.
        i = bisect.bisect_right(times, now)
        if i == 0:
            return now - self._node_arrival[node]
        return now - times[i - 1]

    def recent_edge_count(self, node: int, now: float, window: float) -> int:
        """Number of edges ``node`` created in ``(now - window, now]``."""
        times = self._node_edge_times[node]
        hi = bisect.bisect_right(times, now)
        lo = bisect.bisect_right(times, now - window)
        return hi - lo

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def edge_index_at_time(self, t: float) -> int:
        """Number of edges created at or before time ``t``.

        A binary search over the cached time column — O(log E) after the
        first call instead of rebuilding a timestamp list per query.
        """
        _, _, times = self.columns()
        return int(np.searchsorted(times, t, side="right"))

    def prefix(self, num_edges: int) -> "TemporalGraph":
        """Return a new graph containing only the first ``num_edges`` events."""
        if not 0 <= num_edges <= len(self._us):
            raise ValueError(
                f"num_edges must be in [0, {len(self._us)}], got {num_edges}"
            )
        return TemporalGraph.from_stream(
            zip(self._us[:num_edges], self._vs[:num_edges], self._ts[:num_edges])
        )

    def edge_slice(self, start: int, stop: int) -> list[tuple[int, int, float]]:
        """Events with stream indices in ``[start, stop)``."""
        return list(zip(self._us[start:stop], self._vs[start:stop], self._ts[start:stop]))

    def copy(self) -> "TemporalGraph":
        clone = TemporalGraph.from_stream(self.edges())
        # Preserve isolated nodes and explicit arrival times.
        for node, t in self._node_arrival.items():
            if node not in clone._adj:
                clone.add_node(node, t)
            else:
                clone._node_arrival[node] = t
        return clone

    # ------------------------------------------------------------------
    # Pickling (worker transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Ship only the event columns plus explicit arrivals.

        The dict-of-sets adjacency, per-pair times, and per-node logs are
        all derivable from the stream, so excluding them makes worker
        pickles a fraction of the naive size; they are rebuilt on load.
        """
        return {
            "stream": (
                np.asarray(self._us, dtype=np.int64),
                np.asarray(self._vs, dtype=np.int64),
                np.asarray(self._ts, dtype=np.float64),
            ),
            "node_arrival": dict(self._node_arrival),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        us, vs, ts = state["stream"]
        # The pickled stream came from a live graph, so the validated
        # contract (sorted, loop-free, duplicate-free) holds and the
        # branch-free column loader can rebuild the derived structures.
        self._load_columns(
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(ts, dtype=np.float64),
        )
        for node, t in state["node_arrival"].items():
            if node not in self._adj:
                self.add_node(node, t)
            else:
                self._node_arrival[node] = t

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"span=[{self.start_time:.2f}, {self.end_time:.2f}] days)"
        )
