"""Timestamped, growing, undirected graphs.

A :class:`TemporalGraph` records the complete edge-creation history of a
network: an append-only stream of ``(u, v, t)`` events, exactly the shape of
the Facebook / Renren / YouTube traces the paper works from ("detailed
timestamps capture the time when specific edges were created").  Timestamps
are floats measured in *days* since the trace start.

The class supports the two access patterns the paper's methodology needs:

- *stream access* for slicing the trace into snapshots with a constant number
  of new edges per snapshot (Section 3.2), and
- *per-node creation-time logs* for the temporal analysis of Section 6
  (idle times, recent-edge counts, common-neighbour arrival gaps).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.utils.pairs import Pair, canonical_pair


class TemporalGraph:
    """An undirected graph built from a time-ordered edge-creation stream.

    Edges must be appended in non-decreasing timestamp order, mirroring how a
    real trace is recorded.  Nodes are integers; a node exists from the
    moment its first edge is created (or from an explicit
    :meth:`add_node` call, modelling account creation before first link).
    """

    def __init__(self) -> None:
        self._adj: dict[int, set[int]] = {}
        self._edges: list[tuple[int, int, float]] = []
        self._edge_times: dict[Pair, float] = {}
        self._node_arrival: dict[int, float] = {}
        # Per-node sorted list of times at which the node created an edge.
        self._node_edge_times: dict[int, list[float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, t: float = 0.0) -> None:
        """Register ``node`` as existing from time ``t`` (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()
            self._node_arrival[node] = t
            self._node_edge_times[node] = []

    def add_edge(self, u: int, v: int, t: float) -> bool:
        """Append edge ``(u, v)`` created at time ``t``.

        Returns ``True`` if the edge was new, ``False`` if it already existed
        (duplicate events in a trace are ignored, as the paper's traces only
        record first creation).  Raises ``ValueError`` on out-of-order
        timestamps or self-loops.
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) rejected")
        if self._edges and t < self._edges[-1][2]:
            raise ValueError(
                f"edge timestamps must be non-decreasing: got {t} after {self._edges[-1][2]}"
            )
        pair = canonical_pair(u, v)
        if pair in self._edge_times:
            return False
        self.add_node(u, t)
        self.add_node(v, t)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edges.append((pair[0], pair[1], t))
        self._edge_times[pair] = t
        self._node_edge_times[u].append(t)
        self._node_edge_times[v].append(t)
        return True

    @classmethod
    def from_stream(cls, stream: Iterable[tuple[int, int, float]]) -> "TemporalGraph":
        """Build a graph from an iterable of ``(u, v, t)`` events."""
        graph = cls()
        for u, v, t in stream:
            graph.add_edge(u, v, t)
        return graph

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def start_time(self) -> float:
        """Timestamp of the first edge (0.0 for an empty graph)."""
        return self._edges[0][2] if self._edges else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last edge (0.0 for an empty graph)."""
        return self._edges[-1][2] if self._edges else 0.0

    def nodes(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(u, v, t)`` events in creation order."""
        return iter(self._edges)

    def neighbors(self, node: int) -> set[int]:
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def has_node(self, node: int) -> bool:
        return node in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_pair(u, v) in self._edge_times

    def node_arrival_time(self, node: int) -> float:
        """Time the node entered the network."""
        return self._node_arrival[node]

    def edge_time(self, u: int, v: int) -> float:
        """Creation time of an existing edge."""
        pair = canonical_pair(u, v)
        try:
            return self._edge_times[pair]
        except KeyError:
            raise KeyError(f"edge {pair} not in graph") from None

    # ------------------------------------------------------------------
    # Temporal queries (Section 6 analysis)
    # ------------------------------------------------------------------
    def node_edge_times(self, node: int) -> list[float]:
        """Sorted creation times of all edges incident to ``node``."""
        return self._node_edge_times[node]

    def idle_time(self, node: int, now: float) -> float:
        """Time since ``node`` last created an edge, as of time ``now``.

        Nodes that never created an edge are idle since their arrival.
        """
        times = self._node_edge_times[node]
        # Only events at or before `now` count: binary-search the prefix.
        i = bisect.bisect_right(times, now)
        if i == 0:
            return now - self._node_arrival[node]
        return now - times[i - 1]

    def recent_edge_count(self, node: int, now: float, window: float) -> int:
        """Number of edges ``node`` created in ``(now - window, now]``."""
        times = self._node_edge_times[node]
        hi = bisect.bisect_right(times, now)
        lo = bisect.bisect_right(times, now - window)
        return hi - lo

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def edge_index_at_time(self, t: float) -> int:
        """Number of edges created at or before time ``t``."""
        times = [e[2] for e in self._edges]
        return bisect.bisect_right(times, t)

    def prefix(self, num_edges: int) -> "TemporalGraph":
        """Return a new graph containing only the first ``num_edges`` events."""
        if not 0 <= num_edges <= len(self._edges):
            raise ValueError(
                f"num_edges must be in [0, {len(self._edges)}], got {num_edges}"
            )
        return TemporalGraph.from_stream(self._edges[:num_edges])

    def edge_slice(self, start: int, stop: int) -> list[tuple[int, int, float]]:
        """Events with stream indices in ``[start, stop)``."""
        return self._edges[start:stop]

    def copy(self) -> "TemporalGraph":
        clone = TemporalGraph.from_stream(self._edges)
        # Preserve isolated nodes and explicit arrival times.
        for node, t in self._node_arrival.items():
            if node not in clone._adj:
                clone.add_node(node, t)
            else:
                clone._node_arrival[node] = t
        return clone

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"span=[{self.start_time:.2f}, {self.end_time:.2f}] days)"
        )
