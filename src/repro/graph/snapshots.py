"""Constant-edge-delta snapshot sequencing (Section 3.2 of the paper).

The paper discretises each trace into a sequence of snapshots
``(G_1, ..., G_T)`` such that every snapshot adds the same number of new
edges (the *snapshot delta*).  Prediction then runs on each consecutive pair:
observe ``G_{t-1}``, predict the new edges among its nodes that appear in
``G_t``.

A :class:`Snapshot` is an immutable static view of the trace after its first
``cutoff`` edge events.  It keeps a reference to the parent
:class:`~repro.graph.dyngraph.TemporalGraph` so the temporal filters of
Section 6 can ask time-aware questions (idle time, recent activity) *as of
the snapshot time* without copying history.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.graph.dyngraph import TemporalGraph
from repro.utils.pairs import Pair, canonical_pair


class Snapshot:
    """Static view of a temporal graph after its first ``cutoff`` edges."""

    def __init__(self, trace: TemporalGraph, cutoff: int, index: int = 0) -> None:
        if not 0 < cutoff <= trace.num_edges:
            raise ValueError(
                f"cutoff must be in [1, {trace.num_edges}], got {cutoff}"
            )
        self.trace = trace
        self.cutoff = cutoff
        self.index = index
        events = trace.edge_slice(0, cutoff)
        self.time: float = events[-1][2]
        adj: dict[int, set[int]] = {}
        edge_set: set[Pair] = set()
        for u, v, _ in events:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
            edge_set.add((u, v))
        self._adj = adj
        self._edge_set = edge_set
        self._node_list: list[int] | None = None
        self._node_pos: dict[int, int] | None = None
        #: scratch space for per-snapshot precomputations shared across
        #: metrics (dense adjacency, A^2, feature matrices, ...); any
        #: hashable key — see repro.metrics.base.cached.
        self.cache: dict = {}

    # ------------------------------------------------------------------
    # Static-graph queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def nodes(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Pair]:
        return iter(self._edge_set)

    def neighbors(self, node: int) -> set[int]:
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def has_node(self, node: int) -> bool:
        return node in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_pair(u, v) in self._edge_set

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    # ------------------------------------------------------------------
    # Node indexing and matrix forms (used by the matrix/walk metrics)
    # ------------------------------------------------------------------
    @property
    def node_list(self) -> list[int]:
        """Nodes in a stable sorted order (defines matrix row indices)."""
        if self._node_list is None:
            self._node_list = sorted(self._adj)
        return self._node_list

    @property
    def node_pos(self) -> dict[int, int]:
        """Mapping node id -> row index in :meth:`adjacency_matrix`."""
        if self._node_pos is None:
            self._node_pos = {node: i for i, node in enumerate(self.node_list)}
        return self._node_pos

    def adjacency_matrix(self) -> sp.csr_matrix:
        """Symmetric 0/1 adjacency in CSR form, rows ordered by node_list."""
        pos = self.node_pos
        n = len(pos)
        rows, cols = [], []
        for u, v in self._edge_set:
            iu, iv = pos[u], pos[v]
            rows.extend((iu, iv))
            cols.extend((iv, iu))
        data = np.ones(len(rows), dtype=np.float64)
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def degree_array(self) -> np.ndarray:
        """Degrees aligned with :attr:`node_list`."""
        return np.asarray([len(self._adj[u]) for u in self.node_list], dtype=np.float64)

    # ------------------------------------------------------------------
    # Temporal passthroughs, evaluated as of the snapshot time
    # ------------------------------------------------------------------
    def idle_time(self, node: int) -> float:
        """Days since ``node`` last created an edge, as of snapshot time."""
        return self.trace.idle_time(node, self.time)

    def recent_edge_count(self, node: int, window: float) -> int:
        """Edges ``node`` created in the last ``window`` days."""
        return self.trace.recent_edge_count(node, self.time, window)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a networkx ``Graph`` (used for cross-validation tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self._edge_set)
        return g

    def subgraph(self, nodes: Iterable[int]) -> "SnapshotView":
        """Restrict the snapshot to a node subset (snowball samples, §5.1)."""
        return SnapshotView(self, set(nodes))

    def __repr__(self) -> str:
        return (
            f"Snapshot(index={self.index}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, time={self.time:.2f}d)"
        )


class SnapshotView(Snapshot):
    """A snapshot restricted to a node subset, preserving temporal access.

    Used for snowball-sampled evaluation (Section 5.1): metric and classifier
    features are computed among sampled nodes only, but idle times etc. still
    come from the full trace.
    """

    def __init__(self, base: Snapshot, nodes: set[int]) -> None:
        missing = nodes - set(base._adj)
        if missing:
            raise ValueError(f"{len(missing)} nodes not present in base snapshot")
        self.trace = base.trace
        self.cutoff = base.cutoff
        self.index = base.index
        self.time = base.time
        self._adj = {u: base._adj[u] & nodes for u in nodes}
        self._edge_set = {
            (u, v) for (u, v) in base._edge_set if u in nodes and v in nodes
        }
        self._node_list = None
        self._node_pos = None
        self.cache = {}


def snapshot_sequence(
    trace: TemporalGraph,
    delta: int,
    start: int | None = None,
    max_snapshots: int | None = None,
) -> list[Snapshot]:
    """Slice ``trace`` into snapshots separated by ``delta`` new edges.

    ``start`` is the edge count of the first snapshot; it defaults to
    ``delta`` (i.e. the first snapshot is the trace's first ``delta`` edges).
    Matching Table 2 of the paper, the caller picks ``delta`` so the sequence
    has enough snapshots (> 15) without making inter-snapshot gaps too long.

    A trailing partial snapshot (fewer than ``delta`` new edges) is dropped,
    keeping the "constant new edges per snapshot" invariant exact.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if start is None:
        start = delta
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    cutoffs = range(start, trace.num_edges + 1, delta)
    snaps = [Snapshot(trace, c, index=i) for i, c in enumerate(cutoffs)]
    if max_snapshots is not None:
        snaps = snaps[:max_snapshots]
    return snaps


def new_edges_between(previous: Snapshot, current: Snapshot) -> set[Pair]:
    """Ground truth for one prediction step.

    Returns the edges present in ``current`` but not in ``previous`` whose
    *both* endpoints already existed in ``previous`` — the paper's prediction
    target explicitly excludes edges created by nodes that join after ``t``.
    """
    if current.cutoff <= previous.cutoff:
        raise ValueError("current snapshot must extend the previous one")
    fresh = set()
    for u, v, _ in current.trace.edge_slice(previous.cutoff, current.cutoff):
        if previous.has_node(u) and previous.has_node(v):
            fresh.add((u, v) if u < v else (v, u))
    return fresh
