"""Constant-edge-delta snapshot sequencing (Section 3.2 of the paper).

The paper discretises each trace into a sequence of snapshots
``(G_1, ..., G_T)`` such that every snapshot adds the same number of new
edges (the *snapshot delta*).  Prediction then runs on each consecutive pair:
observe ``G_{t-1}``, predict the new edges among its nodes that appear in
``G_t``.

A :class:`Snapshot` is an immutable static view of the trace after its first
``cutoff`` edge events.  It is **columnar**: construction is a zero-copy
slice of the parent trace's event columns, and the derived structure —
sorted node-id table, CSR adjacency, degree array — is built lazily with
vectorised ``searchsorted`` / ``bincount`` / ``lexsort`` kernels on first
use.  Building a whole :func:`snapshot_sequence` therefore costs one
amortised pass over the stream (the trace-level
:meth:`~repro.graph.dyngraph.TemporalGraph.stream_index`) plus O(1) per
snapshot, instead of a per-snapshot dict-of-sets rebuild from event 0.

It keeps a reference to the parent :class:`~repro.graph.dyngraph.TemporalGraph`
so the temporal filters of Section 6 can ask time-aware questions (idle time,
recent activity) *as of the snapshot time* without copying history.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.graph.dyngraph import TemporalGraph
from repro.utils.pairs import Pair, canonical_pair


def _isin_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Vectorised membership of ``values`` in a sorted id ``table``."""
    if len(table) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(table, values)
    pos = np.minimum(pos, len(table) - 1)
    return table[pos] == values


@dataclass(frozen=True)
class CsrStats:
    """Cheap structural statistics of a snapshot's CSR adjacency.

    Everything the density-adaptive candidate enumerator needs to choose a
    strategy, derived in O(n) from structure that the metrics build anyway:

    - ``density`` is the undirected edge density ``2|E| / (n(n-1))``
      (``nnz`` counts both directions, so it equals ``nnz / (n(n-1))``);
    - ``two_hop_work`` is ``sum_k deg(k)^2`` — the number of multiply-adds
      a sparse ``A @ A`` performs, i.e. the cost of the sparse 2-hop
      enumeration path.
    """

    nodes: int
    edges: int
    nnz: int
    density: float
    max_degree: int
    two_hop_work: int


class Snapshot:
    """Static view of a temporal graph after its first ``cutoff`` edges."""

    def __init__(self, trace: TemporalGraph, cutoff: int, index: int = 0) -> None:
        if not 0 < cutoff <= trace.num_edges:
            raise ValueError(
                f"cutoff must be in [1, {trace.num_edges}], got {cutoff}"
            )
        u, v, t = trace.columns()
        self._init_core(
            trace,
            cutoff,
            index,
            float(t[cutoff - 1]),
            eu=u[:cutoff],
            ev=v[:cutoff],
            et=t[:cutoff],
            node_ids=None,
        )

    def _init_core(
        self,
        trace: TemporalGraph,
        cutoff: int,
        index: int,
        time: float,
        *,
        eu: np.ndarray,
        ev: np.ndarray,
        et: np.ndarray,
        node_ids: "np.ndarray | None",
    ) -> None:
        """The single init path shared by :class:`Snapshot` and
        :class:`SnapshotView` — every per-instance field is assigned here,
        so a new field cannot silently desynchronise between the two."""
        self.trace = trace
        self.cutoff = cutoff
        self.index = index
        self.time = time
        #: canonical (u < v) endpoint id columns and times of the edges
        #: visible in this snapshot, in creation order (array views —
        #: zero-copy for a plain prefix snapshot).
        self._eu = eu
        self._ev = ev
        self._et = et
        #: sorted unique node ids; None = derive lazily from the trace's
        #: stream index (views pass their restricted id table eagerly).
        self._ids = node_ids
        # Lazily built vectorised structure.
        self._iu: "np.ndarray | None" = None  # _eu remapped to positions
        self._iv: "np.ndarray | None" = None
        self._indptr: "np.ndarray | None" = None  # CSR adjacency structure
        self._indices: "np.ndarray | None" = None
        self._deg: "np.ndarray | None" = None
        self._csr: "sp.csr_matrix | None" = None
        self._adj: dict[int, set[int]] = {}  # per-node memoised neighbour sets
        self._node_list: "list[int] | None" = None
        self._node_pos: "dict[int, int] | None" = None
        #: scratch space for per-snapshot precomputations shared across
        #: metrics (sparse adjacency, A^2, feature matrices, ...); any
        #: hashable key — see repro.metrics.base.cached.  Not pickled.
        self.cache: dict = {}

    # ------------------------------------------------------------------
    # Columnar structure (lazy, vectorised)
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> np.ndarray:
        """Sorted unique node ids, as an int64 array (the remap table)."""
        if self._ids is None:
            index = self.trace.stream_index()
            mask = index.first_seen < self.cutoff
            ids = index.node_ids[mask]
            # Global dense id -> snapshot position, reused for the edge
            # column remap below (avoids re-searchsorting per snapshot).
            pos_map = np.cumsum(mask) - 1
            self._iu = pos_map[index.eu[: self.cutoff]]
            self._iv = pos_map[index.ev[: self.cutoff]]
            self._ids = ids
        return self._ids

    def edge_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Edge endpoint columns as positions into :attr:`node_ids`."""
        ids = self.node_ids
        if self._iu is None:
            self._iu = np.searchsorted(ids, self._eu)
            self._iv = np.searchsorted(ids, self._ev)
        return self._iu, self._iv

    def edge_times(self) -> np.ndarray:
        """Creation-time column, aligned with :meth:`edges` order."""
        return self._et

    def _structure(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency structure ``(indptr, indices)`` over positions."""
        if self._indptr is None:
            if telemetry.tracer.enabled:
                with telemetry.tracer.span(
                    "snapshot.csr_build",
                    snapshot=self.index,
                    nodes=self.num_nodes,
                    edges=self.num_edges,
                ):
                    self._build_structure()
                telemetry.metrics.counter("snapshot.csr_builds").inc()
            else:
                self._build_structure()
        return self._indptr, self._indices

    def _build_structure(self) -> None:
        n = len(self.node_ids)
        iu, iv = self.edge_indices()
        rows = np.concatenate((iu, iv))
        cols = np.concatenate((iv, iu))
        counts = np.bincount(rows, minlength=n)
        order = np.lexsort((cols, rows))
        self._indices = cols[order]
        self._indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
        )
        self._deg = counts.astype(np.int64)

    def csr_structure(self) -> tuple[np.ndarray, np.ndarray]:
        """Public view of the CSR adjacency ``(indptr, indices)``.

        Used by the graph-integrity auditor (:mod:`repro.graph.audit`) to
        check degree totals against the edge columns without reaching into
        private state; treat the returned arrays as read-only.
        """
        return self._structure()

    def csr_stats(self) -> CsrStats:
        """Structural statistics driving enumeration-strategy selection."""
        self._structure()
        n = len(self.node_ids)
        deg = self._deg
        nnz = int(len(self._indices))
        possible = n * (n - 1)
        return CsrStats(
            nodes=n,
            edges=self.num_edges,
            nnz=nnz,
            density=(nnz / possible) if possible else 0.0,
            max_degree=int(deg.max()) if n else 0,
            two_hop_work=int(np.dot(deg, deg)),
        )

    def positions_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorised node id -> position lookup (raises on unknown ids)."""
        values = np.asarray(values, dtype=np.int64)
        ids = self.node_ids
        if len(values) == 0:
            return np.zeros(0, dtype=np.int64)
        pos = np.searchsorted(ids, values)
        pos_safe = np.minimum(pos, max(len(ids) - 1, 0))
        if len(ids) == 0 or not np.array_equal(ids[pos_safe], values):
            bad = (
                values[0]
                if len(ids) == 0
                else values[np.flatnonzero(ids[pos_safe] != values)[0]]
            )
            raise KeyError(int(bad))
        return pos_safe

    # ------------------------------------------------------------------
    # Static-graph queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self._eu)

    def nodes(self) -> Iterator[int]:
        return iter(self.node_list)

    def edges(self) -> Iterator[Pair]:
        """Iterate canonical ``(u, v)`` pairs in edge-creation order."""
        return zip(self._eu.tolist(), self._ev.tolist())

    def neighbors(self, node: int) -> set[int]:
        cached = self._adj.get(node)
        if cached is not None:
            return cached
        i = self._position(node)
        indptr, indices = self._structure()
        result = set(self.node_ids[indices[indptr[i] : indptr[i + 1]]].tolist())
        self._adj[node] = result
        return result

    def degree(self, node: int) -> int:
        i = self._position(node)
        self._structure()
        return int(self._deg[i])

    def has_node(self, node: int) -> bool:
        if self._node_pos is not None:
            return node in self._node_pos
        ids = self.node_ids
        i = np.searchsorted(ids, node)
        return bool(i < len(ids) and ids[i] == node)

    def has_edge(self, u: int, v: int) -> bool:
        u, v = canonical_pair(u, v)
        if not (self.has_node(u) and self.has_node(v)):
            return False
        indptr, indices = self._structure()
        i, target = self._position(u), self._position(v)
        row = indices[indptr[i] : indptr[i + 1]]
        j = np.searchsorted(row, target)
        return bool(j < len(row) and row[j] == target)

    def _position(self, node: int) -> int:
        """Position of one node id (KeyError on unknown, like a dict)."""
        if self._node_pos is not None:
            return self._node_pos[node]
        ids = self.node_ids
        i = int(np.searchsorted(ids, node))
        if i >= len(ids) or ids[i] != node:
            raise KeyError(node)
        return i

    def __contains__(self, node: int) -> bool:
        return self.has_node(node)

    # ------------------------------------------------------------------
    # Node indexing and matrix forms (used by the matrix/walk metrics)
    # ------------------------------------------------------------------
    @property
    def node_list(self) -> list[int]:
        """Nodes in a stable sorted order (defines matrix row indices)."""
        if self._node_list is None:
            self._node_list = self.node_ids.tolist()
        return self._node_list

    @property
    def node_pos(self) -> dict[int, int]:
        """Mapping node id -> row index in :meth:`adjacency_matrix`."""
        if self._node_pos is None:
            self._node_pos = {node: i for i, node in enumerate(self.node_list)}
        return self._node_pos

    def adjacency_matrix(self) -> sp.csr_matrix:
        """Symmetric 0/1 adjacency in CSR form, rows ordered by node_list.

        Built once from the edge columns with vectorised kernels and
        cached; treat the returned matrix as read-only.
        """
        if self._csr is None:
            indptr, indices = self._structure()
            n = len(self.node_ids)
            data = np.ones(len(indices), dtype=np.float64)
            self._csr = sp.csr_matrix((data, indices, indptr), shape=(n, n))
        return self._csr

    def degree_array(self) -> np.ndarray:
        """Degrees aligned with :attr:`node_list` (fresh float64 copy)."""
        self._structure()
        return self._deg.astype(np.float64)

    # ------------------------------------------------------------------
    # Temporal passthroughs, evaluated as of the snapshot time
    # ------------------------------------------------------------------
    def idle_time(self, node: int) -> float:
        """Days since ``node`` last created an edge, as of snapshot time."""
        return self.trace.idle_time(node, self.time)

    def recent_edge_count(self, node: int, window: float) -> int:
        """Edges ``node`` created in the last ``window`` days."""
        return self.trace.recent_edge_count(node, self.time, window)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a networkx ``Graph`` (used for cross-validation tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.node_list)
        g.add_edges_from(self.edges())
        return g

    def subgraph(self, nodes: Iterable[int]) -> "SnapshotView":
        """Restrict the snapshot to a node subset (snowball samples, §5.1)."""
        return SnapshotView(self, set(nodes))

    # ------------------------------------------------------------------
    # Pickling (worker transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Ship the compact columns; drop scratch caches and lazy structure.

        The CSR structure, neighbour sets, and metric cache are all
        derivable (and often huge), so a pickled snapshot is little more
        than three array views plus its trace — the representation the
        parallel runner counts on when shipping work to processes.
        """
        return {
            "trace": self.trace,
            "cutoff": self.cutoff,
            "index": self.index,
            "time": self.time,
            "eu": np.ascontiguousarray(self._eu),
            "ev": np.ascontiguousarray(self._ev),
            "et": np.ascontiguousarray(self._et),
            "node_ids": None if self._ids is None else np.ascontiguousarray(self._ids),
        }

    def __setstate__(self, state: dict) -> None:
        self._init_core(
            state["trace"],
            state["cutoff"],
            state["index"],
            state["time"],
            eu=state["eu"],
            ev=state["ev"],
            et=state["et"],
            node_ids=state["node_ids"],
        )

    def __repr__(self) -> str:
        return (
            f"Snapshot(index={self.index}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, time={self.time:.2f}d)"
        )


class SnapshotView(Snapshot):
    """A snapshot restricted to a node subset, preserving temporal access.

    Used for snowball-sampled evaluation (Section 5.1): metric and classifier
    features are computed among sampled nodes only, but idle times etc. still
    come from the full trace.
    """

    def __init__(self, base: Snapshot, nodes: set[int]) -> None:
        ids = np.asarray(sorted(nodes), dtype=np.int64).reshape(-1)
        present = _isin_sorted(ids, base.node_ids)
        if not present.all():
            raise ValueError(
                f"{int((~present).sum())} nodes not present in base snapshot"
            )
        keep = _isin_sorted(base._eu, ids) & _isin_sorted(base._ev, ids)
        self._init_core(
            base.trace,
            base.cutoff,
            base.index,
            base.time,
            eu=base._eu[keep],
            ev=base._ev[keep],
            et=base._et[keep],
            node_ids=ids,
        )


def snapshot_sequence(
    trace: TemporalGraph,
    delta: int,
    start: int | None = None,
    max_snapshots: int | None = None,
) -> list[Snapshot]:
    """Slice ``trace`` into snapshots separated by ``delta`` new edges.

    ``start`` is the edge count of the first snapshot; it defaults to
    ``delta`` (i.e. the first snapshot is the trace's first ``delta`` edges).
    Matching Table 2 of the paper, the caller picks ``delta`` so the sequence
    has enough snapshots (> 15) without making inter-snapshot gaps too long.

    A trailing partial snapshot (fewer than ``delta`` new edges) is dropped,
    keeping the "constant new edges per snapshot" invariant exact.

    Construction is amortised: the trace's stream index is built once and
    every snapshot is an O(1) trio of column views over it (per-snapshot
    CSR structure materialises lazily, on first adjacency/degree query).
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if start is None:
        start = delta
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    with telemetry.tracer.span(
        "snapshot.sequence", delta=delta, edges=trace.num_edges
    ) as span:
        if trace.num_edges:
            trace.stream_index()  # warm the shared remap table once
        cutoffs = range(start, trace.num_edges + 1, delta)
        snaps = [Snapshot(trace, c, index=i) for i, c in enumerate(cutoffs)]
        if max_snapshots is not None:
            snaps = snaps[:max_snapshots]
        span.set(snapshots=len(snaps))
    return snaps


def new_edges_between(previous: Snapshot, current: Snapshot) -> set[Pair]:
    """Ground truth for one prediction step.

    Returns the edges present in ``current`` but not in ``previous`` whose
    *both* endpoints already existed in ``previous`` — the paper's prediction
    target explicitly excludes edges created by nodes that join after ``t``.
    """
    if current.cutoff <= previous.cutoff:
        raise ValueError("current snapshot must extend the previous one")
    u, v, _ = current.trace.columns()
    eu = u[previous.cutoff : current.cutoff]
    ev = v[previous.cutoff : current.cutoff]
    known = _isin_sorted(eu, previous.node_ids) & _isin_sorted(ev, previous.node_ids)
    return set(zip(eu[known].tolist(), ev[known].tolist()))
