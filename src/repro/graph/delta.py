"""Incremental delta engine over the columnar temporal core.

The paper evaluates on static prefix snapshots, but its central empirical
observation — new edges form almost entirely inside the 2-hop neighbourhood
of recently active nodes (Sections 4.2 and 6) — is exactly the locality
that makes *incremental* maintenance cheap.  :class:`DeltaGraph` wraps a
:class:`~repro.graph.dyngraph.TemporalGraph` and, per applied edge batch,
updates every derived columnar structure in place instead of rebuilding:

- the ``u``/``v``/``t`` event columns and the :class:`StreamIndex` remap
  (``node_ids``, dense endpoint columns, ``first_seen``), re-installed into
  the trace's caches so plain :class:`~repro.graph.snapshots.Snapshot`
  construction never re-derives them;
- CSR adjacency, degree, and last-activity columns, repaired only for the
  touched rows;
- the unconnected 2-hop candidate set with exact common-neighbour counts,
  maintained in ``O(deg(u) + deg(v))`` bump work per inserted edge;
- cached CN/AA/RA score tables, refreshed lazily for the *dirty region*
  only: pairs whose CN count changed, plus candidate pairs with both
  endpoints adjacent to a node whose degree changed since the last flush
  (a changed intermediate ``w`` of pair ``(a, b)`` implies ``a, b ∈ N(w)``,
  so the union of changed-node neighbourhoods covers every stale score).

``materialize()`` returns a snapshot **byte-identical** to a full rebuild
at the same cutoff — columns, CSR structure, candidate enumeration order,
and metric scores.  Two properties make the score tables bitwise-stable
rather than merely close: common-neighbour counts are maintained as exact
integers (every float64 in ``A @ A`` is an integer below 2^53), and dirty
AA/RA entries are recomputed through *row-sliced* sparse products
``A[R] @ diag(w) @ A`` whose per-entry accumulation order is identical to
the full product's (scipy's CSR matmul accumulates left-to-right over
ascending intermediate columns, and row slicing preserves rows verbatim).
``tests/test_delta_equivalence.py`` enforces this on randomized streams.

Candidate pairs and score tables are keyed by packed ``row * S + col``
position keys (:data:`~repro.utils.pairs.PAIR_POSITION_SHIFT`): integer
keys sort exactly like row-major ``(row, col)`` tuples, and because node
insertion remaps positions *monotonically*, patching a key array after new
nodes arrive is a decode / gather / re-encode — never a re-sort.

:class:`IncrementalNeighborhood` — the dictionary-based streaming tracker
this module grew out of (formerly ``repro.extensions.incremental``) —
lives here too and remains the lightweight id-space option when only CN
counts are needed; ``repro.extensions.incremental`` re-exports it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.graph.dyngraph import StreamIndex, TemporalGraph
from repro.graph.snapshots import Snapshot, _isin_sorted
from repro.telemetry.metrics import SIZE_BUCKETS
from repro.utils.pairs import (
    PAIR_POSITION_SHIFT,
    Pair,
    canonical_pair,
    decode_position_pairs,
    encode_position_pairs,
)

#: names the delta engine can keep warm score tables for.
TRACKABLE_SCORES = ("CN", "AA", "RA")


@dataclass(frozen=True)
class DeltaReport:
    """Outcome of one :meth:`DeltaGraph.apply` batch."""

    #: edges actually inserted into the stream.
    applied: int
    #: events skipped because the pair already existed.
    duplicates: int
    #: events skipped because ``u == v``.
    self_loops: int
    #: node ids first seen in this batch.
    new_nodes: int
    #: candidate pairs currently awaiting a score refresh.
    dirty_pairs: int
    #: nodes whose degree changed since the last score flush.
    dirty_nodes: int
    #: size of the maintained unconnected 2-hop candidate set.
    candidates: int


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class DeltaGraph:
    """Incrementally maintained columnar state over a growing trace.

    All positional arrays live in the dense position space of the sorted
    ``_node_ids`` table; ``_adj_keys`` holds the *doubled* adjacency as
    sorted packed keys (one ``row*S+col`` per direction — exactly the CSR
    ``indices`` column with its ``indptr`` implied by ``cumsum(_deg)``),
    and ``_cand_keys``/``_cand_cn`` the sorted unconnected 2-hop pairs
    with exact common-neighbour counts.  The graph-integrity auditor
    (:func:`repro.graph.audit.audit_delta`) recomputes every one of these
    structures from the event columns and cross-checks them.
    """

    def __init__(
        self,
        trace: "TemporalGraph | None" = None,
        *,
        track_scores: "tuple[str, ...]" = TRACKABLE_SCORES,
    ) -> None:
        unknown = [n for n in track_scores if n not in TRACKABLE_SCORES]
        if unknown:
            raise ValueError(
                f"untrackable score names {unknown}; choose from {TRACKABLE_SCORES}"
            )
        self._tracked = tuple(track_scores)
        self.trace = trace if trace is not None else TemporalGraph()
        self._rebuild_from_trace()

    # ------------------------------------------------------------------
    # Initial build (vectorised, reuses the batch machinery once)
    # ------------------------------------------------------------------
    def _rebuild_from_trace(self) -> None:
        """Derive every maintained structure from the wrapped trace.

        Runs the proven batch kernels (stream index, ``A @ A`` products)
        exactly once; from here on :meth:`apply` keeps the state current
        without ever rebuilding.
        """
        trace = self.trace
        num_edges = trace.num_edges
        self._cu, self._cv, self._ct = trace.columns()
        empty_i = _frozen(np.zeros(0, dtype=np.int64))
        if num_edges == 0:
            self._node_ids = empty_i
            self._eu = empty_i
            self._ev = empty_i
            self._first_seen = empty_i
            self._deg = np.zeros(0, dtype=np.int64)
            self._last_active = np.zeros(0, dtype=np.float64)
            self._adj_keys = np.zeros(0, dtype=np.int64)
            self._cand_keys = np.zeros(0, dtype=np.int64)
            self._cand_cn = np.zeros(0, dtype=np.int64)
            self._scores = {
                name: np.zeros(0, dtype=np.float64)
                for name in self._tracked
                if name != "CN"
            }
            self._dirty = np.zeros(0, dtype=bool)
            self._dirty_nodes: set[int] = set()
            return
        index = trace.stream_index()
        if len(index.node_ids) >= PAIR_POSITION_SHIFT:
            raise ValueError(
                f"node table too large for packed pair keys "
                f"({len(index.node_ids)} >= 2^31)"
            )
        self._node_ids = index.node_ids
        self._eu = index.eu
        self._ev = index.ev
        self._first_seen = index.first_seen
        n = len(index.node_ids)
        doubled_rows = np.concatenate((index.eu, index.ev))
        doubled_cols = np.concatenate((index.ev, index.eu))
        self._adj_keys = np.sort(encode_position_pairs(doubled_rows, doubled_cols))
        self._deg = np.bincount(doubled_rows, minlength=n).astype(np.int64)
        last = np.full(n, -np.inf)
        np.maximum.at(last, index.eu, self._ct)
        np.maximum.at(last, index.ev, self._ct)
        self._last_active = last
        # Candidate set + warm score tables via the kernel expansion — the
        # same descending-order accumulation the batch path's score_block
        # performs (and, by the SMMP-order argument in repro.metrics.kernels,
        # the same float additions as the sparse products a full rebuild
        # would sample), so the seeded values are bitwise-canonical.  The
        # chunked loop bounds the expansion's working set; no A^2 or
        # weighted product is materialised during seeding any more.
        from repro.metrics.base import pairs_to_indices
        from repro.metrics.candidates import two_hop_pairs
        from repro.metrics.kernels import (
            block_pair_limit,
            common_neighbor_expansion,
            intersection_counts,
            weighted_counts,
        )
        from repro.metrics.local import inv_degree_weights, inv_log_degree_weights

        snap = Snapshot(trace, num_edges)
        pairs = two_hop_pairs(snap)
        rows, cols = pairs_to_indices(snap, pairs)
        self._cand_keys = encode_position_pairs(rows, cols)
        weight_fns = {"AA": inv_log_degree_weights, "RA": inv_degree_weights}
        degrees = self._deg.astype(np.float64)
        weight_vecs = {
            name: weight_fns[name](degrees)
            for name in self._tracked
            if name != "CN"  # CN is served from the exact integer counts
        }
        indptr, indices = snap.csr_structure()
        limit = block_pair_limit()
        cn_parts: "list[np.ndarray]" = []
        score_parts: "dict[str, list[np.ndarray]]" = {n: [] for n in weight_vecs}
        for start in range(0, len(rows), limit):
            r = rows[start : start + limit]
            c = cols[start : start + limit]
            pair_ids, neighbors = common_neighbor_expansion(
                indptr, indices, r, c, adj_keys=self._adj_keys
            )
            cn_parts.append(intersection_counts(pair_ids, len(r)))
            for name, w in weight_vecs.items():
                score_parts[name].append(
                    weighted_counts(pair_ids, neighbors, w, len(r))
                )

        def cat(parts: "list[np.ndarray]") -> np.ndarray:
            if not parts:
                return np.zeros(0, dtype=np.float64)
            return parts[0] if len(parts) == 1 else np.concatenate(parts)

        self._cand_cn = cat(cn_parts).astype(np.int64)
        self._scores = {name: cat(parts) for name, parts in score_parts.items()}
        self._dirty = np.zeros(len(self._cand_keys), dtype=bool)
        self._dirty_nodes = set()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        return len(self._ct)

    @property
    def num_candidates(self) -> int:
        return len(self._cand_keys)

    def __repr__(self) -> str:
        return (
            f"DeltaGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"candidates={self.num_candidates}, "
            f"dirty={int(np.count_nonzero(self._dirty))})"
        )

    def _check_in_sync(self) -> None:
        if len(self._ct) != self.trace.num_edges:
            raise RuntimeError(
                "wrapped trace was modified outside the DeltaGraph; "
                "construct a fresh DeltaGraph(trace) to resynchronise"
            )

    # ------------------------------------------------------------------
    # apply()
    # ------------------------------------------------------------------
    def apply(self, batch: Iterable[tuple[int, int, float]]) -> DeltaReport:
        """Insert an edge batch and update every maintained structure.

        Self-loops and duplicate pairs in the stream are skipped (and
        counted in the report); timestamps must be finite, non-negative,
        and non-decreasing across the surviving events — validated for the
        whole batch *before* any mutation, so a bad batch never leaves the
        engine half-applied.
        """
        events = [(int(u), int(v), float(t)) for u, v, t in batch]
        if telemetry.tracer.enabled:
            with telemetry.tracer.span("delta.apply", events=len(events)) as span:
                report = self._apply(events)
                span.set(
                    applied=report.applied,
                    new_nodes=report.new_nodes,
                    dirty_pairs=report.dirty_pairs,
                )
        else:
            report = self._apply(events)
        if telemetry.metrics.enabled:
            telemetry.metrics.counter("delta.edges_applied").inc(report.applied)
            telemetry.metrics.counter("delta.edges_skipped").inc(
                report.duplicates + report.self_loops
            )
            telemetry.metrics.histogram(
                "delta.dirty_nodes", bounds=SIZE_BUCKETS
            ).observe(report.dirty_nodes)
            telemetry.metrics.histogram(
                "delta.dirty_pairs", bounds=SIZE_BUCKETS
            ).observe(report.dirty_pairs)
        return report

    def _apply(self, events: "list[tuple[int, int, float]]") -> DeltaReport:
        trace = self.trace
        self._check_in_sync()
        # All-or-nothing validation before the first mutation.
        last = trace.end_time if trace.num_edges else None
        for u, v, t in events:
            if not np.isfinite(t) or t < 0:
                raise ValueError(f"timestamp {t!r} is not finite and non-negative")
            if u == v:
                continue
            if last is not None and t < last:
                raise ValueError(
                    f"edge timestamps must be non-decreasing: got {t} after {last}"
                )
            last = t

        # -- phase 1: sequential stream insertion + CN bump collection ----
        # Bumps are gathered against the *live* dict adjacency before each
        # insertion (a new edge (u, v) creates a 2-path u-v-x per existing
        # neighbour x of v, and v-u-x per neighbour x of u).
        start_edges = trace.num_edges
        pending: dict[Pair, int] = {}
        removed: list[Pair] = []
        applied_pairs: list[Pair] = []
        duplicates = self_loops = 0
        adj = trace._adj
        edge_times = trace._edge_times
        for u, v, t in events:
            if u == v:
                self_loops += 1
                continue
            pair = canonical_pair(u, v)
            if pair in edge_times:
                duplicates += 1
                continue
            a, b = pair
            for x in adj.get(b, ()):
                if x != a:
                    p = canonical_pair(a, x)
                    if p not in edge_times:
                        pending[p] = pending.get(p, 0) + 1
            for x in adj.get(a, ()):
                if x != b:
                    p = canonical_pair(b, x)
                    if p not in edge_times:
                        pending[p] = pending.get(p, 0) + 1
            # The pair stops being a candidate the moment it becomes an edge.
            pending.pop(pair, None)
            removed.append(pair)
            trace.add_edge(u, v, t)
            applied_pairs.append(pair)

        end_edges = trace.num_edges
        if end_edges == start_edges:
            return DeltaReport(
                applied=0,
                duplicates=duplicates,
                self_loops=self_loops,
                new_nodes=0,
                dirty_pairs=int(np.count_nonzero(self._dirty)),
                dirty_nodes=len(self._dirty_nodes),
                candidates=len(self._cand_keys),
            )

        # -- phase 2: vectorised column / index / structure patching ------
        new_u = np.asarray(trace._us[start_edges:end_edges], dtype=np.int64)
        new_v = np.asarray(trace._vs[start_edges:end_edges], dtype=np.int64)
        new_t = np.asarray(trace._ts[start_edges:end_edges], dtype=np.float64)
        self._cu = _frozen(np.concatenate((self._cu, new_u)))
        self._cv = _frozen(np.concatenate((self._cv, new_v)))
        self._ct = _frozen(np.concatenate((self._ct, new_t)))

        batch_ids = np.unique(np.concatenate((new_u, new_v)))
        fresh = batch_ids[~_isin_sorted(batch_ids, self._node_ids)]
        old_count = len(self._node_ids)
        adj_keys = self._adj_keys
        cand_keys = self._cand_keys
        if len(fresh):
            insert_at = np.searchsorted(self._node_ids, fresh)
            node_ids = np.insert(self._node_ids, insert_at, fresh)
            if len(node_ids) >= PAIR_POSITION_SHIFT:
                raise ValueError(
                    f"node table too large for packed pair keys "
                    f"({len(node_ids)} >= 2^31)"
                )
            # Positions shift monotonically, so gathering through the
            # old->new map patches dense columns and packed keys while
            # preserving their sort order — no re-sort anywhere.
            old_to_new = np.searchsorted(node_ids, self._node_ids)
            eu = old_to_new[self._eu]
            ev = old_to_new[self._ev]
            if len(adj_keys):
                r, c = decode_position_pairs(adj_keys)
                adj_keys = encode_position_pairs(old_to_new[r], old_to_new[c])
            if len(cand_keys):
                r, c = decode_position_pairs(cand_keys)
                cand_keys = encode_position_pairs(old_to_new[r], old_to_new[c])
            deg = np.insert(self._deg, insert_at, 0)
            last_active = np.insert(self._last_active, insert_at, -np.inf)
            old_positions = old_to_new
        else:
            node_ids = self._node_ids
            eu, ev = self._eu, self._ev
            deg, last_active = self._deg, self._last_active
            old_positions = None

        count = len(node_ids)
        batch_eu = np.searchsorted(node_ids, new_u)
        batch_ev = np.searchsorted(node_ids, new_v)
        eu = _frozen(np.concatenate((eu, batch_eu)))
        ev = _frozen(np.concatenate((ev, batch_ev)))

        # first_seen: scatter the old table, then fold in batch positions.
        first_seen = np.full(count, end_edges, dtype=np.int64)
        if old_count:
            if old_positions is None:
                first_seen[:old_count] = self._first_seen
            else:
                first_seen[old_positions] = self._first_seen
        batch_order = np.arange(start_edges, end_edges, dtype=np.int64)
        np.minimum.at(first_seen, batch_eu, batch_order)
        np.minimum.at(first_seen, batch_ev, batch_order)
        first_seen = _frozen(first_seen)

        np.add.at(deg, batch_eu, 1)
        np.add.at(deg, batch_ev, 1)
        np.maximum.at(last_active, batch_eu, new_t)
        np.maximum.at(last_active, batch_ev, new_t)

        # CSR repair: splice both directions of each new edge into the
        # sorted key array — only the touched rows move.
        added = np.concatenate(
            (
                encode_position_pairs(batch_eu, batch_ev),
                encode_position_pairs(batch_ev, batch_eu),
            )
        )
        added.sort()
        adj_keys = np.insert(adj_keys, np.searchsorted(adj_keys, added), added)

        # Candidate set: drop pairs that just became edges, then apply the
        # collected CN bumps (new candidates enter dirty with score 0).
        cand_cn, dirty = self._cand_cn, self._dirty
        scores = self._scores
        if removed:
            removed_arr = np.asarray(removed, dtype=np.int64)
            removed_keys = encode_position_pairs(
                np.searchsorted(node_ids, removed_arr[:, 0]),
                np.searchsorted(node_ids, removed_arr[:, 1]),
            )
            pos = np.searchsorted(cand_keys, removed_keys)
            safe = np.minimum(pos, max(len(cand_keys) - 1, 0))
            member = (
                (pos < len(cand_keys)) & (cand_keys[safe] == removed_keys)
                if len(cand_keys)
                else np.zeros(len(removed_keys), dtype=bool)
            )
            drop = pos[member]
            if len(drop):
                cand_keys = np.delete(cand_keys, drop)
                cand_cn = np.delete(cand_cn, drop)
                dirty = np.delete(dirty, drop)
                scores = {
                    name: np.delete(arr, drop) for name, arr in scores.items()
                }
        if pending:
            pend_arr = np.asarray(list(pending.keys()), dtype=np.int64)
            pend_delta = np.asarray(list(pending.values()), dtype=np.int64)
            pend_keys = encode_position_pairs(
                np.searchsorted(node_ids, pend_arr[:, 0]),
                np.searchsorted(node_ids, pend_arr[:, 1]),
            )
            order = np.argsort(pend_keys)
            pend_keys, pend_delta = pend_keys[order], pend_delta[order]
            pos = np.searchsorted(cand_keys, pend_keys)
            safe = np.minimum(pos, max(len(cand_keys) - 1, 0))
            member = (
                (pos < len(cand_keys)) & (cand_keys[safe] == pend_keys)
                if len(cand_keys)
                else np.zeros(len(pend_keys), dtype=bool)
            )
            bump_at = pos[member]
            cand_cn[bump_at] += pend_delta[member]
            dirty[bump_at] = True
            enter_keys = pend_keys[~member]
            if len(enter_keys):
                enter_at = np.searchsorted(cand_keys, enter_keys)
                cand_keys = np.insert(cand_keys, enter_at, enter_keys)
                cand_cn = np.insert(cand_cn, enter_at, pend_delta[~member])
                dirty = np.insert(dirty, enter_at, True)
                scores = {
                    name: np.insert(arr, enter_at, 0.0)
                    for name, arr in scores.items()
                }

        for a, b in applied_pairs:
            self._dirty_nodes.add(a)
            self._dirty_nodes.add(b)

        # Commit and re-install the trace-level caches so every Snapshot
        # built on this trace sees the incrementally maintained columns.
        self._node_ids = _frozen(node_ids) if len(fresh) else node_ids
        self._eu, self._ev, self._first_seen = eu, ev, first_seen
        self._deg, self._last_active = deg, last_active
        self._adj_keys = adj_keys
        self._cand_keys, self._cand_cn, self._dirty = cand_keys, cand_cn, dirty
        self._scores = scores
        self.trace._install_stream_caches(
            (self._cu, self._cv, self._ct),
            StreamIndex(self._node_ids, eu, ev, first_seen),
        )
        return DeltaReport(
            applied=end_edges - start_edges,
            duplicates=duplicates,
            self_loops=self_loops,
            new_nodes=len(fresh),
            dirty_pairs=int(np.count_nonzero(dirty)),
            dirty_nodes=len(self._dirty_nodes),
            candidates=len(cand_keys),
        )

    # ------------------------------------------------------------------
    # Score flush (lazy: runs on materialize / explicit flush)
    # ------------------------------------------------------------------
    def _csr_parts(self) -> tuple[np.ndarray, np.ndarray]:
        """Maintained CSR ``(indptr, indices)`` over node positions."""
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(self._deg, dtype=np.int64))
        )
        return indptr, self._adj_keys % PAIR_POSITION_SHIFT

    def flush_scores(self) -> int:
        """Refresh the score tables for the dirty region; returns its size.

        The dirty region is *exact*: pairs explicitly CN-bumped since the
        last flush, plus pairs with a changed-degree node among their
        common neighbours — found by sampling ``(A[W])^T (A[W])``, whose
        ``(a, b)`` entry counts changed nodes adjacent to both ``a`` and
        ``b`` (edges are only added, so a changed common neighbour is
        adjacent to both endpoints after the batch too).  Entries are
        recomputed through the kernel layer's common-neighbour expansion
        over the maintained CSR, whose descending-order accumulation is
        bitwise identical to the corresponding full-product entries (see
        :mod:`repro.metrics.kernels`) — no row-sliced matrix product is
        built any more.
        """
        tracked = [name for name in self._tracked if name != "CN"]
        refreshed = 0
        mask = self._dirty
        num_cand = len(self._cand_keys)
        if num_cand and (mask.any() or self._dirty_nodes):
            indptr, indices = self._csr_parts()
            if self._dirty_nodes:
                changed = np.asarray(sorted(self._dirty_nodes), dtype=np.int64)
                positions = np.searchsorted(self._node_ids, changed)
                matrix = sp.csr_matrix(
                    (np.ones(len(indices), dtype=np.float64), indices, indptr),
                    shape=(self.num_nodes, self.num_nodes),
                )
                changed_rows = matrix[positions]
                covered = sp.triu(
                    (changed_rows.T @ changed_rows).tocsr(), k=1
                ).tocoo()
                live = covered.data > 0  # guard explicit zeros
                if np.any(live):
                    keys = encode_position_pairs(
                        covered.row[live], covered.col[live]
                    )
                    pos = np.searchsorted(self._cand_keys, keys)
                    safe = np.minimum(pos, num_cand - 1)
                    member = (pos < num_cand) & (
                        self._cand_keys[safe] == keys
                    )
                    mask[pos[member]] = True
            refreshed = int(np.count_nonzero(mask))
            if refreshed and tracked:
                from repro.metrics.kernels import (
                    common_neighbor_expansion,
                    weighted_counts,
                )
                from repro.metrics.local import (
                    inv_degree_weights,
                    inv_log_degree_weights,
                )

                dirty_rows, dirty_cols = decode_position_pairs(
                    self._cand_keys[mask]
                )
                pair_ids, neighbors = common_neighbor_expansion(
                    indptr, indices, dirty_rows, dirty_cols,
                    adj_keys=self._adj_keys,
                )
                degrees = self._deg.astype(np.float64)
                weight_fns = {
                    "AA": inv_log_degree_weights,
                    "RA": inv_degree_weights,
                }
                for name in tracked:
                    weights = weight_fns[name](degrees)
                    self._scores[name][mask] = weighted_counts(
                        pair_ids, neighbors, weights, refreshed
                    )
        self._dirty = np.zeros(num_cand, dtype=bool)
        self._dirty_nodes.clear()
        return refreshed

    # ------------------------------------------------------------------
    # materialize()
    # ------------------------------------------------------------------
    def materialize(self) -> Snapshot:
        """A full-cutoff snapshot seeded entirely from maintained state.

        Byte-identical to ``Snapshot(rebuilt_trace, num_edges)`` plus its
        lazily built structure and metric caches: node table, position
        columns, CSR adjacency, candidate enumeration (``pairs_two_hop``),
        CN/AA/RA score tables, and the vectorised idle-time column.
        """
        self._check_in_sync()
        if self.num_edges == 0:
            raise ValueError("cannot materialize a snapshot of an empty stream")
        if telemetry.tracer.enabled:
            with telemetry.tracer.span(
                "delta.materialize", nodes=self.num_nodes, edges=self.num_edges
            ):
                snapshot = self._materialize()
            telemetry.metrics.counter("delta.materializations").inc()
            return snapshot
        return self._materialize()

    def _materialize(self) -> Snapshot:
        self.flush_scores()
        snapshot = Snapshot(self.trace, self.num_edges)
        snapshot._ids = self._node_ids
        snapshot._iu = self._eu
        snapshot._iv = self._ev
        indptr, indices = self._csr_parts()
        snapshot._indptr = indptr
        snapshot._indices = indices
        snapshot._deg = self._deg.copy()
        from repro.metrics.candidates import seed_candidate_cache
        from repro.metrics.local import DELTA_SCORES_KEY

        if len(self._cand_keys):
            rows, cols = decode_position_pairs(self._cand_keys)
            pairs = np.column_stack((self._node_ids[rows], self._node_ids[cols]))
        else:
            pairs = np.zeros((0, 2), dtype=np.int64)
        seed_candidate_cache(snapshot, pairs)
        table: dict = {"keys": self._cand_keys.copy()}
        if "CN" in self._tracked:
            table["CN"] = self._cand_cn.astype(np.float64)
        for name, values in self._scores.items():
            table[name] = values.copy()
        snapshot.cache[DELTA_SCORES_KEY] = table
        # now - last is exactly the activity kernel's subtraction; every
        # stream node has an edge at or before the snapshot time, so the
        # never-active fallback cannot trigger at full cutoff.
        snapshot.cache["node_idle_times"] = snapshot.time - self._last_active
        return snapshot

    # ------------------------------------------------------------------
    # Audit / pickling
    # ------------------------------------------------------------------
    def audit(self):
        """Run the 12 core invariants plus the delta-structure checks."""
        from repro.graph.audit import audit_delta

        return audit_delta(self)

    def __getstate__(self) -> dict:
        # The trace's compact stream pickle is the whole state; every
        # maintained array is re-derived (bitwise, by the flush/product
        # equivalence) on load, which also folds in any pending dirtiness.
        return {"trace": self.trace, "track_scores": self._tracked}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["trace"], track_scores=state["track_scores"])


class IncrementalNeighborhood:
    """Streaming adjacency + common-neighbour counts for non-edges.

    The dictionary-based, raw-id-space tracker the delta engine grew from:
    it maintains, under ``add_edge``, adjacency, degrees, and the CN count
    of every unconnected 2-hop pair in ``O(deg(u) + deg(v))`` per inserted
    edge — the lightweight option when only CN counts are needed and no
    columnar snapshot will ever be materialised.
    """

    def __init__(self) -> None:
        self._adj: dict[int, set[int]] = {}
        self._edges: set[Pair] = set()
        #: unconnected pair -> number of common neighbours (> 0 only).
        self._cn: dict[Pair, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def degree(self, node: int) -> int:
        return len(self._adj.get(node, ()))

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_pair(u, v) in self._edges

    def common_neighbors(self, u: int, v: int) -> int:
        """CN count of an unconnected pair (0 if beyond two hops)."""
        if self.has_edge(u, v):
            raise ValueError(f"({u}, {v}) is an edge, not a candidate")
        return self._cn.get(canonical_pair(u, v), 0)

    # ------------------------------------------------------------------
    def _bump(self, a: int, b: int, delta: int) -> None:
        """Adjust the CN count of candidate pair (a, b)."""
        if a == b:
            return
        pair = canonical_pair(a, b)
        if pair in self._edges:
            return
        value = self._cn.get(pair, 0) + delta
        if value > 0:
            self._cn[pair] = value
        else:
            self._cn.pop(pair, None)

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge (u, v); returns False if it already existed.

        Updates in O(deg(u) + deg(v)): the new edge creates a new 2-path
        u-v-x for every neighbour x of v (affecting candidate (u, x)) and
        v-u-x for every neighbour x of u (affecting candidate (v, x)).
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) rejected")
        pair = canonical_pair(u, v)
        if pair in self._edges:
            return False
        self._adj.setdefault(u, set())
        self._adj.setdefault(v, set())
        # The pair stops being a candidate the moment it becomes an edge.
        self._cn.pop(pair, None)
        for x in self._adj[v]:
            self._bump(u, x, +1)
        for x in self._adj[u]:
            self._bump(v, x, +1)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edges.add(pair)
        return True

    def extend(self, edges: Iterable[tuple[int, int]]) -> int:
        """Insert edges in order; returns how many were actually new.

        Duplicate pairs in the stream are skipped (and excluded from the
        returned count) exactly as in :meth:`add_edge`; self-loops raise.
        """
        inserted = 0
        for u, v in edges:
            if self.add_edge(u, v):
                inserted += 1
        return inserted

    # ------------------------------------------------------------------
    def two_hop_pairs(self) -> np.ndarray:
        """Current unconnected 2-hop pairs as an (n, 2) array."""
        if not self._cn:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(sorted(self._cn), dtype=np.int64)

    def cn_scores(self, pairs: np.ndarray) -> np.ndarray:
        """CN scores for given candidate pairs (0 beyond two hops)."""
        return np.fromiter(
            (self._cn.get(canonical_pair(int(u), int(v)), 0) for u, v in pairs),
            dtype=np.float64,
            count=len(pairs),
        )

    def top_candidates(self, k: int) -> list[tuple[Pair, int]]:
        """The k candidate pairs with the highest CN count.

        Deterministic tie order (by pair id) — callers that need the
        paper's random tie-breaking should use ``repro.eval.ranking`` over
        ``two_hop_pairs()`` / ``cn_scores()`` instead.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        ranked = sorted(self._cn.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
