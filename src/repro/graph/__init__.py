"""Temporal graph substrate.

This subpackage provides the data structures the paper's methodology is built
on: a timestamped edge stream (:class:`~repro.graph.dyngraph.TemporalGraph`),
constant-edge-delta snapshot sequencing
(:func:`~repro.graph.snapshots.snapshot_sequence`), structural statistics used
both for the evolution figures (Figs. 2-4) and as meta-classifier features
(Section 4.3), snowball sampling (Section 5.1), and plain-text trace I/O.
"""

from repro.graph.audit import AuditReport, TraceAuditError, audit_delta, audit_graph
from repro.graph.delta import DeltaGraph, DeltaReport, IncrementalNeighborhood
from repro.graph.dyngraph import TemporalGraph
from repro.graph.sampling import snowball_sample
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.graph.stats import GraphFeatures, graph_features
from repro.graph.wal import (
    RecoveryError,
    RecoveryResult,
    WalCorruptError,
    WalError,
    WalMismatchError,
    WalRecord,
    WriteAheadLog,
    recover_state,
    scan_wal,
    verify_wal,
    wal_fingerprint,
)

__all__ = [
    "TemporalGraph",
    "Snapshot",
    "snapshot_sequence",
    "snowball_sample",
    "GraphFeatures",
    "graph_features",
    "AuditReport",
    "TraceAuditError",
    "audit_graph",
    "audit_delta",
    "DeltaGraph",
    "DeltaReport",
    "IncrementalNeighborhood",
    "RecoveryError",
    "RecoveryResult",
    "WalCorruptError",
    "WalError",
    "WalMismatchError",
    "WalRecord",
    "WriteAheadLog",
    "recover_state",
    "scan_wal",
    "verify_wal",
    "wal_fingerprint",
]
