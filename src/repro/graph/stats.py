"""Structural statistics of snapshots.

These serve two roles in the paper:

- the network-evolution figures (Figs. 2-4: average degree, average path
  length, average clustering coefficient over time), and
- the feature vector of the Section 4.3 meta-classifiers that pick the best
  link prediction algorithm for a network (node/edge counts, degree
  distribution moments and percentiles, clustering, path length,
  assortativity).

Everything is implemented from first principles on the snapshot's adjacency
sets; networkx is only used in the test suite to cross-validate results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.utils.rng import ensure_rng


def average_degree(snapshot: Snapshot) -> float:
    """Mean node degree, ``2|E| / |V|``."""
    if snapshot.num_nodes == 0:
        return 0.0
    return 2.0 * snapshot.num_edges / snapshot.num_nodes


def degree_statistics(snapshot: Snapshot, percentiles: tuple[float, ...] = (50, 90, 99)):
    """Return ``(mean, std, {p: value})`` of the degree distribution."""
    degrees = snapshot.degree_array()
    if degrees.size == 0:
        return 0.0, 0.0, {p: 0.0 for p in percentiles}
    pct = {p: float(np.percentile(degrees, p)) for p in percentiles}
    return float(degrees.mean()), float(degrees.std()), pct


def local_clustering(snapshot: Snapshot, node: int) -> float:
    """Clustering coefficient of one node: closed wedges / possible wedges."""
    neigh = snapshot.neighbors(node)
    k = len(neigh)
    if k < 2:
        return 0.0
    links = 0
    neigh_list = list(neigh)
    for i, u in enumerate(neigh_list):
        nu = snapshot.neighbors(u)
        for v in neigh_list[i + 1 :]:
            if v in nu:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(
    snapshot: Snapshot,
    sample_size: int | None = None,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Mean local clustering coefficient, optionally over a node sample.

    Exact computation is quadratic in degree; for the larger synthetic
    traces a uniform node sample (the standard estimator) is accurate and
    fast.
    """
    nodes = snapshot.node_list
    if not nodes:
        return 0.0
    if sample_size is not None and sample_size < len(nodes):
        rng = ensure_rng(seed)
        nodes = list(rng.choice(nodes, size=sample_size, replace=False))
    return float(np.mean([local_clustering(snapshot, u) for u in nodes]))


def triangle_count(snapshot: Snapshot, node: int) -> int:
    """Number of triangles that include ``node``.

    This is the ``N_triangle`` term of the local naive Bayes metrics
    (BCN/BAA/BRA, Table 3).
    """
    neigh = snapshot.neighbors(node)
    neigh_list = list(neigh)
    count = 0
    for i, u in enumerate(neigh_list):
        nu = snapshot.neighbors(u)
        for v in neigh_list[i + 1 :]:
            if v in nu:
                count += 1
    return count


def bfs_distances(snapshot: Snapshot, source: int, max_depth: int | None = None) -> dict[int, int]:
    """Hop distances from ``source`` to every reachable node (bounded BFS)."""
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        if max_depth is not None and du >= max_depth:
            continue
        for v in snapshot.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                frontier.append(v)
    return dist


def average_path_length(
    snapshot: Snapshot,
    sample_size: int = 100,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Estimate the mean shortest-path length between reachable node pairs.

    Runs BFS from a uniform sample of sources and averages distances to all
    reached nodes — the standard estimator for Fig. 3 at scale.  Unreachable
    pairs are ignored (the traces are dominated by one giant component).
    """
    nodes = snapshot.node_list
    if len(nodes) < 2:
        return 0.0
    rng = ensure_rng(seed)
    size = min(sample_size, len(nodes))
    sources = rng.choice(nodes, size=size, replace=False)
    total, count = 0, 0
    for s in sources:
        for node, d in bfs_distances(snapshot, int(s)).items():
            if node != s:
                total += d
                count += 1
    return total / count if count else 0.0


def degree_assortativity(snapshot: Snapshot) -> float:
    """Pearson correlation of degrees across edge endpoints.

    Positive for the friendship networks (Renren, Facebook), consistently
    negative for the subscription-style YouTube network — the structural
    split Section 4.2 builds its analysis on.
    """
    if snapshot.num_edges == 0:
        return 0.0
    degrees = snapshot.degree_array()
    iu, iv = snapshot.edge_indices()
    # Count each undirected edge in both orientations so the measure is
    # symmetric (Newman's definition).
    x_arr = np.concatenate((degrees[iu], degrees[iv]))
    y_arr = np.concatenate((degrees[iv], degrees[iu]))
    sx, sy = x_arr.std(), y_arr.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x_arr - x_arr.mean()) * (y_arr - y_arr.mean())).mean() / (sx * sy))


def degree_ccdf(snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of the degree distribution.

    Returns ``(degrees, fraction_of_nodes_with_degree_>= d)`` — the
    log-log view in which the subscription network's supernode tail is a
    straight line and the friendship networks bend.
    """
    degrees = snapshot.degree_array()
    if degrees.size == 0:
        return np.zeros(0), np.zeros(0)
    unique, counts = np.unique(degrees, return_counts=True)
    # Nodes with degree >= unique[i] = suffix sum of the counts.
    at_least = np.cumsum(counts[::-1])[::-1]
    return unique, at_least / degrees.size


def hill_tail_exponent(snapshot: Snapshot, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the degree distribution's power-law tail exponent.

    Estimates ``alpha`` of ``P(deg >= d) ~ d^-alpha`` from the top
    ``tail_fraction`` of degrees.  Heavy supernode tails (subscription
    networks) give small alpha (~1-2); friendship networks with degree
    saturation give larger values.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    degrees = np.sort(snapshot.degree_array())[::-1]
    k = max(2, int(round(tail_fraction * len(degrees))))
    tail = degrees[:k]
    threshold = tail[-1]
    if threshold <= 0:
        raise ValueError("tail contains degree-0 nodes; increase tail_fraction")
    logs = np.log(tail / threshold)
    mean_log = float(logs[:-1].mean()) if k > 1 else 0.0
    if mean_log <= 0:
        return float("inf")  # degenerate flat tail
    return 1.0 / mean_log


@dataclass
class GraphFeatures:
    """Feature vector of one snapshot, as used by the Section 4.3 classifier."""

    num_nodes: int
    num_edges: int
    avg_degree: float
    degree_std: float
    degree_p50: float
    degree_p90: float
    degree_p99: float
    clustering: float
    avg_path_length: float
    assortativity: float

    FIELD_NAMES: tuple[str, ...] = field(
        default=(
            "num_nodes",
            "num_edges",
            "avg_degree",
            "degree_std",
            "degree_p50",
            "degree_p90",
            "degree_p99",
            "clustering",
            "avg_path_length",
            "assortativity",
        ),
        repr=False,
    )

    def as_array(self) -> np.ndarray:
        return np.asarray([getattr(self, name) for name in self.FIELD_NAMES], dtype=np.float64)


def graph_features(
    snapshot: Snapshot,
    clustering_sample: int | None = 400,
    path_sample: int = 50,
    seed: "int | np.random.Generator | None" = 0,
) -> GraphFeatures:
    """Compute the full Section 4.3 feature vector for one snapshot."""
    rng = ensure_rng(seed)
    mean, std, pct = degree_statistics(snapshot)
    return GraphFeatures(
        num_nodes=snapshot.num_nodes,
        num_edges=snapshot.num_edges,
        avg_degree=mean,
        degree_std=std,
        degree_p50=pct[50],
        degree_p90=pct[90],
        degree_p99=pct[99],
        clustering=average_clustering(snapshot, sample_size=clustering_sample, seed=rng),
        avg_path_length=average_path_length(snapshot, sample_size=path_sample, seed=rng),
        assortativity=degree_assortativity(snapshot),
    )
