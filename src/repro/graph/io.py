"""Plain-text trace serialisation.

Traces are stored one edge-creation event per line — ``u v t`` — the same
shape as the published Facebook New Orleans dataset [41].  Lines starting
with ``#`` are comments.  This lets users bring their own timestamped edge
lists (e.g. SNAP temporal graphs) into the evaluation framework.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

from repro.graph.dyngraph import TemporalGraph


def write_trace(trace: TemporalGraph, path: "str | os.PathLike[str]") -> None:
    """Write the trace's edge stream to ``path`` (``u v t`` per line)."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write("# u v t(days)\n")
        for u, v, t in trace.edges():
            fh.write(f"{u} {v} {t:.6f}\n")


def iter_trace_lines(path: "str | os.PathLike[str]") -> Iterator[tuple[int, int, float]]:
    """Yield ``(u, v, t)`` events from a trace file, skipping comments."""
    with open(path, encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2:
                # Untimestamped edge lists get a synthetic, order-derived
                # timestamp so they can still drive the sequencing machinery.
                u, v = parts
                yield int(u), int(v), float(lineno)
            elif len(parts) == 3:
                u, v, t = parts
                yield int(u), int(v), float(t)
            else:
                raise ValueError(f"{path}:{lineno}: expected 'u v [t]', got {line!r}")


def read_trace(path: "str | os.PathLike[str]") -> TemporalGraph:
    """Load a trace file into a :class:`TemporalGraph`.

    Events are sorted by timestamp before insertion, so files that are not
    perfectly time-ordered (common in crawled datasets) load correctly.
    """
    events = sorted(iter_trace_lines(path), key=lambda e: e[2])
    return TemporalGraph.from_stream(events)
