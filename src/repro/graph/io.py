"""Plain-text trace serialisation.

Traces are stored one edge-creation event per line — ``u v t`` — the same
shape as the published Facebook New Orleans dataset [41].  Lines starting
with ``#`` are comments.  This lets users bring their own timestamped edge
lists (e.g. SNAP temporal graphs) into the evaluation framework.

Reading goes through the hardened ingest pipeline (:mod:`repro.ingest`):
gzip and UTF-8/BOM input, fixed-size block parsing straight into NumPy
columns, and an error taxonomy with per-class ``strict`` / ``repair`` /
``quarantine`` policies instead of a bare ``ValueError`` on the first
oddity.  Writing emits a ``# repro-trace v2`` format-version header and
``repr``-exact float timestamps, so a write/read round trip preserves
sub-second synthetic times bit for bit; ``compress=True`` (or a ``.gz``
suffix) gzips the output.
"""

from __future__ import annotations

import gzip
import os
from collections.abc import Iterator

from repro.graph.dyngraph import TemporalGraph
from repro.ingest import IngestPolicy, iter_events, load_trace

#: version stamped into the ``# repro-trace vN`` header by write_trace.
TRACE_FORMAT_VERSION = 2


def write_trace(
    trace: TemporalGraph,
    path: "str | os.PathLike[str]",
    compress: "bool | None" = None,
) -> None:
    """Write the trace's edge stream to ``path`` (``u v t`` per line).

    Timestamps are written with ``repr`` — the shortest string that
    round-trips the exact float64 — rather than a fixed ``%.6f``, which
    silently truncated sub-second synthetic times.  ``compress`` gzips the
    output; ``None`` decides by a ``.gz`` suffix.
    """
    if compress is None:
        compress = str(path).endswith(".gz")
    opener = gzip.open if compress else open
    with opener(path, "wt", encoding="utf-8") as fh:
        fh.write(f"# repro-trace v{TRACE_FORMAT_VERSION}\n")
        fh.write("# u v t(days)\n")
        if trace.num_edges:
            u, v, t = trace.columns()
            fh.writelines(
                f"{a} {b} {w!r}\n"
                for a, b, w in zip(u.tolist(), v.tolist(), t.tolist())
            )


def iter_trace_lines(path: "str | os.PathLike[str]") -> Iterator[tuple[int, int, float]]:
    """Yield ``(u, v, t)`` events from a trace file, skipping comments.

    A strict per-line streaming view: any malformed line raises a located
    :class:`~repro.ingest.TraceFormatError`.  Whole-file loads should use
    :func:`read_trace`, which parses in blocks and supports policies.
    """
    return iter_events(path)


def read_trace(
    path: "str | os.PathLike[str]",
    policy: "IngestPolicy | None" = None,
    quarantine_path: "str | os.PathLike[str] | None" = None,
    jobs: "int | None" = None,
) -> TemporalGraph:
    """Load a trace file into a :class:`TemporalGraph`.

    Runs the streaming ingest pipeline: gzip/BOM tolerated, events parsed
    in fixed-size blocks directly into columns, timestamp ordering restored
    by one vectorised ``argsort``, and every bad record classified and
    handled per ``policy`` (default: malformed lines and self-loops raise,
    duplicates drop, unsorted files sort — the legacy contract, now
    counted).  ``jobs > 1`` parses through the sharded parallel path
    (:mod:`repro.ingest.shard`) with byte-identical output.  The load's
    provenance is attached as ``trace.ingest_report``.
    """
    return load_trace(
        path, policy=policy, quarantine_path=quarantine_path, jobs=jobs
    )
