"""Snowball (BFS) sampling, Section 5.1.

Evaluating classifiers on all ``O(|V|^2)`` node pairs is intractable for the
larger traces, so the paper snowball-samples a fixed percentage ``p`` of
nodes from a random seed, then reuses the *same seed* on the next snapshot so
train and test populations stay aligned.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.utils.rng import ensure_rng


def snowball_sample(
    snapshot: Snapshot,
    fraction: float,
    seed_node: int | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> set[int]:
    """BFS from ``seed_node`` until ``fraction`` of the nodes are visited.

    If ``seed_node`` is ``None`` a uniform-random node is drawn from ``rng``.
    Nodes at the frontier depth are admitted in BFS order, so successive calls
    with the same seed on a *grown* snapshot return a superset-like sample of
    the earlier one — the property Section 5.1 relies on when it reuses the
    seed across consecutive snapshots.

    Returns the sampled node set (use :meth:`Snapshot.subgraph` to evaluate
    on it).  If the seed's connected component is smaller than the target,
    BFS restarts from the highest-degree unvisited node, mirroring how a
    crawler would continue.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    nodes = snapshot.node_list
    if not nodes:
        return set()
    target = max(1, int(round(fraction * len(nodes))))
    generator = ensure_rng(rng)
    if seed_node is None:
        seed_node = int(generator.choice(nodes))
    elif not snapshot.has_node(seed_node):
        raise ValueError(f"seed node {seed_node} not in snapshot")

    visited: set[int] = set()
    frontier: deque[int] = deque([seed_node])
    queued: set[int] = {seed_node}
    while len(visited) < target:
        if not frontier:
            # Component exhausted: restart from the largest remaining node so
            # the sample still reaches the requested size.
            remaining = [u for u in nodes if u not in visited]
            if not remaining:
                break
            restart = max(remaining, key=snapshot.degree)
            frontier.append(restart)
            queued.add(restart)
        u = frontier.popleft()
        if u in visited:
            continue
        visited.add(u)
        if len(visited) >= target:
            break
        for v in sorted(snapshot.neighbors(u)):
            if v not in visited and v not in queued:
                frontier.append(v)
                queued.add(v)
    return visited
