"""Graph-integrity auditor over the columnar temporal core.

The ingest pipeline (:mod:`repro.ingest`) validates what comes *off disk*;
this module validates what ends up *in memory* — the invariants every
vectorised kernel in the columnar core silently assumes:

- the time column is sorted non-decreasing, finite, and non-negative;
- edge columns are canonical (``u < v``: no self-loops, ordered endpoints);
- no ``(u, v)`` pair appears twice in the stream;
- the :class:`~repro.graph.dyngraph.StreamIndex` remap is a bijection
  (``node_ids`` strictly sorted, ``node_ids[eu] == u`` et al.) and its
  ``first_seen`` really is each node's first stream appearance;
- the dict-of-sets adjacency mirror and the per-pair time table agree
  with the columns (degree total ``2E``, one entry per edge);
- the full-cutoff snapshot's CSR structure sums to ``2E`` with in-range,
  per-row-sorted indices.

``audit_graph`` returns an :class:`AuditReport`; :func:`require_clean`
raises :class:`TraceAuditError` — used by ``repro audit`` and as a cheap
pre-flight in the experiment runner so a corrupted input fails in
milliseconds with a diagnosis instead of poisoning a multi-hour journaled
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.dyngraph import TemporalGraph


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant: which, how many offenders, and an example."""

    invariant: str
    detail: str
    count: int = 1

    def __str__(self) -> str:
        suffix = f" ({self.count} offenders)" if self.count > 1 else ""
        return f"{self.invariant}: {self.detail}{suffix}"


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_graph` pass."""

    num_nodes: int = 0
    num_edges: int = 0
    checks_run: list = field(default_factory=list)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (
            f"[audit] {len(self.checks_run)} invariants checked over "
            f"{self.num_nodes} nodes / {self.num_edges} events: "
            + ("ok" if self.ok else f"{len(self.violations)} VIOLATED")
        )
        return "\n".join([head] + [f"[audit]   {v}" for v in self.violations])


class TraceAuditError(ValueError):
    """A graph failed its integrity audit.  Carries the full report."""

    def __init__(self, report: AuditReport, context: str = "") -> None:
        self.report = report
        prefix = f"{context}: " if context else ""
        super().__init__(prefix + report.summary())


def _check(report: AuditReport, name: str, mask: "np.ndarray | bool", detail) -> None:
    """Record one invariant check; ``mask`` flags offenders (or is a bool)."""
    report.checks_run.append(name)
    if isinstance(mask, (bool, np.bool_)):
        if mask:
            report.violations.append(AuditViolation(name, detail(None), 1))
        return
    count = int(np.count_nonzero(mask))
    if count:
        first = int(np.flatnonzero(mask)[0])
        report.violations.append(AuditViolation(name, detail(first), count))


def audit_graph(trace: TemporalGraph, snapshot_check: bool = True) -> AuditReport:
    """Check every columnar-core invariant; vectorised, O(E log E) worst.

    ``snapshot_check=False`` skips the full-cutoff CSR build (the one
    check that materialises per-snapshot structure) for callers that only
    need the stream-level invariants.
    """
    u, v, t = trace.columns()
    n_events = len(t)
    report = AuditReport(num_nodes=trace.num_nodes, num_edges=n_events)

    # -- time column ----------------------------------------------------
    _check(
        report, "time_finite", ~np.isfinite(t),
        lambda i: f"event {i} has non-finite timestamp {t[i]!r}",
    )
    finite = t[np.isfinite(t)]
    _check(
        report, "time_nonnegative", finite < 0,
        lambda i: f"a finite timestamp is negative ({finite[i]!r})",
    )
    _check(
        report, "time_sorted",
        np.diff(t) < 0 if n_events > 1 else np.zeros(0, dtype=bool),
        lambda i: f"t[{i + 1}]={t[i + 1]!r} < t[{i}]={t[i]!r}",
    )

    # -- edge columns ---------------------------------------------------
    _check(
        report, "no_self_loops", u == v,
        lambda i: f"event {i} is a self-loop ({int(u[i])}, {int(v[i])})",
    )
    _check(
        report, "canonical_pairs", u > v,
        lambda i: f"event {i} not canonical: ({int(u[i])}, {int(v[i])})",
    )
    if n_events:
        pairs = np.stack((u, v), axis=1)
        unique_pairs = np.unique(pairs, axis=0)
        _check(
            report, "no_duplicate_edges",
            len(unique_pairs) != n_events,
            lambda _i: f"{n_events - len(unique_pairs)} pair(s) repeat in the stream",
        )
    else:
        report.checks_run.append("no_duplicate_edges")

    # -- stream-index remap ---------------------------------------------
    if n_events:
        index = trace.stream_index()
        ids = index.node_ids
        _check(
            report, "remap_ids_sorted",
            np.diff(ids) <= 0 if len(ids) > 1 else np.zeros(0, dtype=bool),
            lambda i: f"node_ids not strictly increasing at position {i}",
        )
        stream_ids = np.unique(np.concatenate((u, v)))
        _check(
            report, "remap_bijective",
            not (
                len(ids) == len(stream_ids)
                and np.array_equal(ids, stream_ids)
                and np.array_equal(ids[index.eu], u)
                and np.array_equal(ids[index.ev], v)
            ),
            lambda _i: "dense remap does not reconstruct the raw id columns",
        )
        expected_first = np.full(len(ids), n_events, dtype=np.int64)
        order = np.arange(n_events, dtype=np.int64)
        eu = np.searchsorted(ids, u)
        ev = np.searchsorted(ids, v)
        ok_positions = (
            len(ids) > 0
            and eu.max(initial=-1) < len(ids)
            and ev.max(initial=-1) < len(ids)
        )
        if ok_positions:
            np.minimum.at(expected_first, eu, order)
            np.minimum.at(expected_first, ev, order)
        _check(
            report, "first_seen_consistent",
            not (ok_positions and np.array_equal(index.first_seen, expected_first)),
            lambda _i: "first_seen does not match each node's first stream index",
        )
    else:
        report.checks_run.extend(
            ["remap_ids_sorted", "remap_bijective", "first_seen_consistent"]
        )

    # -- derived mirrors (dict-of-sets adjacency, per-pair times) --------
    adjacency_degree_total = sum(len(nbrs) for nbrs in trace._adj.values())
    _check(
        report, "adjacency_degree_total",
        adjacency_degree_total != 2 * n_events,
        lambda _i: (
            f"dict adjacency holds {adjacency_degree_total} directed entries, "
            f"expected 2*E = {2 * n_events}"
        ),
    )
    _check(
        report, "edge_time_table",
        len(trace._edge_times) != n_events,
        lambda _i: (
            f"edge-time table has {len(trace._edge_times)} entries for "
            f"{n_events} stream events"
        ),
    )

    # -- snapshot CSR structure -----------------------------------------
    if snapshot_check and n_events:
        from repro.graph.snapshots import Snapshot

        snap = Snapshot(trace, n_events)
        indptr, indices = snap.csr_structure()
        n = snap.num_nodes
        csr_ok = (
            len(indptr) == n + 1
            and int(indptr[-1]) == 2 * n_events
            and len(indices) == 2 * n_events
            and (len(indptr) < 2 or bool(np.all(np.diff(indptr) >= 0)))
            and (
                len(indices) == 0
                or bool((indices.min() >= 0) and (indices.max() < n))
            )
        )
        _check(
            report, "csr_degree_total",
            not csr_ok,
            lambda _i: (
                f"full-snapshot CSR inconsistent: indptr[-1]="
                f"{int(indptr[-1]) if len(indptr) else 'missing'}, "
                f"len(indices)={len(indices)}, expected 2*E = {2 * n_events}"
            ),
        )
    elif snapshot_check:
        report.checks_run.append("csr_degree_total")

    return report


def audit_delta(delta) -> AuditReport:
    """Audit a :class:`~repro.graph.delta.DeltaGraph` after a batch.

    Runs the full 12-check :func:`audit_graph` pass over the wrapped trace
    (which, because the delta engine installs its patched caches, also
    vets the incrementally maintained :class:`StreamIndex` — e.g. a forged
    ``first_seen`` fires ``first_seen_consistent``), then cross-checks
    every delta-owned structure against a from-scratch recompute off the
    event columns: cache installation, CSR adjacency keys, degrees,
    last-activity column, and the candidate set with its CN counts.
    """
    import scipy.sparse as sp

    from repro.utils.pairs import PAIR_POSITION_SHIFT

    trace = delta.trace
    report = audit_graph(trace)
    n_events = trace.num_edges

    # -- delta cache installation ---------------------------------------
    cols = trace.columns()
    installed = (
        cols[0] is delta._cu
        and cols[1] is delta._cv
        and cols[2] is delta._ct
        and len(delta._ct) == n_events
    )
    _check(
        report, "delta_columns_installed",
        not installed,
        lambda _i: (
            "the trace's column cache is not the delta engine's maintained "
            "arrays (stale or bypassed _install_stream_caches)"
        ),
    )

    if n_events:
        index = trace.stream_index()
        eu = np.searchsorted(index.node_ids, cols[0])
        ev = np.searchsorted(index.node_ids, cols[1])
        n = len(index.node_ids)

        # -- CSR adjacency keys -----------------------------------------
        expected_keys = np.sort(
            np.concatenate(
                (
                    eu * PAIR_POSITION_SHIFT + ev,
                    ev * PAIR_POSITION_SHIFT + eu,
                )
            )
        )
        _check(
            report, "delta_csr_adjacency",
            not np.array_equal(delta._adj_keys, expected_keys),
            lambda _i: (
                f"maintained adjacency keys diverge from the event columns "
                f"({len(delta._adj_keys)} keys, expected {len(expected_keys)})"
            ),
        )

        # -- degree column ----------------------------------------------
        expected_deg = np.bincount(
            np.concatenate((eu, ev)), minlength=n
        ).astype(np.int64)
        _check(
            report, "delta_degrees",
            not (
                len(delta._deg) == n
                and np.array_equal(delta._deg, expected_deg)
            ),
            lambda _i: "maintained degree column diverges from the stream",
        )

        # -- last-activity column ---------------------------------------
        expected_last = np.full(n, -np.inf)
        np.maximum.at(expected_last, eu, cols[2])
        np.maximum.at(expected_last, ev, cols[2])
        _check(
            report, "delta_last_active",
            not (
                len(delta._last_active) == n
                and np.array_equal(delta._last_active, expected_last)
            ),
            lambda _i: "maintained last-activity column diverges from the stream",
        )

        # -- candidate set + CN counts ----------------------------------
        matrix = sp.csr_matrix(
            (
                np.ones(2 * n_events, dtype=np.float64),
                (np.concatenate((eu, ev)), np.concatenate((ev, eu))),
            ),
            shape=(n, n),
        )
        product = sp.triu(matrix @ matrix, k=1).tocoo()
        rows, cs, vals = product.row, product.col, product.data
        if len(rows):
            connected = np.asarray(matrix[rows, cs]).ravel() > 0
            keep = (~connected) & (vals != 0)
            rows, cs, vals = rows[keep], cs[keep], vals[keep]
        order = np.lexsort((cs, rows))
        expected_cand = (
            rows[order].astype(np.int64) * PAIR_POSITION_SHIFT
            + cs[order].astype(np.int64)
        )
        expected_cn = vals[order].astype(np.int64)
        _check(
            report, "delta_candidates",
            not (
                np.array_equal(delta._cand_keys, expected_cand)
                and np.array_equal(delta._cand_cn, expected_cn)
            ),
            lambda _i: (
                f"maintained candidate set / CN counts diverge "
                f"({len(delta._cand_keys)} pairs, expected {len(expected_cand)})"
            ),
        )
    else:
        report.checks_run.extend(
            [
                "delta_csr_adjacency",
                "delta_degrees",
                "delta_last_active",
                "delta_candidates",
            ]
        )
    return report


def require_clean(trace: TemporalGraph, context: str = "") -> None:
    """Raise :class:`TraceAuditError` if the graph fails its audit."""
    report = audit_graph(trace)
    if not report.ok:
        raise TraceAuditError(report, context)
