"""Write-ahead log + checkpoints: durable state for the growing trace.

``repro serve`` mutates its graph live through ``POST /ingest``; without a
durability layer a crash discards every ingested edge and the restarted
server silently answers predictions from a stale prefix — exactly the
evaluation-integrity failure Junuthula et al. warn about when dynamic
predictors are scored against the wrong observed prefix.  This module is
the storage half of the fix (the server-side lifecycle lives in
:mod:`repro.serve.durability`):

- an **append-only write-ahead log** of accepted edge batches.  Records
  are length-prefixed and CRC-checksummed (the binary analogue of the
  cell journal's fsynced JSONL framing from :mod:`repro.eval.journal`),
  and the file opens with a header record binding the log to its *base
  trace* and :class:`~repro.ingest.IngestPolicy` by fingerprint — a WAL
  can never be replayed onto the wrong prefix or under a different
  screening policy.  Batch payloads are the raw ``int64/int64/float64``
  column bytes, so replayed events are bit-exact by construction.
- **torn-tail detection**: a crash can only damage the file's final
  record (every record is one buffered ``write`` followed by fsync per
  the cadence policy).  :func:`scan_wal` therefore accepts a truncated or
  checksum-failing *final* record as crash damage — reporting the torn
  byte count and the last valid offset so the writer can truncate and
  resume — and rejects the same damage anywhere else as real corruption.
- **checkpoints**: compact column-only pickles of the stream at a WAL
  sequence number (the same representation
  :class:`~repro.graph.snapshots.Snapshot` ships to pool workers),
  written atomically via temp-file + rename + directory fsync and
  retained N-deep.  Recovery = newest *valid* checkpoint + replay of the
  WAL records past it; a truncated or corrupt newer checkpoint is simply
  skipped in favour of an older valid one, and the WAL behind it still
  replays byte-identically.
- **recovery** (:func:`recover_state`): rebuild a
  :class:`~repro.graph.delta.DeltaGraph` from checkpoint + replay and
  finish with a mandatory :func:`~repro.graph.audit.audit_delta` pass —
  a recovered engine is never trusted until every maintained structure
  cross-checks against the replayed columns.

Crash-anywhere testing hooks: :func:`repro.eval.faults.before_key` fires
with keys ``wal.append`` (before a record hits the file), ``wal.fsync``
(between the buffered write and the fsync — the window where a power cut
tears the tail) and ``checkpoint.write`` (between the temp file and the
rename).  ``tests/test_crash_recovery.py`` drives kill schedules through
these points and asserts recovery is byte-identical to a never-crashed
reference.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.eval import faults
from repro.graph.dyngraph import TemporalGraph

#: file names inside a WAL directory.
WAL_FILE = "wal.log"
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".ckpt"

#: magic bytes opening every WAL file; the trailing version digit is the
#: format version (bump on breaking changes).
WAL_MAGIC = b"REPROWAL1\n"
WAL_VERSION = 1
CHECKPOINT_VERSION = 1

#: record framing: little-endian (payload length, crc32-of-payload).
_FRAME = struct.Struct("<QI")
#: batch payload header after the kind byte: (sequence number, event count).
_BATCH = struct.Struct("<QQ")

#: payload kind bytes.
_KIND_HEADER = b"H"
_KIND_BATCH = b"B"

#: fault-plan keys honoured by this module (see repro.eval.faults).
APPEND_FAULT_KEY = "wal.append"
FSYNC_FAULT_KEY = "wal.fsync"
CHECKPOINT_FAULT_KEY = "checkpoint.write"


class WalError(ValueError):
    """Base class for every WAL failure."""


class WalCorruptError(WalError):
    """Damage a crash cannot explain (mid-file, not a torn tail)."""


class WalMismatchError(WalError):
    """The WAL or checkpoint was written for a different trace/policy."""


def wal_fingerprint(trace: TemporalGraph, policy) -> str:
    """Hex digest binding a WAL to its base trace and ingest policy.

    Hashes the accepted-column checksum of the base prefix (the same
    truncated sha256 the :class:`~repro.ingest.IngestReport` records),
    the base edge count, and the policy's class->action table.  Two
    servers share a fingerprint exactly when replaying one's WAL onto the
    other's base prefix is meaningful.
    """
    from repro.ingest.loader import stream_checksum

    u, v, t = trace.columns()
    payload = {
        "base_checksum": stream_checksum(u, v, t),
        "base_edges": int(trace.num_edges),
        "policy": policy.describe(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WalRecord:
    """One durably logged batch of accepted (screened) events."""

    seq: int
    u: np.ndarray
    v: np.ndarray
    t: np.ndarray

    def __len__(self) -> int:
        return len(self.t)

    def events(self) -> "list[tuple[int, int, float]]":
        return list(zip(self.u.tolist(), self.v.tolist(), self.t.tolist()))


@dataclass(frozen=True)
class WalTail:
    """What the scan found at the end of the file."""

    #: "clean" (file ends exactly on a record boundary) or "torn".
    status: str
    #: byte offset of the end of the last valid record.
    valid_offset: int
    #: bytes past the last valid record (0 when clean).
    torn_bytes: int
    #: human-readable account of the tear.
    detail: str = ""

    @property
    def clean(self) -> bool:
        return self.status == "clean"


def _encode_record(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _encode_batch(seq: int, u: np.ndarray, v: np.ndarray, t: np.ndarray) -> bytes:
    payload = b"".join(
        (
            _KIND_BATCH,
            _BATCH.pack(seq, len(t)),
            np.ascontiguousarray(u, dtype=np.int64).tobytes(),
            np.ascontiguousarray(v, dtype=np.int64).tobytes(),
            np.ascontiguousarray(t, dtype=np.float64).tobytes(),
        )
    )
    return _encode_record(payload)


def _decode_batch(payload: bytes, path: str, offset: int) -> WalRecord:
    if len(payload) < 1 + _BATCH.size:
        raise WalCorruptError(
            f"{path!r}: batch record at offset {offset} shorter than its header"
        )
    seq, count = _BATCH.unpack_from(payload, 1)
    expected = 1 + _BATCH.size + 24 * count
    if len(payload) != expected:
        raise WalCorruptError(
            f"{path!r}: batch record at offset {offset} declares {count} events "
            f"but carries {len(payload)} payload bytes (expected {expected})"
        )
    base = 1 + _BATCH.size
    u = np.frombuffer(payload, dtype=np.int64, count=count, offset=base)
    v = np.frombuffer(payload, dtype=np.int64, count=count, offset=base + 8 * count)
    t = np.frombuffer(
        payload, dtype=np.float64, count=count, offset=base + 16 * count
    )
    return WalRecord(seq=int(seq), u=u, v=v, t=t)


def scan_wal(
    path: "str | os.PathLike[str]",
    expected_fingerprint: "str | None" = None,
) -> "tuple[dict, list[WalRecord], WalTail]":
    """Read a WAL file: header, every intact batch record, tail verdict.

    Tolerates exactly the damage a crash can cause — a truncated or
    checksum-failing *final* record (the torn tail, reported, never
    raised) — and raises :class:`WalCorruptError` for anything else:
    checksum or structure failures that are followed by more data cannot
    be a crash artifact.  ``expected_fingerprint`` (when given) must
    match the header's, else :class:`WalMismatchError`.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) < len(WAL_MAGIC) or not blob.startswith(WAL_MAGIC):
        raise WalCorruptError(
            f"{path!r} does not start with the WAL magic {WAL_MAGIC!r}"
        )
    pos = len(WAL_MAGIC)
    size = len(blob)
    header: "dict | None" = None
    records: "list[WalRecord]" = []
    tail = WalTail(status="clean", valid_offset=size, torn_bytes=0)

    def torn(detail: str) -> WalTail:
        return WalTail(
            status="torn",
            valid_offset=pos,
            torn_bytes=size - pos,
            detail=detail,
        )

    while pos < size:
        if size - pos < _FRAME.size:
            tail = torn(f"{size - pos} trailing bytes, shorter than a frame")
            break
        length, crc = _FRAME.unpack_from(blob, pos)
        body_start = pos + _FRAME.size
        if body_start + length > size:
            # The frame promises more bytes than exist.  At the physical
            # tail that is a torn write; a bogus length mid-file would
            # also land here, but it necessarily consumes the rest of the
            # file, so treating it as a tear loses nothing valid.
            tail = torn(
                f"record at offset {pos} declares {length} payload bytes, "
                f"file ends {size - body_start} bytes in"
            )
            break
        payload = blob[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            if body_start + length == size:
                tail = torn(f"checksum mismatch on the final record at {pos}")
                break
            raise WalCorruptError(
                f"{path!r}: checksum mismatch at offset {pos} with "
                f"{size - body_start - length} bytes following — mid-file "
                f"corruption, not a crash artifact"
            )
        if not payload:
            raise WalCorruptError(f"{path!r}: empty record at offset {pos}")
        kind = payload[:1]
        if pos == len(WAL_MAGIC):
            if kind != _KIND_HEADER:
                raise WalCorruptError(
                    f"{path!r} does not open with a header record"
                )
            try:
                header = json.loads(payload[1:].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise WalCorruptError(
                    f"{path!r}: unreadable header record: {exc}"
                ) from None
        elif kind == _KIND_BATCH:
            record = _decode_batch(payload, path, pos)
            if record.seq != len(records) + 1:
                raise WalCorruptError(
                    f"{path!r}: batch at offset {pos} carries sequence "
                    f"{record.seq}, expected {len(records) + 1}"
                )
            records.append(record)
        else:
            # Unknown kinds are corruption today; a future version bump
            # would change WAL_MAGIC rather than smuggle new kinds in.
            raise WalCorruptError(
                f"{path!r}: unknown record kind {kind!r} at offset {pos}"
            )
        pos = body_start + length

    if header is None:
        raise WalCorruptError(f"{path!r} holds no intact header record")
    if (
        expected_fingerprint is not None
        and header.get("fingerprint") != expected_fingerprint
    ):
        raise WalMismatchError(
            f"WAL {path!r} was written for a different base trace/policy "
            f"(WAL fingerprint {str(header.get('fingerprint'))[:12]}..., "
            f"expected {expected_fingerprint[:12]}...); refusing to replay"
        )
    return header, records, tail


@dataclass
class WalVerifyReport:
    """Outcome of :func:`verify_wal` (the ``repro wal verify`` payload)."""

    path: str
    #: "clean" | "torn" | "corrupt"
    status: str
    records: int = 0
    events: int = 0
    torn_bytes: int = 0
    detail: str = ""
    header: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.status == "clean"


def verify_wal(path: "str | os.PathLike[str]") -> WalVerifyReport:
    """Scan a WAL read-only and classify it: clean / torn tail / corrupt."""
    path = os.fspath(path)
    try:
        header, records, tail = scan_wal(path)
    except WalCorruptError as exc:
        return WalVerifyReport(path=path, status="corrupt", detail=str(exc))
    return WalVerifyReport(
        path=path,
        status="clean" if tail.clean else "torn",
        records=len(records),
        events=sum(len(r) for r in records),
        torn_bytes=tail.torn_bytes,
        detail=tail.detail,
        header=header,
    )


class WriteAheadLog:
    """Appender over one WAL file; the reader side lives in :func:`scan_wal`.

    ``create`` starts a fresh log (header record included, immediately
    fsynced); ``open`` validates an existing one, **truncates any torn
    tail**, and positions for append at the next sequence number.  Every
    :meth:`append` is one buffered write + flush; :meth:`sync` pushes the
    OS buffer to disk.  The caller decides the cadence — the serving
    layer's group-commit policy (:mod:`repro.serve.durability`) calls
    ``sync`` per batch, per interval, or never.
    """

    def __init__(
        self, path: str, fh, seq: int, header: dict, offset: int
    ) -> None:
        self.path = path
        self._fh = fh
        self.seq = seq
        self.header = header
        #: end offset of the last appended record.
        self.offset = offset
        #: sequence number / offset known to have reached disk.
        self.synced_seq = seq
        self.synced_offset = offset
        self._appends = 0
        self._syncs = 0

    # -- constructors ---------------------------------------------------
    @classmethod
    def create(
        cls, path: "str | os.PathLike[str]", fingerprint: str, meta: "dict | None" = None
    ) -> "WriteAheadLog":
        path = os.fspath(path)
        header = {
            "version": WAL_VERSION,
            "fingerprint": fingerprint,
            **(meta or {}),
        }
        payload = _KIND_HEADER + json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        fh = open(path, "xb")
        fh.write(WAL_MAGIC + _encode_record(payload))
        fh.flush()
        os.fsync(fh.fileno())
        return cls(path, fh, seq=0, header=header, offset=fh.tell())

    @classmethod
    def open(
        cls,
        path: "str | os.PathLike[str]",
        expected_fingerprint: "str | None" = None,
    ) -> "tuple[WriteAheadLog, list[WalRecord], WalTail]":
        """Open an existing WAL for append, returning its surviving records.

        A torn tail is truncated away (it was never acknowledged as
        durable) so the next append starts on a record boundary.
        """
        path = os.fspath(path)
        header, records, tail = scan_wal(path, expected_fingerprint)
        fh = open(path, "r+b")
        if not tail.clean:
            fh.truncate(tail.valid_offset)
            fh.flush()
            os.fsync(fh.fileno())
        fh.seek(0, os.SEEK_END)
        wal = cls(path, fh, seq=len(records), header=header, offset=fh.tell())
        return wal, records, tail

    # -- writing --------------------------------------------------------
    @property
    def pending_records(self) -> int:
        """Records appended but not yet known durable (the durability lag)."""
        return self.seq - self.synced_seq

    def append(self, u: np.ndarray, v: np.ndarray, t: np.ndarray) -> int:
        """Buffer one batch record; returns its sequence number.

        The record is flushed to the OS but *not* fsynced — call
        :meth:`sync` (directly or via the group-commit policy) to make it
        durable.  Fault point ``wal.append`` fires before any byte is
        written, so an injected crash there loses the whole record.
        """
        if self._fh.closed:
            raise WalError(f"WAL {self.path!r} is closed")
        faults.before_key(APPEND_FAULT_KEY, self._appends)
        self._appends += 1
        record = _encode_batch(self.seq + 1, u, v, t)
        if telemetry.tracer.enabled:
            with telemetry.tracer.span(
                "wal.append", seq=self.seq + 1, events=len(t)
            ):
                self._fh.write(record)
                self._fh.flush()
        else:
            self._fh.write(record)
            self._fh.flush()
        self.seq += 1
        self.offset += len(record)
        return self.seq

    def sync(self) -> None:
        """fsync the file; everything appended so far becomes durable.

        Fault point ``wal.fsync`` fires between the buffered writes and
        the fsync — the window in which a power cut produces a torn tail.
        """
        if self.pending_records == 0:
            return
        faults.before_key(FSYNC_FAULT_KEY, self._syncs)
        self._syncs += 1
        os.fsync(self._fh.fileno())
        self.synced_seq = self.seq
        self.synced_offset = self.offset

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
def checkpoint_path(directory: "str | os.PathLike[str]", seq: int) -> str:
    return os.path.join(
        os.fspath(directory), f"{CHECKPOINT_PREFIX}{seq:012d}{CHECKPOINT_SUFFIX}"
    )


def write_checkpoint(
    directory: "str | os.PathLike[str]",
    seq: int,
    trace: TemporalGraph,
    fingerprint: str,
) -> str:
    """Atomically persist the stream columns at WAL sequence ``seq``.

    The payload is the compact column-only representation (what snapshot
    pickling ships to pool workers) plus the fingerprint and a column
    checksum, pickled to a temp file, fsynced, renamed into place, and
    the directory fsynced — a crash leaves either the old set of
    checkpoints or the old set plus a complete new one, never a partial
    file under the real name.  Fault point ``checkpoint.write`` fires
    between the temp file and the rename (a crash there strands a
    ``.tmp`` file that recovery ignores and the next prune removes).
    """
    from repro.ingest.loader import stream_checksum

    u, v, t = trace.columns()
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "seq": int(seq),
        "u": np.ascontiguousarray(u, dtype=np.int64),
        "v": np.ascontiguousarray(v, dtype=np.int64),
        "t": np.ascontiguousarray(t, dtype=np.float64),
        "checksum": stream_checksum(u, v, t),
    }
    final = checkpoint_path(directory, seq)
    tmp = final + ".tmp"
    with telemetry.tracer.span("wal.checkpoint", seq=int(seq), edges=len(t)):
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        faults.before_key(CHECKPOINT_FAULT_KEY, 0)
        os.replace(tmp, final)
        _fsync_directory(directory)
    return final


def _fsync_directory(directory: "str | os.PathLike[str]") -> None:
    fd = os.open(os.fspath(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def list_checkpoints(
    directory: "str | os.PathLike[str]",
) -> "list[tuple[int, str]]":
    """(seq, path) for every checkpoint file, oldest first."""
    out: "list[tuple[int, str]]" = []
    for name in os.listdir(directory):
        if not (
            name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX)
        ):
            continue
        stem = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
        if stem.isdigit():
            out.append((int(stem), os.path.join(os.fspath(directory), name)))
    return sorted(out)


def load_checkpoint(
    path: "str | os.PathLike[str]", expected_fingerprint: "str | None" = None
) -> "dict | None":
    """Load and validate one checkpoint; ``None`` when it is damaged.

    Damage — truncation, a corrupt pickle, a failed column checksum —
    returns ``None`` so recovery falls back to an older checkpoint (the
    WAL behind it still replays everything).  A *fingerprint* mismatch
    raises instead: that file belongs to a different serving lineage and
    silently skipping it would mask an operational mistake.
    """
    from repro.ingest.loader import stream_checksum

    try:
        with open(os.fspath(path), "rb") as fh:
            payload = pickle.load(fh)
    except Exception:  # noqa: BLE001 — any unpickling damage means invalid
        return None
    if not isinstance(payload, dict) or payload.get("version") != CHECKPOINT_VERSION:
        return None
    required = {"fingerprint", "seq", "u", "v", "t", "checksum"}
    if not required <= set(payload):
        return None
    if (
        expected_fingerprint is not None
        and payload["fingerprint"] != expected_fingerprint
    ):
        raise WalMismatchError(
            f"checkpoint {os.fspath(path)!r} belongs to a different WAL "
            f"lineage (fingerprint {str(payload['fingerprint'])[:12]}..., "
            f"expected {expected_fingerprint[:12]}...)"
        )
    if stream_checksum(payload["u"], payload["v"], payload["t"]) != payload["checksum"]:
        return None
    return payload


def newest_valid_checkpoint(
    directory: "str | os.PathLike[str]",
    expected_fingerprint: "str | None" = None,
    max_seq: "int | None" = None,
) -> "dict | None":
    """Newest loadable checkpoint, walking back over damaged ones.

    ``max_seq`` guards against a checkpoint claiming to cover WAL records
    that no longer exist (possible only if the sync-before-checkpoint
    invariant was violated); such a checkpoint is skipped.
    """
    for seq, path in reversed(list_checkpoints(directory)):
        if max_seq is not None and seq > max_seq:
            continue
        payload = load_checkpoint(path, expected_fingerprint)
        if payload is not None:
            return payload
    return None


def prune_checkpoints(directory: "str | os.PathLike[str]", keep: int) -> int:
    """Delete all but the newest ``keep`` checkpoints + stray temp files."""
    removed = 0
    entries = list_checkpoints(directory)
    doomed = entries[:-keep] if keep > 0 else entries
    for _seq, path in doomed:
        os.unlink(path)
        removed += 1
    for name in os.listdir(directory):
        if name.startswith(CHECKPOINT_PREFIX) and name.endswith(".tmp"):
            os.unlink(os.path.join(os.fspath(directory), name))
            removed += 1
    return removed


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------
@dataclass
class RecoveryResult:
    """Everything :func:`recover_state` established about a WAL directory."""

    #: the recovered engine (checkpoint/base + replayed WAL records).
    engine: "object"
    #: WAL sequence the recovered engine is current through.
    wal_seq: int
    #: sequence of the checkpoint recovery started from (0 = base trace).
    checkpoint_seq: int
    #: WAL records replayed on top of the checkpoint.
    records_replayed: int
    #: events applied during replay.
    events_replayed: int
    #: torn bytes discarded from the WAL tail (crash damage).
    torn_bytes: int
    #: the mandatory post-replay audit report.
    audit: "object"
    #: recovery wall time (seconds).
    duration_s: float = 0.0

    @property
    def clean(self) -> bool:
        return bool(self.audit.ok)

    def describe(self) -> dict:
        return {
            "wal_seq": self.wal_seq,
            "checkpoint_seq": self.checkpoint_seq,
            "records_replayed": self.records_replayed,
            "events_replayed": self.events_replayed,
            "torn_bytes": self.torn_bytes,
            "audit_ok": bool(self.audit.ok),
            "duration_s": round(self.duration_s, 6),
        }


class RecoveryError(WalError):
    """Recovery replayed the WAL but the recovered state failed its audit."""

    def __init__(self, result: RecoveryResult) -> None:
        super().__init__(
            f"recovered engine failed its integrity audit: {result.audit.summary()}"
        )
        self.result = result


def replay_records(engine, records: "list[WalRecord]") -> int:
    """Apply WAL records to a delta engine; returns events applied."""
    applied = 0
    for record in records:
        with telemetry.tracer.span(
            "wal.replay", seq=record.seq, events=len(record)
        ):
            report = engine.apply(record.events())
        applied += report.applied
    return applied


def recover_state(
    wal_dir: "str | os.PathLike[str]",
    base_trace: TemporalGraph,
    policy,
) -> RecoveryResult:
    """Rebuild the durable engine state from a WAL directory.

    The recovery state machine: fingerprint the base trace + policy →
    scan the WAL (discarding a torn tail) → pick the newest valid
    checkpoint at or below the surviving sequence → build the engine from
    its columns (or the base trace) → replay the remaining records
    through :meth:`DeltaGraph.apply` → run the mandatory
    :func:`~repro.graph.audit.audit_delta` pass.  Raises
    :class:`RecoveryError` when the audit fails — callers must not serve
    from an unaudited recovery.
    """
    from time import perf_counter

    from repro.graph.delta import DeltaGraph

    started = perf_counter()
    fingerprint = wal_fingerprint(base_trace, policy)
    wal_path = os.path.join(os.fspath(wal_dir), WAL_FILE)
    _header, records, tail = scan_wal(wal_path, fingerprint)
    checkpoint = newest_valid_checkpoint(
        wal_dir, fingerprint, max_seq=len(records)
    )
    if checkpoint is not None:
        start_trace = TemporalGraph.from_columns(
            checkpoint["u"], checkpoint["v"], checkpoint["t"], validated=True
        )
        checkpoint_seq = int(checkpoint["seq"])
    else:
        start_trace = base_trace
        checkpoint_seq = 0
    engine = DeltaGraph(start_trace)
    to_replay = [r for r in records if r.seq > checkpoint_seq]
    events_replayed = replay_records(engine, to_replay)
    audit = engine.audit()
    duration = perf_counter() - started
    if telemetry.metrics.enabled:
        telemetry.metrics.histogram("wal.recovery_seconds").observe(duration)
    result = RecoveryResult(
        engine=engine,
        wal_seq=len(records),
        checkpoint_seq=checkpoint_seq,
        records_replayed=len(to_replay),
        events_replayed=events_replayed,
        torn_bytes=tail.torn_bytes,
        audit=audit,
        duration_s=duration,
    )
    if not audit.ok:
        raise RecoveryError(result)
    return result
