"""Trace transformations: windowing, relabelling, merging.

Working with external traces usually starts with surgery — cut out the
interval between two disruptive events (the paper trims both its Renren
and YouTube traces around exactly such events), compact sparse node ids,
or merge streams recorded by separate crawlers.
"""

from __future__ import annotations

from collections.abc import Iterable

import heapq

from repro.graph.dyngraph import TemporalGraph


def time_window(trace: TemporalGraph, start: float, end: float) -> TemporalGraph:
    """Sub-trace with the edges created in ``[start, end)``.

    Timestamps are preserved (not re-based), so snapshot times remain
    comparable with the original trace.  This is the operation the paper
    applies to avoid the Renren merger and the YouTube policy change
    ("we use continuous subtraces that do not include the external
    events in question").
    """
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    return TemporalGraph.from_stream(
        (u, v, t) for u, v, t in trace.edges() if start <= t < end
    )


def relabel(trace: TemporalGraph) -> tuple[TemporalGraph, dict[int, int]]:
    """Compact node ids to ``0..n-1`` in order of first appearance.

    Returns ``(new_trace, mapping)`` with ``mapping[old_id] = new_id``.
    External traces often use sparse 64-bit ids; dense ids keep the matrix
    machinery small.
    """
    mapping: dict[int, int] = {}

    def canonical(node: int) -> int:
        if node not in mapping:
            mapping[node] = len(mapping)
        return mapping[node]

    relabelled = TemporalGraph()
    for u, v, t in trace.edges():
        relabelled.add_edge(canonical(u), canonical(v), t)
    # Preserve isolated (edge-less) nodes too.
    for node in trace.nodes():
        if node not in mapping:
            mapping[node] = len(mapping)
            relabelled.add_node(mapping[node], trace.node_arrival_time(node))
    return relabelled, mapping


def merge(traces: Iterable[TemporalGraph]) -> TemporalGraph:
    """Merge several traces into one time-ordered stream.

    Node ids are taken as-is (callers relabel first if the id spaces
    collide); duplicate edges keep their earliest creation time.  Streams
    are merged with a heap, so the result is built in timestamp order as
    ``TemporalGraph`` requires.
    """
    streams = [trace.edges() for trace in traces]
    merged = TemporalGraph()
    ordered = heapq.merge(*streams, key=lambda event: event[2])
    for u, v, t in ordered:
        merged.add_edge(u, v, t)
    return merged


def rebase_time(trace: TemporalGraph) -> TemporalGraph:
    """Shift timestamps so the first edge happens at t = 0."""
    if trace.num_edges == 0:
        return trace.copy()
    offset = trace.start_time
    return TemporalGraph.from_stream(
        (u, v, t - offset) for u, v, t in trace.edges()
    )
