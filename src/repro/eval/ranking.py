"""Top-k selection with uniform-random tie breaking.

Several metrics produce heavily tied scores (SP most extremely: every 2-hop
pair scores the same).  Deterministic tie order would silently bias results,
so ties are broken by random permutation — exactly the behaviour the paper
relies on when it observes that "SP's prediction is actually random choice
over all 2-hop pairs".
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def top_k_pairs(
    pairs: np.ndarray,
    scores: np.ndarray,
    k: int,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Return the k pairs with the highest scores (random tie order).

    ``pairs`` is ``(n, 2)``, ``scores`` is ``(n,)``.  If fewer than ``k``
    pairs are supplied, all of them are returned (callers fill the rest with
    random non-edges; see :func:`repro.eval.experiment.evaluate_step`).
    """
    if len(pairs) != len(scores):
        raise ValueError(f"{len(pairs)} pairs but {len(scores)} scores")
    if k <= 0:
        return pairs[:0]
    if len(pairs) <= k:
        return pairs
    generator = ensure_rng(rng)
    # Shuffle first: a stable sort of the shuffled arrays yields uniformly
    # random order within every tie group.
    perm = generator.permutation(len(pairs))
    shuffled_scores = scores[perm]
    # argpartition narrows to a candidate window, then a stable full sort of
    # that window gives the exact top-k.
    cut = np.argpartition(-shuffled_scores, k - 1)[:k]
    order = cut[np.argsort(-shuffled_scores[cut], kind="stable")]
    return pairs[perm[order]]
