"""The 2-hop edge ratio lambda_2 and its correlation with accuracy.

Section 4.2 explains why most metrics' accuracy ratio tracks network
densification: their predictions are dominated by 2-hop pairs, so accuracy
follows ``lambda_2`` — the fraction of 2-hop pairs of ``G_{t-1}`` that
close in ``G_t`` (Pearson 0.95 / 0.83 / 0.81 on Renren / YouTube /
Facebook).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.candidates import two_hop_pairs
from repro.utils.pairs import Pair


def two_hop_edge_ratio(previous: Snapshot, truth: "set[Pair]") -> float:
    """``lambda_2``: share of 2-hop pairs of ``previous`` present in truth."""
    pairs = two_hop_pairs(previous)
    if len(pairs) == 0:
        return 0.0
    hits = sum(1 for u, v in pairs if (int(u), int(v)) in truth)
    return hits / len(pairs)


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Plain Pearson correlation coefficient."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape:
        raise ValueError("series must have equal length")
    if len(x_arr) < 2:
        raise ValueError("correlation requires at least two points")
    sx, sy = x_arr.std(), y_arr.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x_arr - x_arr.mean()) * (y_arr - y_arr.mean())).mean() / (sx * sy))


def lambda2_correlations(
    lambda2_series: Sequence[float],
    ratio_series_by_metric: "dict[str, Sequence[float]]",
    top_n: int = 6,
) -> tuple[float, dict[str, float]]:
    """Average Pearson correlation of the top-N metrics against lambda_2.

    Metrics are ranked by their mean accuracy ratio over the sequence
    (the paper correlates "the top-performing 6 metrics for each graph").
    Returns ``(average_over_top_n, per_metric_correlations)``.
    """
    if top_n < 1:
        raise ValueError("top_n must be >= 1")
    per_metric = {
        name: pearson(lambda2_series, series)
        for name, series in ratio_series_by_metric.items()
    }
    ranked = sorted(
        ratio_series_by_metric,
        key=lambda name: -float(np.mean(ratio_series_by_metric[name])),
    )
    top = ranked[:top_n]
    average = float(np.mean([per_metric[name] for name in top]))
    return average, per_metric
