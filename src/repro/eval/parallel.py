"""Fault-tolerant process-pool dispatch of experiment work cells.

The experiment runner (:mod:`repro.eval.runner`) decomposes a run into
independent ``(metric, step, seed)`` cells whose RNGs derive purely from
the spec.  This module schedules those cells over a
:class:`concurrent.futures.ProcessPoolExecutor` — and, unlike a plain
``Executor.map``, survives the ways a long sweep actually dies:

- **Per-cell futures, bounded in-flight window.**  Each cell is its own
  future and at most ``workers`` cells are in flight, so the driver
  knows (to within queueing noise) when each cell *started* — the basis
  for deadline tracking — and a failure is attributable to specific
  cells rather than to an opaque chunk.

- **Worker-crash recovery.**  An OOM-killed or fault-injected worker
  surfaces as ``BrokenProcessPool``; the driver records a ``crash``
  failure for every in-flight cell, rebuilds the pool, and resubmits
  only the unfinished cells.  Completed cells are never re-run (and with
  a journal attached they are already on disk).  After
  ``RetryPolicy.max_pool_rebuilds`` rebuilds the driver stops fighting
  and degrades to the serial engine — slower, but the run completes.

- **Two-layer timeouts.**  Workers enforce the soft per-cell deadline
  in-process (``SIGALRM`` → an ordinary ``timeout`` failure, pool stays
  up); the driver enforces a hard deadline (soft × 2 + grace) for cells
  the signal cannot interrupt — a wedged C call — by terminating the
  pool and resubmitting, reusing the crash-recovery path.

- **Bounded retries with deterministic backoff.**  Failed attempts
  re-enter the queue after ``RetryPolicy.backoff_seconds`` (exponential
  + seeded jitter); a cell that exhausts ``max_attempts`` raises
  :class:`~repro.eval.retry.CellExecutionError` with its full failure
  history.

Workers still rebuild the plan from the spec JSON once (initializer)
and pre-warm candidate caches, so cells cross the process boundary as
three scalars.  Determinism is untouched by any recovery path: cells
are pure functions of the spec and ``reduce_cells`` is order-free, so a
run that crashed, retried, and rebuilt its pool reduces to canonical
JSON byte-identical to a clean serial run — enforced by
``tests/test_resume_parity.py`` and ``tests/test_fault_tolerance.py``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import heapq
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait

from repro import telemetry
from repro.eval import faults
from repro.eval.retry import (
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    ExecutionReport,
    RetryPolicy,
    failure_span_attrs,
    soft_deadline,
)
from repro.eval.runner import (
    Cell,
    CellResult,
    ExperimentPlan,
    ExperimentSpec,
    build_plan,
    execute_cell,
    run_cells_serial,
)
from repro.metrics.base import get_metric
from repro.metrics.candidates import prewarm_candidate_caches

#: per-worker-process plan, built once by :func:`_init_worker`.
_WORKER_PLAN: "ExperimentPlan | None" = None

#: driver poll interval while futures are in flight, seconds.
_TICK_SECONDS = 0.05


def prewarm_plan(plan: ExperimentPlan) -> None:
    """Materialise every snapshot cache the plan's cells will touch."""
    strategies = tuple(
        get_metric(name).candidate_strategy for name in plan.spec.metrics
    )
    for prev, _current, _truth in plan.steps:
        prewarm_candidate_caches(prev, strategies)


def _init_worker(spec_json: str, telemetry_enabled: bool = False) -> None:
    """Worker initializer: rebuild the plan from the spec and warm caches.

    When the driver is recording, the worker swaps in buffer-only
    telemetry *before* the plan rebuild, so the per-worker plan/prewarm
    cost is captured too (it ships with the worker's first cell result).
    Otherwise the worker resets to the null instances — a forked child
    must never inherit the driver's recording tracer.
    """
    global _WORKER_PLAN
    if telemetry_enabled:
        telemetry.install_worker_mode()
    else:
        telemetry.reset()
    spec = ExperimentSpec.from_json(spec_json)
    plan = build_plan(spec)
    prewarm_plan(plan)
    _WORKER_PLAN = plan


def _run_cell(payload: "tuple[Cell, int, float | None]") -> CellResult:
    """Worker task: one guarded attempt at one cell.

    The soft deadline runs *here*, in the worker's main thread, so a
    timeout is an ordinary exception travelling back over the result
    queue — no pool teardown needed for the common slow-cell case.
    """
    if _WORKER_PLAN is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before its plan was initialised")
    cell, attempt, timeout_seconds = payload
    with soft_deadline(timeout_seconds):
        faults.before_cell(cell, attempt)
        result = execute_cell(_WORKER_PLAN, cell)
    shipped = telemetry.drain_worker_payload()
    if shipped is not None:
        # Buffered spans (including any failed earlier attempts still in
        # the buffer — their spans are self-describing) ride home on the
        # result; the driver merges them and strips the field.
        result = dataclasses.replace(result, telemetry=shipped)
    return result


class _PoolRebuild(Exception):
    """Internal: the current pool is unusable; rebuild and resubmit."""


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged or dead workers."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        with contextlib.suppress(Exception):
            process.terminate()
    with contextlib.suppress(Exception):
        pool.shutdown(wait=False, cancel_futures=True)


class _CellDriver:
    """Driver-side state machine for one parallel execution."""

    def __init__(
        self,
        spec: ExperimentSpec,
        cells: Sequence[Cell],
        n_jobs: int,
        policy: RetryPolicy,
        on_result,
        plan: "ExperimentPlan | None",
    ):
        self.spec = spec
        self.cells = list(cells)
        self.workers = min(n_jobs, len(self.cells))
        self.policy = policy
        self.on_result = on_result
        self.plan = plan
        self.attempts: "dict[Cell, int]" = {c: 0 for c in self.cells}
        self.done: "dict[Cell, CellResult]" = {}
        self.report = ExecutionReport()

    # -- failure bookkeeping --------------------------------------------
    def _cell_failures(self, cell: Cell) -> "list[CellFailure]":
        return [
            f for f in self.report.failures if (f.metric, f.step, f.seed) == cell
        ]

    def _note_failure(self, cell: Cell, kind: str, message: str) -> bool:
        """Record one failed attempt; True if the cell may retry."""
        metric, step, seed = cell
        self.report.failures.append(
            CellFailure(
                metric=metric, step=step, seed=seed,
                kind=kind, attempt=self.attempts[cell], message=message,
            )
        )
        self.attempts[cell] += 1
        if self.attempts[cell] >= self.policy.max_attempts:
            return False
        self.report.retries += 1
        return True

    def _fail_or_retry(self, cell: Cell, kind: str, message: str, retry_heap) -> None:
        if not self._note_failure(cell, kind, message):
            raise CellExecutionError(cell, self._cell_failures(cell))
        ready_at = time.monotonic() + self.policy.backoff_seconds(
            cell, self.attempts[cell]
        )
        heapq.heappush(retry_heap, (ready_at, cell))

    def _complete(
        self, cell: Cell, result: CellResult, started_at: "float | None" = None
    ) -> None:
        result = self._absorb_telemetry(cell, result, started_at)
        self.done[cell] = result
        self.report.results.append(result)
        if self.on_result is not None:
            self.on_result(result)

    def _absorb_telemetry(
        self, cell: Cell, result: CellResult, started_at: "float | None"
    ) -> CellResult:
        """Merge a worker's shipped spans/metrics into the driver trace.

        The driver records a retroactive ``cell`` span covering the
        submit→completion window (attributes: the cell key, its attempt
        number, and any retry/crash history from the failure records),
        then adopts the worker's spans under it, namespaced by the
        worker-incarnation token.  The telemetry payload never survives
        onto the stored result — journals and reducers see ``None``.
        """
        shipped = result.telemetry
        if shipped is None:
            return result
        result = dataclasses.replace(result, telemetry=None)
        tracer = telemetry.tracer
        if not tracer.enabled:
            return result
        end = time.monotonic()
        metric, step, seed = cell
        attrs = {
            "metric": metric, "step": step, "seed": seed,
            "attempt": self.attempts[cell], "engine": "pool",
            **failure_span_attrs(self._cell_failures(cell)),
        }
        span_id = tracer.record(
            "cell", started_at if started_at is not None else end, end, attrs
        )
        tracer.merge(
            shipped["spans"], parent_id=span_id, prefix=f"w{shipped['token']}:"
        )
        telemetry.metrics.merge(shipped["metrics"])
        return result

    # -- main loop ------------------------------------------------------
    def run(self) -> ExecutionReport:
        while len(self.done) < len(self.cells):
            if self.report.pool_rebuilds > self.policy.max_pool_rebuilds:
                self._degrade_to_serial()
                break
            try:
                self._pool_round()
            except _PoolRebuild:
                self.report.pool_rebuilds += 1
        return self.report

    def _degrade_to_serial(self) -> None:
        """Last resort: finish the remaining cells in the driver process.

        Attempt counts carry over, so the global ``max_attempts`` bound
        still holds; ``kill`` faults are inert outside workers, which is
        exactly why this path terminates even when every worker dies.
        """
        self.report.degraded_to_serial = True
        if self.plan is None:
            self.plan = build_plan(self.spec)
        outstanding = [c for c in self.cells if c not in self.done]
        sub = run_cells_serial(
            self.plan,
            outstanding,
            self.policy,
            on_result=self.on_result,
            start_attempts=dict(self.attempts),
        )
        for result in sub.results:
            self.done[(result.metric, result.step, result.seed)] = result
        self.report.merge(sub)

    def _pool_round(self) -> None:
        """Run one pool's lifetime; raises ``_PoolRebuild`` on breakage."""
        queue = deque(c for c in self.cells if c not in self.done)
        retry_heap: "list[tuple[float, Cell]]" = []
        inflight: "dict" = {}  # future -> (cell, started_at)
        hard = self.policy.hard_timeout_seconds()
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.spec.to_json(), telemetry.tracer.enabled),
        )
        try:
            while queue or retry_heap or inflight:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    queue.append(heapq.heappop(retry_heap)[1])
                while queue and len(inflight) < self.workers:
                    cell = queue.popleft()
                    future = pool.submit(
                        _run_cell,
                        (cell, self.attempts[cell], self.policy.timeout_seconds),
                    )
                    inflight[future] = (cell, time.monotonic())
                if not inflight:
                    # nothing running: sleep until the next retry is due.
                    time.sleep(
                        max(0.0, min(retry_heap[0][0] - time.monotonic(), 0.5))
                    )
                    continue
                finished, _ = wait(
                    inflight, timeout=_TICK_SECONDS, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    cell, started = inflight.pop(future)
                    self._handle_future(future, cell, started, inflight, retry_heap)
                if hard is not None:
                    self._enforce_hard_deadline(hard, inflight, retry_heap)
            pool.shutdown(wait=True)
        except BrokenExecutor as exc:
            # Pool broke outside a future's result (e.g. at submit time).
            _terminate_pool(pool)
            self._crash_inflight(inflight, exc)
        except BaseException:
            _terminate_pool(pool)
            raise

    def _crash_inflight(self, inflight, exc: BaseException) -> None:
        """Charge every in-flight cell a crash attempt; demand a rebuild.

        We cannot know which cell killed its worker, so all in-flight
        cells are suspects; the innocent ones have ``max_pool_rebuilds``
        headroom on top of their retry budget.
        """
        crashed = [c for (c, _s) in inflight.values()]
        inflight.clear()
        for crashed_cell in crashed:
            if not self._note_failure(
                crashed_cell, "crash", f"worker lost: {exc!r}"
            ):
                raise CellExecutionError(
                    crashed_cell, self._cell_failures(crashed_cell)
                ) from exc
        raise _PoolRebuild from exc

    def _handle_future(
        self, future, cell: Cell, started: float, inflight, retry_heap
    ) -> None:
        try:
            result = future.result()
        except BrokenExecutor as exc:
            inflight[future] = (cell, 0.0)  # count this cell among the crashed
            self._crash_inflight(inflight, exc)
        except CellTimeoutError as exc:
            self._fail_or_retry(cell, "timeout", str(exc), retry_heap)
        except Exception as exc:
            self._fail_or_retry(
                cell, "exception", f"{type(exc).__name__}: {exc}", retry_heap
            )
        else:
            self._complete(cell, result, started_at=started)

    def _enforce_hard_deadline(self, hard: float, inflight, retry_heap) -> None:
        """Reclaim workers stuck past the hard deadline via pool rebuild."""
        now = time.monotonic()
        overdue = [
            (future, cell)
            for future, (cell, started) in inflight.items()
            if now - started > hard
        ]
        if not overdue:
            return
        for _future, cell in overdue:
            self._fail_or_retry(
                cell,
                "timeout",
                f"hard deadline exceeded ({hard:.3f}s); worker presumed wedged",
                retry_heap,
            )
        inflight.clear()
        raise _PoolRebuild


def run_cells_parallel(
    spec: ExperimentSpec,
    cells: Sequence[Cell],
    n_jobs: int,
    policy: "RetryPolicy | None" = None,
    on_result=None,
    plan: "ExperimentPlan | None" = None,
) -> ExecutionReport:
    """Execute ``cells`` over ``n_jobs`` worker processes, fault-tolerantly.

    ``on_result`` fires in the driver as each cell completes (the journal
    hook); ``plan`` is reused for the serial-degradation fallback so the
    driver does not rebuild what the caller already has.  Returns an
    :class:`~repro.eval.retry.ExecutionReport` — results plus the retry /
    crash / rebuild audit trail.
    """
    if n_jobs < 2:
        raise ValueError(f"run_cells_parallel needs n_jobs >= 2, got {n_jobs}")
    policy = policy or RetryPolicy()
    policy.validate()
    driver = _CellDriver(spec, cells, n_jobs, policy, on_result, plan)
    return driver.run()
