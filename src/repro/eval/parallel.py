"""Process-pool dispatch of experiment work cells.

The experiment runner (:mod:`repro.eval.runner`) decomposes a run into
independent ``(metric, step, seed)`` cells whose RNGs derive purely from
the spec.  This module schedules those cells over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Two design decisions keep the hot path cheap and the results exact:

- **Workers rebuild, cells stay tiny.**  Each worker receives the spec
  (as JSON) once, in its initializer, and reconstructs the full
  :class:`~repro.eval.runner.ExperimentPlan` — trace, snapshots, filter
  calibration — locally.  Cells then cross the process boundary as three
  scalars and results as a flat :class:`~repro.eval.runner.CellResult`,
  instead of pickling multi-megabyte snapshot objects per task.

- **Caches are pre-warmed per worker.**  Right after building its plan, a
  worker materialises every step snapshot's dense adjacency and the
  candidate-pair caches the spec's metrics will ask for
  (:func:`repro.metrics.candidates.prewarm_candidate_caches`).  Every
  cell dispatched to that worker thereafter hits warm caches, exactly as
  late cells do in the serial loop.  Pre-warm cache misses happen before
  any cell starts and are deliberately not attributed to cell counters.

Determinism does not depend on scheduling: any cell ordering reduces to
the same result (see ``reduce_cells``), which the property-based parity
suite in ``tests/test_parallel_parity.py`` verifies against the serial
path.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.eval.runner import (
    Cell,
    CellResult,
    ExperimentPlan,
    ExperimentSpec,
    build_plan,
    execute_cell,
)
from repro.metrics.base import get_metric
from repro.metrics.candidates import prewarm_candidate_caches

#: per-worker-process plan, built once by :func:`_init_worker`.
_WORKER_PLAN: "ExperimentPlan | None" = None


def prewarm_plan(plan: ExperimentPlan) -> None:
    """Materialise every snapshot cache the plan's cells will touch."""
    strategies = tuple(
        get_metric(name).candidate_strategy for name in plan.spec.metrics
    )
    for prev, _current, _truth in plan.steps:
        prewarm_candidate_caches(prev, strategies)


def _init_worker(spec_json: str) -> None:
    """Worker initializer: rebuild the plan from the spec and warm caches."""
    global _WORKER_PLAN
    spec = ExperimentSpec.from_json(spec_json)
    plan = build_plan(spec)
    prewarm_plan(plan)
    _WORKER_PLAN = plan


def _run_cell(cell: Cell) -> CellResult:
    if _WORKER_PLAN is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before its plan was initialised")
    return execute_cell(_WORKER_PLAN, cell)


def run_cells_parallel(
    spec: ExperimentSpec, cells: Sequence[Cell], n_jobs: int
) -> list[CellResult]:
    """Execute ``cells`` over ``n_jobs`` worker processes.

    Results come back in submission order (``Executor.map`` semantics), so
    the caller's reduction sees the same sequence the serial loop would
    produce.  ``n_jobs`` is capped at the cell count; chunking amortises
    IPC for the many-small-cells regime typical of metric sweeps.
    """
    if n_jobs < 2:
        raise ValueError(f"run_cells_parallel needs n_jobs >= 2, got {n_jobs}")
    workers = min(n_jobs, len(cells))
    chunksize = max(1, len(cells) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(spec.to_json(),),
    ) as pool:
        return list(pool.map(_run_cell, cells, chunksize=chunksize))
