"""The per-step and per-sequence evaluation loops.

``evaluate_step`` reproduces the paper's core experiment: fit a metric on
``G_{t-1}``, rank its candidate pairs, take the top-k with
``k = |ground truth|`` (Section 4.1 fixes k to the true new-edge count so
the comparison isolates the metric's ranking quality), and score the result.

``pair_filter`` hooks the Section 6 temporal filters in: any callable
``(snapshot, pairs) -> bool mask`` that prunes the candidate list before
scoring.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.eval.accuracy import StepOutcome, score_prediction
from repro.eval.ranking import top_k_pairs
from repro.graph.snapshots import Snapshot, new_edges_between
from repro.metrics.base import SimilarityMetric, get_metric
from repro.metrics.candidates import candidate_pairs, random_nonedge_pairs
from repro.metrics.kernels import score_pairs
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng

PairFilter = Callable[[Snapshot, np.ndarray], np.ndarray]


@dataclass
class MetricStepResult:
    """Result of one metric on one prediction step."""

    metric: str
    step: int
    snapshot_time: float
    outcome: StepOutcome
    predicted: np.ndarray  # (k, 2) node-id pairs actually predicted
    #: how many predictions were random fill (metric had too few candidates)
    random_fill: int = 0

    @property
    def ratio(self) -> float:
        return self.outcome.ratio

    @property
    def absolute(self) -> float:
        return self.outcome.absolute


def prediction_steps(
    snapshots: Sequence[Snapshot],
) -> Iterator[tuple[Snapshot, Snapshot, set[Pair]]]:
    """Yield ``(G_{t-1}, G_t, ground_truth)`` for every consecutive pair."""
    for prev, current in zip(snapshots, snapshots[1:]):
        yield prev, current, new_edges_between(prev, current)


def evaluate_step(
    metric: "SimilarityMetric | str",
    previous: Snapshot,
    truth: "set[Pair]",
    rng: "int | np.random.Generator | None" = None,
    pair_filter: "PairFilter | None" = None,
    candidates: "np.ndarray | None" = None,
    step: int = 0,
) -> MetricStepResult:
    """Run one metric on one step and score it.

    ``candidates`` overrides the metric's default candidate set (used by the
    snowball-sampled comparison of Section 5.3, where all methods must rank
    the same sampled pair universe).

    When ``rng`` is an integer (as the experiment runner passes it), the
    call is a pure function of its arguments: a fresh generator is built
    here and the snapshot caches only memoise deterministic values.  The
    parallel work-cell dispatcher (:mod:`repro.eval.parallel`) depends on
    this to evaluate steps in any order, in any process, bit-identically.
    """
    if telemetry.tracer.enabled:
        name = metric if isinstance(metric, str) else metric.name
        with telemetry.tracer.span("eval.step", metric=name, step=step) as span:
            result = _evaluate_step_impl(
                metric, previous, truth, rng, pair_filter, candidates, step
            )
            span.set(k=len(truth), random_fill=result.random_fill)
            return result
    return _evaluate_step_impl(
        metric, previous, truth, rng, pair_filter, candidates, step
    )


def _evaluate_step_impl(
    metric: "SimilarityMetric | str",
    previous: Snapshot,
    truth: "set[Pair]",
    rng: "int | np.random.Generator | None",
    pair_filter: "PairFilter | None",
    candidates: "np.ndarray | None",
    step: int,
) -> MetricStepResult:
    if isinstance(metric, str):
        metric = get_metric(metric)
    generator = ensure_rng(rng)
    metric.fit(previous)
    pairs = (
        candidates
        if candidates is not None
        else candidate_pairs(previous, metric.candidate_strategy)
    )
    if pair_filter is not None and len(pairs):
        mask = np.asarray(pair_filter(previous, pairs), dtype=bool)
        if mask.shape != (len(pairs),):
            raise ValueError(
                f"pair filter returned mask of shape {mask.shape} "
                f"for {len(pairs)} pairs"
            )
        pairs = pairs[mask]
    k = len(truth)
    scores = score_pairs(metric, previous, pairs)
    top = top_k_pairs(pairs, scores, k, generator)
    predicted = {(int(u), int(v)) for u, v in top}
    fill = 0
    if len(predicted) < k:
        # Pad with uniform random non-edges so every method predicts exactly
        # k pairs (the filler contributes random-baseline accuracy).
        filler = random_nonedge_pairs(previous, k - len(predicted), generator, exclude=predicted)
        fill = len(filler)
        predicted.update(filler)
        top = np.asarray(sorted(predicted), dtype=np.int64).reshape(-1, 2)
    outcome = score_prediction(previous, predicted, truth)
    return MetricStepResult(
        metric=metric.name,
        step=step,
        snapshot_time=previous.time,
        outcome=outcome,
        predicted=top,
        random_fill=fill,
    )


def evaluate_metric_sequence(
    metric_name: str,
    snapshots: Sequence[Snapshot],
    rng: "int | np.random.Generator | None" = None,
    pair_filter: "PairFilter | None" = None,
) -> list[MetricStepResult]:
    """Run one metric over every consecutive snapshot pair of a sequence."""
    generator = ensure_rng(rng)
    results = []
    for i, (prev, _current, truth) in enumerate(prediction_steps(snapshots)):
        results.append(
            evaluate_step(
                metric_name,
                prev,
                truth,
                rng=generator,
                pair_filter=pair_filter,
                step=i,
            )
        )
    return results


@dataclass
class SequenceSummary:
    """Aggregate view of a metric's results over a sequence."""

    metric: str
    ratios: list[float] = field(default_factory=list)
    absolutes: list[float] = field(default_factory=list)

    @classmethod
    def from_results(cls, results: Sequence[MetricStepResult]) -> "SequenceSummary":
        if not results:
            raise ValueError("no results to summarise")
        names = {r.metric for r in results}
        if len(names) != 1:
            raise ValueError(f"results mix metrics: {names}")
        return cls(
            metric=results[0].metric,
            ratios=[r.ratio for r in results],
            absolutes=[r.absolute for r in results],
        )

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(self.ratios))

    @property
    def best_absolute(self) -> float:
        """Highest absolute accuracy over any step (Table 4's statistic)."""
        return float(np.max(self.absolutes))
