"""Sequence-based evaluation framework (Section 3.2, Section 4.1).

Prediction runs over consecutive snapshot pairs: score candidates on
``G_{t-1}``, take the top-k (k = ground-truth new-edge count), and compare
against the edges that actually appeared in ``G_t``.  Accuracy is reported
both in absolute terms and as the *accuracy ratio* — the improvement factor
over uniform-random prediction [23].
"""

from repro.eval.accuracy import (
    StepOutcome,
    absolute_accuracy,
    accuracy_ratio,
    expected_random_hits,
)
from repro.eval.experiment import (
    MetricStepResult,
    evaluate_metric_sequence,
    evaluate_step,
    prediction_steps,
)
from repro.eval.ranking import top_k_pairs
from repro.eval.retry import (
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    RetryPolicy,
)

__all__ = [
    "StepOutcome",
    "absolute_accuracy",
    "accuracy_ratio",
    "expected_random_hits",
    "MetricStepResult",
    "evaluate_metric_sequence",
    "evaluate_step",
    "prediction_steps",
    "top_k_pairs",
    "CellExecutionError",
    "CellFailure",
    "CellTimeoutError",
    "RetryPolicy",
]
