"""Declarative experiment runner with JSON persistence.

A research pipeline needs runs that are *describable* (a spec you can
commit), *repeatable* (seeds in the spec) and *storable* (results as
JSON).  ``ExperimentSpec`` captures one metric-comparison experiment —
dataset, sequencing, metric list, repeat seeds, optional temporal filter —
and ``run_experiment`` executes it into an ``ExperimentResult`` that
serialises losslessly.

The CLI front-end is ``python -m repro experiment --spec spec.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.eval.experiment import evaluate_step, prediction_steps
from repro.generators import presets
from repro.graph.io import read_trace
from repro.graph.snapshots import snapshot_sequence
from repro.metrics.base import all_metric_names
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, calibrate_filter


@dataclass
class ExperimentSpec:
    """One experiment: dataset x sequencing x metrics x repeats."""

    name: str = "experiment"
    #: preset name ("facebook"/"renren"/"youtube") or a trace file path.
    dataset: str = "facebook"
    scale: float = 0.5
    generation_seed: int = 0
    delta: "int | None" = None
    start: "int | None" = None
    metrics: tuple[str, ...] = ("CN", "RA", "BRA", "PA")
    #: evaluation repeated with tie-break seeds 0..repeats-1 per step.
    repeats: int = 2
    max_steps: "int | None" = None
    #: calibrate and apply a temporal filter (Section 6) as well.
    with_filter: bool = False

    def validate(self) -> None:
        unknown = [m for m in self.metrics if m not in all_metric_names()]
        if unknown:
            raise ValueError(f"unknown metrics in spec: {unknown}")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        payload["metrics"] = list(self.metrics)
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        payload = json.loads(text)
        payload["metrics"] = tuple(payload.get("metrics", ()))
        spec = cls(**payload)
        spec.validate()
        return spec

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "ExperimentSpec":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


@dataclass
class MetricSeries:
    """One metric's results over the evaluated steps (mean over repeats)."""

    metric: str
    ratios: list[float] = field(default_factory=list)
    absolutes: list[float] = field(default_factory=list)
    filtered_ratios: "list[float] | None" = None

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(self.ratios)) if self.ratios else 0.0

    @property
    def mean_filtered_ratio(self) -> "float | None":
        if self.filtered_ratios is None:
            return None
        return float(np.mean(self.filtered_ratios))


@dataclass
class ExperimentResult:
    """Everything ``run_experiment`` produces, JSON-serialisable."""

    spec: ExperimentSpec
    num_snapshots: int
    steps_evaluated: int
    series: dict[str, MetricSeries] = field(default_factory=dict)

    def ranking(self) -> list[str]:
        """Metrics sorted by mean accuracy ratio, best first."""
        return sorted(self.series, key=lambda m: -self.series[m].mean_ratio)

    def summary_table(self) -> str:
        lines = [f"{'metric':10s} {'mean ratio':>11s} {'best abs':>9s} {'filtered':>9s}"]
        for name in self.ranking():
            s = self.series[name]
            filtered = (
                f"{s.mean_filtered_ratio:9.2f}" if s.filtered_ratios else "        -"
            )
            best_abs = max(s.absolutes) if s.absolutes else 0.0
            lines.append(
                f"{name:10s} {s.mean_ratio:11.2f} {100 * best_abs:8.2f}% {filtered}"
            )
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "spec": json.loads(self.spec.to_json()),
            "num_snapshots": self.num_snapshots,
            "steps_evaluated": self.steps_evaluated,
            "series": {
                name: {
                    "ratios": s.ratios,
                    "absolutes": s.absolutes,
                    "filtered_ratios": s.filtered_ratios,
                }
                for name, s in self.series.items()
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        payload = json.loads(text)
        spec = ExperimentSpec.from_json(json.dumps(payload["spec"]))
        result = cls(
            spec=spec,
            num_snapshots=payload["num_snapshots"],
            steps_evaluated=payload["steps_evaluated"],
        )
        for name, data in payload["series"].items():
            result.series[name] = MetricSeries(
                metric=name,
                ratios=data["ratios"],
                absolutes=data["absolutes"],
                filtered_ratios=data["filtered_ratios"],
            )
        return result

    def save(self, path: "str | os.PathLike[str]") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


def _load_trace(spec: ExperimentSpec):
    if spec.dataset in presets.DATASETS:
        return presets.load(spec.dataset, scale=spec.scale, seed=spec.generation_seed)
    return read_trace(spec.dataset)


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one spec end to end."""
    spec.validate()
    trace = _load_trace(spec)
    delta = spec.delta
    if delta is None:
        if spec.dataset in presets.DATASETS:
            delta = presets.snapshot_delta(spec.dataset, spec.scale)
        else:
            delta = max(10, trace.num_edges // 20)
    start = spec.start if spec.start is not None else max(delta, trace.num_edges // 3)
    snapshots = snapshot_sequence(trace, delta, start=start)
    steps = list(prediction_steps(snapshots))
    if spec.max_steps is not None:
        steps = steps[: spec.max_steps]
    if not steps:
        raise ValueError(
            f"spec produces no prediction steps (delta={delta}, start={start})"
        )

    pair_filter = None
    if spec.with_filter:
        cal_prev, _, cal_truth = steps[len(steps) // 2]
        pair_filter = TemporalFilter(
            calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
        )

    result = ExperimentResult(
        spec=spec, num_snapshots=len(snapshots), steps_evaluated=len(steps)
    )
    for metric in spec.metrics:
        series = MetricSeries(metric=metric)
        if spec.with_filter:
            series.filtered_ratios = []
        for i, (prev, _, truth) in enumerate(steps):
            ratios, absolutes, filtered = [], [], []
            for seed in range(spec.repeats):
                step = evaluate_step(metric, prev, truth, rng=seed * 1009 + i, step=i)
                ratios.append(step.ratio)
                absolutes.append(step.absolute)
                if pair_filter is not None:
                    filtered.append(
                        evaluate_step(
                            metric,
                            prev,
                            truth,
                            rng=seed * 1009 + i,
                            pair_filter=pair_filter,
                            step=i,
                        ).ratio
                    )
            series.ratios.append(float(np.mean(ratios)))
            series.absolutes.append(float(np.mean(absolutes)))
            if pair_filter is not None:
                series.filtered_ratios.append(float(np.mean(filtered)))
        result.series[metric] = series
    return result
