"""Declarative experiment runner with JSON persistence.

A research pipeline needs runs that are *describable* (a spec you can
commit), *repeatable* (seeds in the spec) and *storable* (results as
JSON).  ``ExperimentSpec`` captures one metric-comparison experiment —
dataset, sequencing, metric list, repeat seeds, optional temporal filter —
and ``run_experiment`` executes it into an ``ExperimentResult`` that
serialises losslessly.

Execution is decomposed into independent ``(metric, step, seed)`` *work
cells*: every cell derives its RNG purely from the spec
(``seed * 1009 + step``, see :func:`cell_rng_seed`), so cells can run in
any order — or in parallel processes (``n_jobs`` / ``--jobs``, dispatched
by :mod:`repro.eval.parallel`) — and reduce to results bit-identical to
the serial loop.  Yang et al. (*Evaluating Link Prediction Methods*) show
evaluation-protocol drift silently changes conclusions; the parity is
therefore enforced by a property-based test suite rather than assumed.

The CLI front-end is ``python -m repro experiment --spec spec.json``.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from collections.abc import Iterator, Sequence
from dataclasses import asdict, dataclass, field

import numpy as np

from repro import telemetry
from repro.eval import faults
from repro.eval.experiment import PairFilter, evaluate_step, prediction_steps
from repro.eval.retry import (
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    ExecutionReport,
    RetryPolicy,
    soft_deadline,
)
from repro.generators import presets
from repro.graph.io import read_trace
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics.base import all_metric_names, cache_stats
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, calibrate_filter
from repro.utils.pairs import Pair

#: one unit of schedulable work: (metric name, step index, repeat seed).
Cell = tuple[str, int, int]


def cell_rng_seed(seed: int, step: int) -> int:
    """The RNG seed of one work cell — the single source of truth.

    ``seed * 1009 + step`` is the seeding scheme the original serial loop
    used; both the serial and the parallel path call this function, so the
    published numbers cannot drift between the two.
    """
    return seed * 1009 + step


@dataclass
class ExperimentSpec:
    """One experiment: dataset x sequencing x metrics x repeats."""

    name: str = "experiment"
    #: preset name ("facebook"/"renren"/"youtube") or a trace file path.
    dataset: str = "facebook"
    scale: float = 0.5
    generation_seed: int = 0
    delta: "int | None" = None
    start: "int | None" = None
    metrics: tuple[str, ...] = ("CN", "RA", "BRA", "PA")
    #: evaluation repeated with tie-break seeds 0..repeats-1 per step.
    repeats: int = 2
    max_steps: "int | None" = None
    #: calibrate and apply a temporal filter (Section 6) as well.
    with_filter: bool = False
    #: worker processes for execution (1 = serial, 0 = one per CPU core).
    #: An execution hint only: results are identical for every value.
    n_jobs: int = 1

    def validate(self) -> None:
        if not self.metrics:
            raise ValueError(
                "spec must name at least one metric (metrics=() describes "
                "an experiment with no work cells)"
            )
        unknown = [m for m in self.metrics if m not in all_metric_names()]
        if unknown:
            raise ValueError(f"unknown metrics in spec: {unknown}")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be >= 0 (0 means one per CPU core)")

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        payload["metrics"] = list(self.metrics)
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        payload = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            # Tolerate fields written by newer versions (mirroring
            # RunTiming.from_payload) but say so: silent drops hide typos.
            warnings.warn(
                f"ExperimentSpec.from_json: ignoring unknown fields {unknown}",
                stacklevel=2,
            )
            payload = {k: v for k, v in payload.items() if k in known}
        payload["metrics"] = tuple(payload.get("metrics", ()))
        spec = cls(**payload)
        spec.validate()
        return spec

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "ExperimentSpec":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


@dataclass
class MetricSeries:
    """One metric's results over the evaluated steps (mean over repeats)."""

    metric: str
    ratios: list[float] = field(default_factory=list)
    absolutes: list[float] = field(default_factory=list)
    filtered_ratios: "list[float] | None" = None

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(self.ratios)) if self.ratios else 0.0

    @property
    def mean_filtered_ratio(self) -> "float | None":
        if self.filtered_ratios is None:
            return None
        return float(np.mean(self.filtered_ratios))


@dataclass
class RunTiming:
    """Lightweight instrumentation of one ``run_experiment`` execution.

    Execution metadata, *not* part of the experiment's scientific output:
    two runs of the same spec produce identical series but different
    timings, which is why :meth:`ExperimentResult.to_json` excludes this
    block unless asked (``include_timing=True``).
    """

    n_jobs: int = 1
    wall_seconds: float = 0.0
    #: number of (metric, step, seed) work cells executed.
    cells: int = 0
    #: summed per-cell wall time (> wall_seconds means parallelism won).
    cell_seconds: float = 0.0
    max_cell_seconds: float = 0.0
    #: snapshot-cache memoisation counters accumulated over the cells.
    cache_hits: int = 0
    cache_misses: int = 0
    #: cells restored from a journal instead of executed.
    journal_cells: int = 0
    #: failed attempts that were retried (the run still completed).
    retries: int = 0
    #: times the worker pool was torn down and rebuilt mid-run.
    pool_rebuilds: int = 0
    #: True when repeated pool failures forced the serial fallback.
    degraded_to_serial: bool = False
    #: CellFailure payloads for every failed attempt (crash/timeout/exception).
    failures: list = field(default_factory=list)

    def to_payload(self) -> dict:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "RunTiming":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def failure_kinds(self) -> "dict[str, int]":
        """Failed-attempt counts by kind (``crash``/``timeout``/``exception``)."""
        counts: dict[str, int] = {}
        for payload in self.failures:
            kind = payload.get("kind", "unknown")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"[timing] {self.cells} cells in {self.wall_seconds:.2f}s wall "
            f"(n_jobs={self.n_jobs}, cell time {self.cell_seconds:.2f}s, "
            f"max cell {self.max_cell_seconds:.3f}s, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses)"
        ]
        if self.journal_cells or self.failures or self.pool_rebuilds:
            kinds = self.failure_kinds()
            breakdown = ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds))
            parts = [
                f"{self.journal_cells} cells from journal",
                f"{self.retries} retries"
                + (f" ({breakdown})" if breakdown else ""),
                f"{self.pool_rebuilds} pool rebuilds",
            ]
            if self.degraded_to_serial:
                parts.append("degraded to serial")
            lines.append(f"[faults] {', '.join(parts)}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CellResult:
    """Outcome of one work cell, small and picklable for worker transport."""

    metric: str
    step: int
    seed: int
    ratio: float
    absolute: float
    filtered_ratio: "float | None"
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    #: worker-buffered telemetry (``{"token", "spans", "metrics"}``) riding
    #: home on the result; the driver merges it into its trace and strips
    #: it before the result is journaled or reduced.  Never part of the
    #: scientific output.
    telemetry: "dict | None" = None


@dataclass
class ExperimentResult:
    """Everything ``run_experiment`` produces, JSON-serialisable."""

    spec: ExperimentSpec
    num_snapshots: int
    steps_evaluated: int
    series: dict[str, MetricSeries] = field(default_factory=dict)
    #: execution metadata; excluded from canonical JSON (see RunTiming).
    timing: "RunTiming | None" = None

    def ranking(self) -> list[str]:
        """Metrics sorted by mean accuracy ratio, best first."""
        return sorted(self.series, key=lambda m: -self.series[m].mean_ratio)

    def summary_table(self) -> str:
        lines = [f"{'metric':10s} {'mean ratio':>11s} {'best abs':>9s} {'filtered':>9s}"]
        for name in self.ranking():
            s = self.series[name]
            filtered = (
                f"{s.mean_filtered_ratio:9.2f}" if s.filtered_ratios else "        -"
            )
            best_abs = max(s.absolutes) if s.absolutes else 0.0
            lines.append(
                f"{name:10s} {s.mean_ratio:11.2f} {100 * best_abs:8.2f}% {filtered}"
            )
        if self.timing is not None:
            lines.append(self.timing.summary())
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------
    def to_json(self, include_timing: bool = False) -> str:
        """Serialise the result.

        The default payload is *canonical*: it contains only the spec and
        the numbers it determines, so the same spec always produces
        byte-identical JSON regardless of ``n_jobs`` or machine load.
        ``include_timing=True`` appends the execution-metadata block.
        """
        payload = {
            "spec": json.loads(self.spec.to_json()),
            "num_snapshots": self.num_snapshots,
            "steps_evaluated": self.steps_evaluated,
            "series": {
                name: {
                    "ratios": s.ratios,
                    "absolutes": s.absolutes,
                    "filtered_ratios": s.filtered_ratios,
                }
                for name, s in self.series.items()
            },
        }
        if include_timing and self.timing is not None:
            payload["timing"] = self.timing.to_payload()
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        payload = json.loads(text)
        spec = ExperimentSpec.from_json(json.dumps(payload["spec"]))
        result = cls(
            spec=spec,
            num_snapshots=payload["num_snapshots"],
            steps_evaluated=payload["steps_evaluated"],
        )
        for name, data in payload["series"].items():
            result.series[name] = MetricSeries(
                metric=name,
                ratios=data["ratios"],
                absolutes=data["absolutes"],
                filtered_ratios=data.get("filtered_ratios"),
            )
        if payload.get("timing") is not None:
            result.timing = RunTiming.from_payload(payload["timing"])
        return result

    def save(self, path: "str | os.PathLike[str]", include_timing: bool = False) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(include_timing=include_timing) + "\n")


@dataclass
class ExperimentPlan:
    """Materialised execution context of one spec: steps plus filter.

    Built identically in the driver and in every worker process (both call
    :func:`build_plan` on the same spec), so work cells can be shipped as
    plain ``(metric, step_index, seed)`` tuples instead of pickled
    snapshots.
    """

    spec: ExperimentSpec
    num_snapshots: int
    steps: "list[tuple[Snapshot, Snapshot, set[Pair]]]"
    pair_filter: "PairFilter | None" = None


def _load_trace(spec: ExperimentSpec):
    if spec.dataset in presets.DATASETS:
        return presets.load(spec.dataset, scale=spec.scale, seed=spec.generation_seed)
    return read_trace(spec.dataset)


def build_plan(spec: ExperimentSpec, preflight_audit: bool = True) -> ExperimentPlan:
    """Load the trace, slice snapshots, and calibrate the optional filter.

    Everything here is a pure function of the spec (filter calibration is
    pinned to ``rng=0``), which is what makes worker-side reconstruction
    safe: any process holding the spec derives the identical plan.

    ``preflight_audit`` runs the columnar-core integrity auditor
    (:func:`repro.graph.audit.audit_graph`) on the loaded trace — a
    milliseconds-cheap vectorised pass — so a corrupted input raises
    :class:`~repro.graph.audit.TraceAuditError` with a diagnosis here,
    before any work cell of a potentially multi-hour journaled sweep runs.
    """
    spec.validate()
    trace = _load_trace(spec)
    if preflight_audit:
        from repro.graph.audit import require_clean

        require_clean(trace, context=f"pre-flight audit of {spec.dataset!r}")
    delta = spec.delta
    if delta is None:
        if spec.dataset in presets.DATASETS:
            delta = presets.snapshot_delta(spec.dataset, spec.scale)
        else:
            delta = max(10, trace.num_edges // 20)
    start = spec.start if spec.start is not None else max(delta, trace.num_edges // 3)
    snapshots = snapshot_sequence(trace, delta, start=start)
    steps = list(prediction_steps(snapshots))
    if spec.max_steps is not None:
        steps = steps[: spec.max_steps]
    if not steps:
        raise ValueError(
            f"spec produces no prediction steps (delta={delta}, start={start})"
        )

    pair_filter = None
    if spec.with_filter:
        cal_prev, _, cal_truth = steps[len(steps) // 2]
        pair_filter = TemporalFilter(
            calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
        )
    return ExperimentPlan(
        spec=spec,
        num_snapshots=len(snapshots),
        steps=steps,
        pair_filter=pair_filter,
    )


def iter_cells(spec: ExperimentSpec, num_steps: int) -> Iterator[Cell]:
    """Enumerate the run's work cells in the serial loop's order."""
    for metric in spec.metrics:
        for step in range(num_steps):
            for seed in range(spec.repeats):
                yield (metric, step, seed)


def execute_cell(plan: ExperimentPlan, cell: Cell) -> CellResult:
    """Run one ``(metric, step, seed)`` cell against a plan.

    This is the only place cells are evaluated — serial loop and process
    pool both call it — so the RNG derivation and the filtered/unfiltered
    call order are the same on every path by construction.
    """
    metric, step, seed = cell
    if telemetry.tracer.enabled:
        with telemetry.tracer.span(
            "cell.execute", metric=metric, step=step, seed=seed
        ):
            result = _execute_cell_impl(plan, cell)
        telemetry.metrics.counter("cells.completed").inc()
        telemetry.metrics.histogram("cell.seconds").observe(result.wall_seconds)
        return result
    return _execute_cell_impl(plan, cell)


def _execute_cell_impl(plan: ExperimentPlan, cell: Cell) -> CellResult:
    metric, step, seed = cell
    before = cache_stats()
    started = time.perf_counter()
    prev, _, truth = plan.steps[step]
    outcome = evaluate_step(
        metric, prev, truth, rng=cell_rng_seed(seed, step), step=step
    )
    filtered_ratio = None
    if plan.pair_filter is not None:
        filtered_ratio = evaluate_step(
            metric,
            prev,
            truth,
            rng=cell_rng_seed(seed, step),
            pair_filter=plan.pair_filter,
            step=step,
        ).ratio
    wall = time.perf_counter() - started
    after = cache_stats()
    return CellResult(
        metric=metric,
        step=step,
        seed=seed,
        ratio=outcome.ratio,
        absolute=outcome.absolute,
        filtered_ratio=filtered_ratio,
        wall_seconds=wall,
        cache_hits=after["hits"] - before["hits"],
        cache_misses=after["misses"] - before["misses"],
    )


def reduce_cells(
    plan: ExperimentPlan, results: Sequence[CellResult]
) -> ExperimentResult:
    """Fold cell results into an ``ExperimentResult``.

    Per-(metric, step) aggregation averages over seeds *in seed order*,
    reproducing the serial loop's ``float(np.mean([...]))`` reduction
    bit for bit no matter what order the cells finished in.
    """
    spec = plan.spec
    by_key: dict[tuple[str, int], list[CellResult]] = {}
    for cell in results:
        by_key.setdefault((cell.metric, cell.step), []).append(cell)
    result = ExperimentResult(
        spec=spec, num_snapshots=plan.num_snapshots, steps_evaluated=len(plan.steps)
    )
    for metric in spec.metrics:
        series = MetricSeries(metric=metric)
        if spec.with_filter:
            series.filtered_ratios = []
        for step in range(len(plan.steps)):
            # .get so a fully-absent (metric, step) group reports as the
            # intended "incomplete" RuntimeError, not a bare KeyError.
            cells = sorted(by_key.get((metric, step), ()), key=lambda c: c.seed)
            if len(cells) != spec.repeats:
                raise RuntimeError(
                    f"cell results for ({metric!r}, step {step}) are incomplete: "
                    f"got {len(cells)} of {spec.repeats}"
                )
            series.ratios.append(float(np.mean([c.ratio for c in cells])))
            series.absolutes.append(float(np.mean([c.absolute for c in cells])))
            if spec.with_filter:
                series.filtered_ratios.append(
                    float(np.mean([c.filtered_ratio for c in cells]))
                )
        result.series[metric] = series
    return result


def execute_cell_attempt(
    plan: ExperimentPlan, cell: Cell, attempt: int, policy: RetryPolicy
) -> CellResult:
    """One guarded attempt at one cell: faults, soft deadline, execute.

    The single choke point both execution engines (serial loop, pool
    worker) run a cell through, so fault injection and the soft timeout
    behave identically on every path.
    """
    with soft_deadline(policy.timeout_seconds):
        faults.before_cell(cell, attempt)
        return execute_cell(plan, cell)


def run_cells_serial(
    plan: ExperimentPlan,
    cells: Sequence[Cell],
    policy: "RetryPolicy | None" = None,
    on_result=None,
    start_attempts: "dict[Cell, int] | None" = None,
) -> ExecutionReport:
    """Execute cells in order, in-process, with retry/timeout/backoff.

    Also the fallback engine the parallel driver degrades to after
    repeated pool failures — ``start_attempts`` carries the attempt
    budget each cell already burned so the ``max_attempts`` bound holds
    across the hand-off.
    """
    policy = policy or RetryPolicy()
    policy.validate()
    report = ExecutionReport()
    for cell in cells:
        attempt = (start_attempts or {}).get(cell, 0)
        while True:
            try:
                result = execute_cell_attempt(plan, cell, attempt, policy)
                break
            except KeyboardInterrupt:
                raise
            except CellTimeoutError as exc:
                kind, message = "timeout", str(exc)
            except Exception as exc:
                kind, message = "exception", f"{type(exc).__name__}: {exc}"
            metric, step, seed = cell
            report.failures.append(
                CellFailure(
                    metric=metric, step=step, seed=seed,
                    kind=kind, attempt=attempt, message=message,
                )
            )
            attempt += 1
            if attempt >= policy.max_attempts:
                raise CellExecutionError(
                    cell,
                    [
                        f
                        for f in report.failures
                        if (f.metric, f.step, f.seed) == cell
                    ],
                )
            report.retries += 1
            time.sleep(policy.backoff_seconds(cell, attempt))
        report.results.append(result)
        if on_result is not None:
            on_result(result)
    return report


def _resolve_jobs(spec: ExperimentSpec, n_jobs: "int | None") -> int:
    jobs = spec.n_jobs if n_jobs is None else n_jobs
    if jobs < 0:
        raise ValueError("n_jobs must be >= 0 (0 means one per CPU core)")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_experiment(
    spec: ExperimentSpec,
    n_jobs: "int | None" = None,
    journal=None,
    retry: "RetryPolicy | None" = None,
) -> ExperimentResult:
    """Execute one spec end to end.

    ``n_jobs`` overrides ``spec.n_jobs`` without mutating the spec (so the
    stored spec — and therefore the canonical result JSON — is independent
    of how the run was scheduled).  Any value produces identical results;
    values above 1 dispatch work cells over a process pool.

    ``journal`` (a path or an open
    :class:`~repro.eval.journal.CellJournal`) makes the run resumable:
    completed cells are appended durably as they finish, and a rerun
    against the same journal executes only the missing ones — reducing,
    by the order-independence of :func:`reduce_cells`, to canonical JSON
    byte-identical to an uninterrupted run.

    ``retry`` sets the per-cell timeout/retry/backoff policy
    (:class:`~repro.eval.retry.RetryPolicy`); failed attempts are
    recorded on ``result.timing.failures``.
    """
    spec.validate()
    policy = retry or RetryPolicy()
    policy.validate()
    jobs = _resolve_jobs(spec, n_jobs)
    started = time.perf_counter()
    with telemetry.tracer.span(
        "run", name=spec.name, dataset=spec.dataset, n_jobs=jobs
    ):
        with telemetry.tracer.span("plan"):
            plan = build_plan(spec)
        cells = list(iter_cells(spec, len(plan.steps)))

        owns_journal = False
        if journal is not None and not hasattr(journal, "record"):
            from repro.eval.journal import CellJournal

            journal = CellJournal(journal, spec)
            owns_journal = True
        try:
            wanted = set(cells)
            restored = (
                {c: r for c, r in journal.completed.items() if c in wanted}
                if journal is not None
                else {}
            )
            missing = [c for c in cells if c not in restored]
            on_result = journal.record if journal is not None else None
            use_pool = jobs > 1 and len(missing) > 1
            if not use_pool:
                jobs = 1
            with telemetry.tracer.span(
                "execute",
                engine="pool" if use_pool else "serial",
                cells=len(missing),
                n_jobs=jobs,
                **policy.span_attrs(),
            ):
                if use_pool:
                    from repro.eval.parallel import run_cells_parallel

                    report = run_cells_parallel(
                        spec, missing, jobs,
                        policy=policy, on_result=on_result, plan=plan,
                    )
                else:
                    report = run_cells_serial(
                        plan, missing, policy, on_result=on_result
                    )
        finally:
            if owns_journal:
                journal.close()

        executed = report.results
        with telemetry.tracer.span("reduce", cells=len(cells)):
            result = reduce_cells(plan, list(restored.values()) + list(executed))
        result.timing = RunTiming(
            n_jobs=jobs,
            wall_seconds=time.perf_counter() - started,
            cells=len(executed),
            cell_seconds=float(sum(c.wall_seconds for c in executed)),
            max_cell_seconds=float(
                max((c.wall_seconds for c in executed), default=0.0)
            ),
            cache_hits=sum(c.cache_hits for c in executed),
            cache_misses=sum(c.cache_misses for c in executed),
            journal_cells=len(restored),
            retries=report.retries,
            pool_rebuilds=report.pool_rebuilds,
            degraded_to_serial=report.degraded_to_serial,
            failures=[f.to_payload() for f in report.failures],
        )
        _record_run_metrics(result.timing)
    return result


def _record_run_metrics(timing: RunTiming) -> None:
    """Mirror the run's :class:`RunTiming` into telemetry counters.

    Recorded once per run from the same numbers the ``[timing]`` /
    ``[faults]`` footer prints, so ``repro trace summary`` and the
    run output can never disagree.
    """
    registry = telemetry.metrics
    if not registry.enabled:
        return
    registry.counter("cells.executed").inc(timing.cells)
    registry.counter("cells.journal_restored").inc(timing.journal_cells)
    registry.counter("cells.retries").inc(timing.retries)
    registry.counter("pool.rebuilds").inc(timing.pool_rebuilds)
    if timing.degraded_to_serial:
        registry.counter("pool.degraded_to_serial").inc()
    for kind, count in timing.failure_kinds().items():
        registry.counter("cells.failed_attempts", kind=kind).inc(count)
