"""Choosing metric-based algorithms from network structure (Section 4.3).

Two classifiers are trained over per-snapshot network features
(:class:`~repro.graph.stats.GraphFeatures`):

- a *multi-class* decision tree whose label is the winning algorithm on
  that snapshot (Fig. 6), and
- per-algorithm *binary* trees answering "is this algorithm within 90% of
  the optimum here?", whose exported rules give the paper's guidance
  (Rescal for high degree heterogeneity, Katz for small networks,
  BRA/RA for dense networks).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.stats import GraphFeatures
from repro.ml.tree import DecisionTreeClassifier

FEATURE_NAMES: tuple[str, ...] = GraphFeatures.__dataclass_fields__["FIELD_NAMES"].default


@dataclass
class SnapshotRecord:
    """One data point: a snapshot's features plus every metric's ratio."""

    network: str
    features: GraphFeatures
    ratios: Mapping[str, float]  # metric name -> accuracy ratio

    @property
    def winner(self) -> str:
        return max(self.ratios, key=self.ratios.get)  # type: ignore[arg-type]


def feature_matrix(records: Sequence[SnapshotRecord]) -> np.ndarray:
    return np.vstack([r.features.as_array() for r in records])


def fit_choice_tree(
    records: Sequence[SnapshotRecord],
    max_depth: int = 3,
    seed: int = 0,
) -> tuple[DecisionTreeClassifier, list[str]]:
    """Fit the Fig. 6 multi-class tree.

    Returns the tree and its class names (winning-algorithm labels); use
    ``tree.export_text(FEATURE_NAMES, class_names)`` for the readable form.
    """
    if not records:
        raise ValueError("no records to fit")
    x = feature_matrix(records)
    labels = [r.winner for r in records]
    class_names = sorted(set(labels))
    index = {name: i for i, name in enumerate(class_names)}
    y = np.asarray([index[label] for label in labels])
    tree = DecisionTreeClassifier(max_depth=max_depth, min_samples_leaf=2, seed=seed)
    tree.fit(x, y)
    return tree, class_names


def fit_suitability_tree(
    records: Sequence[SnapshotRecord],
    algorithm: str,
    good_fraction: float = 0.9,
    max_depth: int = 2,
    seed: int = 0,
) -> "DecisionTreeClassifier | None":
    """Fit one algorithm's binary "is it good here?" tree.

    A snapshot is positive when the algorithm's ratio is within
    ``good_fraction`` of the snapshot's best ratio.  Returns ``None`` when
    the labels are one-sided (the paper likewise omits algorithms "for
    which there are few or no positive results").
    """
    if not 0 < good_fraction <= 1:
        raise ValueError(f"good_fraction must be in (0, 1], got {good_fraction}")
    x = feature_matrix(records)
    y = np.asarray(
        [
            1 if r.ratios[algorithm] >= good_fraction * max(r.ratios.values()) else 0
            for r in records
        ]
    )
    if len(np.unique(y)) < 2:
        return None
    tree = DecisionTreeClassifier(max_depth=max_depth, min_samples_leaf=2, seed=seed)
    tree.fit(x, y)
    return tree


def suitability_rules(
    records: Sequence[SnapshotRecord],
    algorithms: Sequence[str],
    good_fraction: float = 0.9,
) -> dict[str, str]:
    """Per-algorithm exported rules (the Section 4.3 bullet list)."""
    rules = {}
    for algorithm in algorithms:
        tree = fit_suitability_tree(records, algorithm, good_fraction)
        if tree is not None:
            rules[algorithm] = tree.export_text(
                feature_names=list(FEATURE_NAMES), class_names=["not-good", "good"]
            )
    return rules
