"""Deterministic fault injection for the experiment runner.

Recovery code that is only exercised by real outages is recovery code
that does not work.  This module lets tests (and the curious, via the
``REPRO_FAULTS`` environment variable) script failures precisely —
"kill the worker on cell CN:0:0's first attempt", "delay RA:1:0 by two
seconds", "raise in one cell per ~four, seeded" — so every recovery
path in :mod:`repro.eval.parallel` and :mod:`repro.eval.runner` can be
driven on demand and proven to reduce to byte-identical results.

Determinism rules:

- every injection is keyed by ``(cell, attempt)``; counted injections
  fire on attempts ``0..n-1`` and then stop, so a retried cell always
  eventually succeeds and tests terminate;
- probabilistic injections hash ``(seed, cell)`` through sha256 — the
  same cells fail in every run, in every process, regardless of
  ``PYTHONHASHSEED`` — and fire only on attempt 0 so a retry budget of
  two always suffices;
- ``kill`` faults only fire inside pool worker processes (detected via
  ``multiprocessing.parent_process()``); in the driver or the serial
  loop they are inert, which is what lets the pool's serial-degradation
  path complete a run whose workers keep dying.

Fault kinds:

``kill``    ``os._exit(KILL_EXIT_CODE)`` mid-cell — an OOM-kill stand-in;
            the driver observes ``BrokenProcessPool`` and rebuilds.
``errors``  raise :class:`InjectedFault` — an ordinary exception failure.
``delays``  sleep before the cell — trips *soft* (in-process) deadlines.
``hangs``   sleep while swallowing :class:`CellTimeoutError` — simulates
            a wedged C call that the soft deadline cannot interrupt, so
            only the driver's *hard* deadline can reclaim the worker.
``crashes`` ``os._exit(KILL_EXIT_CODE)`` in *any* process, and on exactly
            the scheduled invocation (``attempt == n``) rather than the
            first N — the crash-anywhere recovery harness uses this to
            SIGKILL a whole server at the k-th ``wal.append`` /
            ``wal.fsync`` / ``checkpoint.write`` fault point.  Because the
            restarted process runs without the plan, a crash schedule
            never loops.

The plan travels to workers automatically: an installed plan is
inherited by forked workers, and the environment variable reaches
spawned ones.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.eval.retry import CellTimeoutError, _unit_hash, cell_key

#: environment variable holding a FaultPlan as JSON.
ENV_VAR = "REPRO_FAULTS"

#: exit status used by ``kill`` faults — distinctive in worker post-mortems.
KILL_EXIT_CODE = 87


class InjectedFault(Exception):
    """The scripted exception raised by ``errors``/``error_probability``."""


@dataclass(frozen=True)
class FaultPlan:
    """A declarative script of failures, keyed by cell name.

    Cell names are ``"metric:step:seed"`` (:func:`repro.eval.retry.cell_key`).
    Counted maps (``kill``/``errors``) give the number of leading
    attempts to sabotage; timed maps (``delays``/``hangs``) give
    ``(seconds, attempts)``.
    """

    #: cell -> number of attempts on which to kill the worker process.
    kill: "dict[str, int]" = field(default_factory=dict)
    #: cell -> number of attempts on which to raise InjectedFault.
    errors: "dict[str, int]" = field(default_factory=dict)
    #: cell -> (sleep seconds, number of attempts to delay).
    delays: "dict[str, tuple[float, int]]" = field(default_factory=dict)
    #: cell -> (hang seconds, attempts); ignores the soft deadline.
    hangs: "dict[str, tuple[float, int]]" = field(default_factory=dict)
    #: key -> invocation index on which to hard-exit the whole process.
    crashes: "dict[str, int]" = field(default_factory=dict)
    #: chance of InjectedFault on any cell's first attempt (0 disables).
    error_probability: float = 0.0
    #: seed of the probabilistic injections' hash.
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.error_probability <= 1.0:
            raise ValueError("error_probability must be within [0, 1]")
        for key, index in self.crashes.items():
            if int(index) < 0:
                raise ValueError(
                    f"crashes[{key!r}] must be a non-negative invocation index"
                )
        for name, table in (("delays", self.delays), ("hangs", self.hangs)):
            for key, entry in table.items():
                if len(tuple(entry)) != 2 or float(entry[0]) < 0:
                    raise ValueError(
                        f"{name}[{key!r}] must be a (seconds >= 0, attempts) pair"
                    )

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "kill": self.kill,
            "errors": self.errors,
            "delays": {k: list(v) for k, v in self.delays.items()},
            "hangs": {k: list(v) for k, v in self.hangs.items()},
            "crashes": self.crashes,
            "error_probability": self.error_probability,
            "seed": self.seed,
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        plan = cls(
            kill={k: int(v) for k, v in payload.get("kill", {}).items()},
            errors={k: int(v) for k, v in payload.get("errors", {}).items()},
            delays={
                k: (float(v[0]), int(v[1]))
                for k, v in payload.get("delays", {}).items()
            },
            hangs={
                k: (float(v[0]), int(v[1]))
                for k, v in payload.get("hangs", {}).items()
            },
            crashes={k: int(v) for k, v in payload.get("crashes", {}).items()},
            error_probability=float(payload.get("error_probability", 0.0)),
            seed=int(payload.get("seed", 0)),
        )
        plan.validate()
        return plan

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        text = os.environ.get(ENV_VAR)
        return cls.from_json(text) if text else None


#: plan installed programmatically; wins over the environment variable.
_INSTALLED: "FaultPlan | None" = None


def install(plan: "FaultPlan | None") -> None:
    """Activate ``plan`` process-wide (forked workers inherit it)."""
    global _INSTALLED
    if plan is not None:
        plan.validate()
    _INSTALLED = plan


def clear() -> None:
    install(None)


def active_plan() -> "FaultPlan | None":
    if _INSTALLED is not None:
        return _INSTALLED
    return FaultPlan.from_env()


def in_worker() -> bool:
    """True inside a multiprocessing child (where ``kill`` faults apply)."""
    return multiprocessing.parent_process() is not None


def _hang(seconds: float) -> None:
    """Sleep through soft-deadline interrupts, like a blocked C call."""
    deadline = time.monotonic() + seconds
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        try:
            time.sleep(min(0.05, remaining))
        except CellTimeoutError:
            # A real wedged extension call never sees the signal at all;
            # swallowing it reproduces that from pure Python.
            continue


def before_cell(cell: "tuple[str, int, int]", attempt: int) -> None:
    """Apply the active plan to one ``(cell, attempt)``; usually a no-op.

    Called at the top of every cell attempt, on the serial path and in
    pool workers alike.  Ordering: delay/hang first (so deadline tests
    see a *slow* cell, not an instantly-failing one), then kill, then
    scripted errors, then probabilistic errors.
    """
    before_key(cell_key(cell), attempt)


def before_key(key: str, attempt: int = 0) -> None:
    """Apply the active plan to an arbitrary string-keyed operation.

    The plan's tables are keyed by plain strings, so the same scripting
    machinery drives non-cell fault points too: the serving layer calls
    this with keys like ``"serve.predict"`` / ``"serve.ingest"`` and a
    per-key invocation counter as ``attempt``, which makes counted
    injections mean "sabotage the first N calls" — exactly what circuit
    breaker and deadline tests need.
    """
    plan = active_plan()
    if plan is None:
        return

    delay = plan.delays.get(key)
    if delay is not None and attempt < delay[1]:
        time.sleep(delay[0])
    hang = plan.hangs.get(key)
    if hang is not None and attempt < hang[1]:
        _hang(hang[0])
    if attempt < plan.kill.get(key, 0) and in_worker():
        os._exit(KILL_EXIT_CODE)
    if plan.crashes.get(key, -1) == attempt:
        os._exit(KILL_EXIT_CODE)
    if attempt < plan.errors.get(key, 0):
        raise InjectedFault(f"injected error on {key} attempt {attempt}")
    if (
        plan.error_probability > 0.0
        and attempt == 0
        and _unit_hash("fault", plan.seed, key) < plan.error_probability
    ):
        raise InjectedFault(f"injected probabilistic error on {key}")
