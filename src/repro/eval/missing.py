"""Missing-link detection — the problem the paper is careful *not* to solve.

Section 2 distinguishes predicting *future* links from detecting *missing*
links: "given a partially observed graph, identify link status for
unobserved pairs" [17, 29].  Most of the older literature evaluated on the
missing-link task, which is systematically easier because the hidden edges
are drawn from the same distribution as the observed ones; this module
implements it so the two protocols can be compared on equal footing (see
``benchmarks/bench_ablation_task_protocol.py``).

Protocol: hide a uniform fraction of the snapshot's edges, score candidates
on the remaining graph, and measure recovery of the hidden set.
"""

from __future__ import annotations

import numpy as np

from repro.eval.accuracy import StepOutcome, score_prediction
from repro.eval.ranking import top_k_pairs
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.base import SimilarityMetric, get_metric
from repro.metrics.candidates import candidate_pairs
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng


def hide_edges(
    snapshot: Snapshot,
    fraction: float,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[Snapshot, set[Pair]]:
    """Return a snapshot with a uniform ``fraction`` of its edges hidden.

    Timestamps of the surviving edges are preserved, so temporal filters
    still work on the reduced snapshot.  Nodes isolated by the removal drop
    out of the snapshot view (snapshots only contain nodes with at least one
    edge, matching the prediction protocol) — a detector cannot recover a
    hidden edge whose endpoint it can no longer see, which is part of what
    makes the task realistic.
    """
    if not 0 < fraction < 1:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    generator = ensure_rng(rng)
    edges = sorted(snapshot.edges())
    n_hide = max(1, int(round(fraction * len(edges))))
    hidden_idx = generator.choice(len(edges), size=n_hide, replace=False)
    hidden = {edges[int(i)] for i in hidden_idx}
    reduced = TemporalGraph()
    for node in snapshot.nodes():
        reduced.add_node(node, snapshot.trace.node_arrival_time(node))
    kept_events = [
        (u, v, t)
        for u, v, t in snapshot.trace.edge_slice(0, snapshot.cutoff)
        if ((u, v) if u < v else (v, u)) not in hidden
    ]
    for u, v, t in kept_events:
        reduced.add_edge(u, v, t)
    return Snapshot(reduced, reduced.num_edges), hidden


def detect_missing_links(
    metric: "SimilarityMetric | str",
    observed: Snapshot,
    hidden: "set[Pair]",
    rng: "int | np.random.Generator | None" = None,
) -> StepOutcome:
    """Top-k recovery of ``hidden`` from the ``observed`` partial graph.

    ``k = |hidden|``, mirroring the paper's ground-truth-k convention for
    the future-link task so the two protocols are directly comparable.
    """
    if isinstance(metric, str):
        metric = get_metric(metric)
    generator = ensure_rng(rng)
    metric.fit(observed)
    pairs = candidate_pairs(observed, metric.candidate_strategy)
    k = len(hidden)
    scores = metric.score(pairs) if len(pairs) else np.zeros(0)
    top = top_k_pairs(pairs, scores, k, generator)
    predicted = {(int(u), int(v)) for u, v in top}
    return score_prediction(observed, predicted, hidden)


def missing_vs_future(
    metric_name: str,
    previous: Snapshot,
    truth: "set[Pair]",
    hide_fraction: float = 0.1,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[float, float]:
    """Accuracy-ratio pair ``(missing_task, future_task)`` for one metric.

    The classic observation — and the reason the paper insists on the
    future-link protocol — is that the same metric looks substantially
    better on the missing-link task.
    """
    generator = ensure_rng(rng)
    observed, hidden = hide_edges(previous, hide_fraction, generator)
    missing = detect_missing_links(metric_name, observed, hidden, generator)

    from repro.eval.experiment import evaluate_step

    future = evaluate_step(metric_name, previous, truth, rng=generator)
    return missing.ratio, future.outcome.ratio
