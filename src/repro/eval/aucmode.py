"""AUC-based evaluation of similarity metrics.

The paper explicitly *rejects* AUC in favour of the top-k accuracy ratio:
"AUC evaluates link prediction performance according to the entire list of
the predicted node pairs [28], while our goal is to evaluate the accuracy
of top k predicted node pairs" (Section 4.1).  This module implements the
AUC protocol anyway, so that choice can be studied as an ablation: how much
does the metric ranking change when the evaluation statistic changes?

AUC here follows the survey convention [28]: the probability that a
randomly chosen positive pair (one that connects next) outscores a randomly
chosen negative pair, with ties counted half.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import SimilarityMetric, get_metric
from repro.metrics.candidates import candidate_pairs
from repro.ml.metrics import roc_auc_score
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng


def metric_auc(
    metric: "SimilarityMetric | str",
    previous: Snapshot,
    truth: "set[Pair]",
    negative_sample: int = 10000,
    rng: "int | np.random.Generator | None" = None,
) -> float:
    """AUC of one metric on one prediction step.

    Positives are the ground-truth pairs that fall inside the metric's
    candidate universe; negatives are a uniform sample of the remaining
    candidates.  Returns 0.5 (the chance level) when the metric's candidate
    set contains no positive pairs at all — the metric cannot rank what it
    cannot see, which is exactly the random behaviour 0.5 encodes.
    """
    if isinstance(metric, str):
        metric = get_metric(metric)
    generator = ensure_rng(rng)
    metric.fit(previous)
    pairs = candidate_pairs(previous, metric.candidate_strategy)
    if len(pairs) == 0:
        return 0.5
    is_positive = np.fromiter(
        ((int(u), int(v)) in truth for u, v in pairs), dtype=bool, count=len(pairs)
    )
    positives = pairs[is_positive]
    negatives = pairs[~is_positive]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    if len(negatives) > negative_sample:
        idx = generator.choice(len(negatives), size=negative_sample, replace=False)
        negatives = negatives[idx]
    sample = np.vstack([positives, negatives])
    labels = np.concatenate(
        [np.ones(len(positives), dtype=int), np.zeros(len(negatives), dtype=int)]
    )
    scores = metric.score(sample)
    # -inf scores (SP on disconnected pairs) are legal: AUC is rank-based.
    finite_floor = np.nanmin(scores[np.isfinite(scores)]) if np.isfinite(scores).any() else 0.0
    scores = np.where(np.isneginf(scores), finite_floor - 1.0, scores)
    return roc_auc_score(labels, scores)


def auc_ranking(
    metric_names,
    previous: Snapshot,
    truth: "set[Pair]",
    rng: "int | np.random.Generator | None" = None,
) -> dict[str, float]:
    """AUC of several metrics on the same step (shared negative sample RNG)."""
    generator = ensure_rng(rng)
    return {
        name: metric_auc(name, previous, truth, rng=generator)
        for name in metric_names
    }
