"""Append-only journal of completed work cells — crash-safe resume.

A sweep of 18 metrics over many snapshots and seeds runs for hours; an
OOM kill or a Ctrl-C at hour three should not cost the first three
hours.  The journal records every completed
:class:`~repro.eval.runner.CellResult` as one JSONL line the moment the
driver receives it (write, flush, fsync), so
``run_experiment(spec, journal=path)`` after a crash re-executes only
the missing cells.

Why this is *exact* rather than best-effort: cells are pure functions
of the spec and ``reduce_cells`` is order-independent, so a result
assembled from journal-restored cells plus freshly-executed ones is
byte-identical to a clean run's canonical JSON — the resume-parity
suite asserts equality, not approximation (Yang et al. show silently
drifting evaluation protocols corrupt conclusions; a lossy resume would
be exactly that).

File format (one JSON object per line):

- line 1: ``{"kind": "header", "version": 1, "fingerprint": ..., "name": ...}``
- then:   ``{"kind": "cell", "metric": ..., "step": ..., "seed": ..., ...}``

The fingerprint hashes the spec's *scientific* fields — ``n_jobs`` is
excluded, so a journal written by an 8-worker run resumes under
``--jobs 1`` and vice versa.  Loading tolerates exactly the damage a
crash can cause (a truncated final line) and rejects everything else:
corruption mid-file or a fingerprint from a different spec raises
instead of quietly mixing experiments.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict

from repro.eval.runner import Cell, CellResult, ExperimentSpec

JOURNAL_VERSION = 1

#: spec fields that describe scheduling, not science; never fingerprinted.
_EXECUTION_ONLY_FIELDS = ("n_jobs",)


def spec_fingerprint(spec: ExperimentSpec) -> str:
    """Hex digest identifying a spec's scientific content.

    Two specs share a fingerprint exactly when they must produce the
    same cells and the same canonical result JSON.
    """
    payload = json.loads(spec.to_json())
    for field_name in _EXECUTION_ONLY_FIELDS:
        payload.pop(field_name, None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class JournalMismatchError(ValueError):
    """The journal on disk was written for a different spec."""


class JournalCorruptError(ValueError):
    """The journal is damaged beyond what a crash can explain."""


def _cell_result_from_payload(payload: dict) -> CellResult:
    known = {f for f in CellResult.__dataclass_fields__}
    return CellResult(**{k: v for k, v in payload.items() if k in known})


class CellJournal:
    """Durable record of one experiment's completed cells.

    Opening an existing file validates its header against the spec and
    loads the completed cells; opening a fresh path writes the header.
    :meth:`record` appends one line per cell and fsyncs — after a hard
    kill the file is intact up to (at worst) one truncated trailing
    line, which the loader discards.
    """

    def __init__(self, path: "str | os.PathLike[str]", spec: ExperimentSpec):
        self.path = os.fspath(path)
        self.fingerprint = spec_fingerprint(spec)
        self.completed: "dict[Cell, CellResult]" = {}
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existing:
            self._load()
        self._fh = open(self.path, "a", encoding="utf-8")
        if not existing:
            self._append(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "fingerprint": self.fingerprint,
                    "name": spec.name,
                }
            )

    # -- loading --------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        records = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # torn final write from a crash — discard it
                raise JournalCorruptError(
                    f"journal {self.path!r} line {index + 1} is not valid JSON "
                    f"(mid-file corruption, not a crash artifact)"
                ) from None
        if not records:
            raise JournalCorruptError(
                f"journal {self.path!r} is non-empty but holds no records"
            )
        header = records[0]
        if header.get("kind") != "header":
            raise JournalCorruptError(
                f"journal {self.path!r} does not start with a header record"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise JournalMismatchError(
                f"journal {self.path!r} was written for a different spec "
                f"(journal fingerprint {str(header.get('fingerprint'))[:12]}..., "
                f"this spec {self.fingerprint[:12]}...); refusing to mix "
                f"experiments — use a fresh --journal path"
            )
        for payload in records[1:]:
            if payload.get("kind") != "cell":
                continue  # forward compatibility: skip unknown record kinds
            result = _cell_result_from_payload(payload)
            # duplicates can only hold identical values (cells are pure);
            # keep the first occurrence.
            self.completed.setdefault((result.metric, result.step, result.seed), result)

    # -- writing --------------------------------------------------------
    def _append(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, result: CellResult) -> None:
        """Durably append one completed cell (idempotent per cell)."""
        key = (result.metric, result.step, result.seed)
        if key in self.completed:
            return
        payload = {"kind": "cell", **asdict(result)}
        # Telemetry is execution metadata and the driver already merged
        # it; journal lines carry only the replayable cell outcome.
        payload.pop("telemetry", None)
        self._append(payload)
        self.completed[key] = result

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CellJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)
