"""Retry policy primitives for fault-tolerant cell execution.

A long experiment sweep dies for mundane reasons: an OOM-killed worker,
a hung factorization, a transient exception.  This module defines the
*policy* side of recovery — how many attempts a cell gets, how long an
attempt may run, how long to wait between attempts — plus the records
(:class:`CellFailure`) that make every failed attempt auditable in
``RunTiming`` and the summary table.

Everything here is deterministic on purpose.  Backoff jitter derives
from a seeded hash of ``(cell, attempt)``, not from wall clock or a
global RNG, so a retried run sleeps the same schedule every time and
fault-injection tests (:mod:`repro.eval.faults`) can assert exact
recovery behaviour.  The scientific outputs never depend on any of it:
a retried cell re-executes :func:`repro.eval.runner.execute_cell`, which
is a pure function of the spec, so recovery reduces to byte-identical
canonical JSON (the resume-parity suite enforces this).

Timeouts come in two layers:

- a **soft deadline** (:func:`soft_deadline`), enforced *inside* the
  executing process via ``SIGALRM`` — it interrupts pure-Python work and
  surfaces as an ordinary :class:`CellTimeoutError` that the retry loop
  handles without tearing anything down;
- a **hard deadline** (``RetryPolicy.hard_timeout_seconds``), enforced
  by the parallel driver — it covers code the signal cannot interrupt
  (a wedged C call) by terminating the worker pool and resubmitting the
  unfinished cells.
"""

from __future__ import annotations

import hashlib
import signal
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field


def cell_key(cell: "tuple[str, int, int]") -> str:
    """Stable string name of a work cell: ``"metric:step:seed"``."""
    metric, step, seed = cell
    return f"{metric}:{step}:{seed}"


def _unit_hash(*parts: "object") -> float:
    """Deterministic uniform-[0, 1) value from a tuple of parts.

    Uses sha256 rather than ``hash()`` so the value is stable across
    processes and ``PYTHONHASHSEED`` values.
    """
    blob = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class CellTimeoutError(Exception):
    """One cell attempt exceeded its soft deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for each work cell before giving up.

    ``timeout_seconds=None`` (the default) disables both deadline
    layers; sweeps with known-slow metrics should budget generously —
    the first cell a fresh worker runs also pays the plan rebuild and
    cache pre-warm.
    """

    #: total attempts per cell (1 = no retries).
    max_attempts: int = 3
    #: soft per-attempt deadline; ``None`` disables timeouts entirely.
    timeout_seconds: "float | None" = None
    #: first backoff sleep, seconds; doubles (``backoff_factor``) per attempt.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: jitter fraction added on top of the exponential base (0 = none).
    jitter: float = 0.1
    #: seed of the deterministic jitter hash.
    jitter_seed: int = 0
    #: pool rebuilds tolerated before degrading to serial execution.
    max_pool_rebuilds: int = 3
    #: slack added to the driver-side hard deadline (see below).
    hard_timeout_grace: float = 5.0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff_seconds(self, cell: "tuple[str, int, int]", attempt: int) -> float:
        """Sleep before retry number ``attempt`` (attempts count from 0).

        Exponential in the attempt number, capped at ``backoff_max``,
        plus deterministic jitter hashed from ``(jitter_seed, cell,
        attempt)`` — identical across runs, different across cells, so
        retry storms de-synchronise without losing reproducibility.
        """
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        u = _unit_hash(self.jitter_seed, cell_key(cell), attempt)
        return base * (1.0 + self.jitter * u)

    def hard_timeout_seconds(self) -> "float | None":
        """Driver-side deadline for one in-flight cell, or ``None``.

        Twice the soft deadline plus grace: the soft layer gets a full
        chance to fire first, so the hard layer only triggers for work
        the in-process signal could not interrupt.
        """
        if self.timeout_seconds is None:
            return None
        return 2.0 * self.timeout_seconds + self.hard_timeout_grace

    def span_attrs(self) -> dict:
        """The policy fields worth recording on an execution-phase span."""
        attrs: dict = {"max_attempts": self.max_attempts}
        if self.timeout_seconds is not None:
            attrs["timeout_seconds"] = self.timeout_seconds
        return attrs


@dataclass(frozen=True)
class CellFailure:
    """One failed attempt of one work cell — the audit record.

    ``kind`` distinguishes the three ways a cell dies: ``"exception"``
    (the attempt raised), ``"timeout"`` (soft or hard deadline), and
    ``"crash"`` (the worker process vanished mid-cell and the pool had
    to be rebuilt).  Failures are execution metadata: they ride on
    ``RunTiming`` and the summary table, never on canonical JSON.
    """

    metric: str
    step: int
    seed: int
    kind: str
    attempt: int
    message: str = ""

    def to_payload(self) -> dict:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "CellFailure":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


def failure_span_attrs(failures: "list[CellFailure]") -> dict:
    """Span attributes summarising a cell's failed attempts.

    The per-cell trace span carries its retry history this way:
    ``failed_attempts=2 failure_kinds=crash:1,timeout:1`` reads directly
    off ``repro trace show`` without cross-referencing RunTiming.
    """
    if not failures:
        return {}
    kinds: dict[str, int] = {}
    for failure in failures:
        kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
    return {
        "failed_attempts": len(failures),
        "failure_kinds": ",".join(f"{k}:{v}" for k, v in sorted(kinds.items())),
    }


class CellExecutionError(RuntimeError):
    """A cell exhausted its retry budget; the run cannot complete.

    Carries the per-attempt :class:`CellFailure` records so the caller
    (and the CLI's one-line error path) can say *why* — and, when a
    journal is attached, every cell finished before the fatal one is
    already on disk for resumption.
    """

    def __init__(self, cell: "tuple[str, int, int]", failures: "list[CellFailure]"):
        self.cell = cell
        self.failures = list(failures)
        kinds = ", ".join(f.kind for f in self.failures) or "unknown"
        last = self.failures[-1].message if self.failures else ""
        detail = f": {last}" if last else ""
        super().__init__(
            f"cell {cell_key(cell)} failed after {len(self.failures)} "
            f"attempt(s) ({kinds}){detail}"
        )


@dataclass
class ExecutionReport:
    """What one execution engine run actually did, successes and scars."""

    #: cells executed in this run (journal-restored cells are not here).
    results: list = field(default_factory=list)
    #: every failed attempt, including ones later retried successfully.
    failures: "list[CellFailure]" = field(default_factory=list)
    #: failed attempts that were given another chance.
    retries: int = 0
    #: times the process pool was torn down and rebuilt.
    pool_rebuilds: int = 0
    #: True when repeated pool failures forced a serial fallback.
    degraded_to_serial: bool = False

    def merge(self, other: "ExecutionReport") -> None:
        self.results.extend(other.results)
        self.failures.extend(other.failures)
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds
        self.degraded_to_serial = self.degraded_to_serial or other.degraded_to_serial


def _alarm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def soft_deadline(seconds: "float | None"):
    """Raise :class:`CellTimeoutError` if the body outlives ``seconds``.

    Implemented with ``setitimer``/``SIGALRM``, which interrupts Python
    bytecode (and interruptible sleeps) but not a blocked C extension
    call — that gap is what the driver-side hard deadline covers.  A
    no-op when ``seconds`` is None, on platforms without ``SIGALRM``,
    or off the main thread (where signals cannot be delivered).
    """
    if not seconds or not _alarm_usable():
        yield
        return

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal handler signature
        raise CellTimeoutError(f"cell attempt exceeded {seconds:.3f}s soft deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
