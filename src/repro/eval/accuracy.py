"""Accuracy accounting: absolute accuracy and the accuracy ratio.

Given top-k predictions ``P`` and ground truth ``T`` (with ``k = |T|``):

- absolute accuracy  = ``|P ∩ T| / k``  (Table 4's numbers),
- expected random hits = ``k * |T| / M`` where ``M`` is the number of
  unconnected pairs — the expected overlap of a uniform-random k-subset,
- accuracy ratio     = ``|P ∩ T| / expected_random_hits`` — the improvement
  factor over random prediction used throughout the paper [23].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.snapshots import Snapshot
from repro.metrics.candidates import num_nonedge_pairs
from repro.utils.pairs import Pair


def expected_random_hits(snapshot: Snapshot, k: int, truth_size: "int | None" = None) -> float:
    """Expected correct predictions of the uniform-random baseline.

    A random predictor draws ``k`` distinct pairs from the ``M`` unconnected
    pairs of ``snapshot``; each of the ``truth_size`` true pairs is included
    with probability ``k / M``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if truth_size is None:
        truth_size = k
    m = num_nonedge_pairs(snapshot)
    if m <= 0:
        return 0.0
    return k * truth_size / m


def absolute_accuracy(hits: int, k: int) -> float:
    """``|P ∩ T| / k`` — the paper's "absolute accuracy" (Table 4)."""
    if k <= 0:
        return 0.0
    return hits / k


def accuracy_ratio(hits: int, expected: float) -> float:
    """Improvement factor over random; infinite expectations cannot occur
    for non-degenerate snapshots, but a zero expectation yields 0 by
    convention (no random baseline to beat)."""
    if expected <= 0:
        return 0.0
    return hits / expected


@dataclass
class StepOutcome:
    """Scoreboard for one prediction step."""

    k: int
    hits: int
    expected_random: float
    #: which predicted pairs were correct (subset of the prediction)
    correct: "set[Pair]"

    @property
    def absolute(self) -> float:
        return absolute_accuracy(self.hits, self.k)

    @property
    def ratio(self) -> float:
        return accuracy_ratio(self.hits, self.expected_random)


def score_prediction(
    snapshot: Snapshot, predicted: "set[Pair]", truth: "set[Pair]"
) -> StepOutcome:
    """Compare a prediction set against ground truth on one step."""
    correct = predicted & truth
    k = len(truth)
    return StepOutcome(
        k=k,
        hits=len(correct),
        expected_random=expected_random_hits(snapshot, len(predicted), k),
        correct=correct,
    )
