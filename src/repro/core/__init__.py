"""Public high-level API (facade)."""

from repro.core.api import (
    ClassificationPredictor,
    LinkPredictor,
    SequenceResult,
    SnapshotResult,
    available_classifiers,
    available_metrics,
)

__all__ = [
    "ClassificationPredictor",
    "LinkPredictor",
    "SequenceResult",
    "SnapshotResult",
    "available_classifiers",
    "available_metrics",
]
