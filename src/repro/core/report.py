"""One-shot markdown report for a trace.

``build_report`` runs the core of the paper's pipeline on a single trace —
structural evolution, a metric comparison, a calibrated temporal filter —
and renders the outcome as markdown.  It is what ``python -m repro report``
prints; downstream users get a first read on *their* network's
predictability in one command.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiment import evaluate_step, prediction_steps
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import snapshot_sequence
from repro.graph.stats import graph_features
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, calibrate_filter
from repro.utils.rng import ensure_rng
from repro.utils.sparkline import sparkline

DEFAULT_METRICS = ("CN", "JC", "RA", "BRA", "LP", "PA", "Rescal")


def collect_benchmark_results(results_dir) -> str:
    """Assemble ``benchmarks/results/*.txt`` into one markdown document.

    Each bench writes its regenerated table to a text file; this collects
    them (sorted by name) under per-experiment headings so a full run can
    be read—or committed—as a single artifact.
    """
    from pathlib import Path

    directory = Path(results_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"no results directory at {directory}")
    files = sorted(directory.glob("*.txt"))
    if not files:
        raise FileNotFoundError(f"no result files in {directory}")
    lines = ["# Benchmark results", ""]
    for path in files:
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text(encoding="utf-8").rstrip("\n"))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def build_report(
    trace: TemporalGraph,
    delta: "int | None" = None,
    metrics=DEFAULT_METRICS,
    seed: "int | np.random.Generator | None" = 0,
    name: str = "trace",
) -> str:
    """Evaluate ``metrics`` on ``trace`` and render a markdown report.

    The report contains: trace and final-snapshot statistics, a ranked
    metric table (mean accuracy ratio and best absolute accuracy over the
    sequence), and the effect of a calibrated temporal filter on the
    strongest metric.
    """
    rng = ensure_rng(seed)
    if delta is None:
        delta = max(10, trace.num_edges // 20)
    snapshots = snapshot_sequence(trace, delta, start=max(delta, trace.num_edges // 3))
    if len(snapshots) < 3:
        raise ValueError(
            f"trace too short for a report: only {len(snapshots)} snapshots "
            f"at delta={delta}"
        )
    steps = list(prediction_steps(snapshots))
    last = snapshots[-1]
    features = graph_features(last, clustering_sample=300, path_sample=30, seed=rng)

    lines = [
        f"# Link prediction report: {name}",
        "",
        "## Trace",
        "",
        f"- events: {trace.num_edges} edges over {trace.end_time - trace.start_time:.1f} days",
        f"- final snapshot: {last.num_nodes} nodes, {last.num_edges} edges",
        f"- snapshots: {len(snapshots)} at delta = {delta}",
        "",
        "## Structure (final snapshot)",
        "",
        f"- average degree: {features.avg_degree:.1f} (std {features.degree_std:.1f})",
        f"- clustering coefficient: {features.clustering:.3f}",
        f"- average path length: {features.avg_path_length:.2f}",
        f"- degree assortativity: {features.assortativity:+.3f}",
        "",
        "## Metric comparison",
        "",
        "| metric | mean accuracy ratio | best absolute | ratio over time |",
        "|---|---|---|---|",
    ]

    scored = []
    for metric in metrics:
        ratios, absolutes = [], []
        for i, (prev, _, truth) in enumerate(steps):
            result = evaluate_step(metric, prev, truth, rng=rng, step=i)
            ratios.append(result.ratio)
            absolutes.append(result.absolute)
        scored.append(
            (metric, float(np.mean(ratios)), float(np.max(absolutes)), list(ratios))
        )
    scored.sort(key=lambda row: -row[1])
    for metric, ratio, absolute, series in scored:
        lines.append(
            f"| {metric} | {ratio:.2f}x | {100 * absolute:.2f}% "
            f"| `{sparkline(series, log=True)}` |"
        )
    best_metric = scored[0][0]

    # Temporal filter on the strongest metric (calibrate mid-sequence,
    # evaluate on the later steps).
    cal_prev, _, cal_truth = steps[len(steps) // 2]
    try:
        params = calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=rng)
    except ValueError:
        lines += ["", "## Temporal filter", "", "_not calibratable on this trace_"]
        return "\n".join(lines)
    filt = TemporalFilter(params)
    late = steps[len(steps) // 2 + 1 :] or steps[-1:]
    base = float(
        np.mean([evaluate_step(best_metric, p, t, rng=rng).ratio for p, _, t in late])
    )
    filtered = float(
        np.mean(
            [
                evaluate_step(best_metric, p, t, rng=rng, pair_filter=filt).ratio
                for p, _, t in late
            ]
        )
    )
    reduction = filt.reduction(late[-1][0], two_hop_pairs(late[-1][0]))
    lines += [
        "",
        "## Temporal filter (Section 6)",
        "",
        f"- calibrated thresholds: active idle < {params.d_act:.2f}d, "
        f"inactive idle < {params.d_inact:.2f}d, "
        f">= {params.min_new_edges:.0f} edges in {params.window:.1f}d, "
        f"CN gap < {params.d_cn:.2f}d",
        f"- search-space reduction: {100 * reduction:.0f}%",
        f"- {best_metric} accuracy ratio: {base:.2f}x -> {filtered:.2f}x",
    ]
    return "\n".join(lines)
