"""High-level facade over the library.

:class:`LinkPredictor` is the one-stop entry point a downstream user needs:
pick a similarity metric (or a classifier), optionally attach a temporal
filter, then either

- ``suggest(snapshot, k)`` — produce k link recommendations right now, or
- ``evaluate_sequence(trace, delta)`` — run the paper's full
  sequence-based evaluation and get per-step accuracy ratios back.

For batch experiment sweeps the declarative runner is re-exported here
too: build an :class:`~repro.eval.runner.ExperimentSpec` and call
:func:`~repro.eval.runner.run_experiment` — with ``n_jobs > 1`` it
dispatches work cells over a process pool and returns results
bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classify.predictor import ClassificationPredictor
from repro.eval.experiment import (
    MetricStepResult,
    PairFilter,
    evaluate_step,
    prediction_steps,
)
from repro.eval.ranking import top_k_pairs
from repro.eval.runner import ExperimentResult, ExperimentSpec, run_experiment
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics.base import all_metric_names, get_metric
from repro.metrics.candidates import candidate_pairs
from repro.ml import CLASSIFIERS
from repro.utils.pairs import Pair
from repro.utils.rng import ensure_rng


def available_metrics() -> list[str]:
    """Names of all metric-based algorithms (Table 3)."""
    return all_metric_names()


def available_classifiers() -> list[str]:
    """Names of all classification-based algorithms (Section 5)."""
    return sorted(CLASSIFIERS)


@dataclass
class SnapshotResult:
    """One prediction step of :meth:`LinkPredictor.evaluate_sequence`."""

    step: int
    time: float
    k: int
    hits: int
    absolute: float
    ratio: float

    @classmethod
    def from_step(cls, result: MetricStepResult) -> "SnapshotResult":
        return cls(
            step=result.step,
            time=result.snapshot_time,
            k=result.outcome.k,
            hits=result.outcome.hits,
            absolute=result.absolute,
            ratio=result.ratio,
        )


@dataclass
class SequenceResult:
    """All steps of one sequence evaluation, with summary helpers."""

    method: str
    steps: list[SnapshotResult] = field(default_factory=list)

    @property
    def ratios(self) -> list[float]:
        return [s.ratio for s in self.steps]

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(self.ratios)) if self.steps else 0.0

    @property
    def best_absolute(self) -> float:
        return max((s.absolute for s in self.steps), default=0.0)

    def summary(self) -> str:
        """Human-readable recap of the evaluation."""
        lines = [
            f"method: {self.method}",
            f"steps: {len(self.steps)}",
            f"mean accuracy ratio: {self.mean_ratio:.2f}x random",
            f"best absolute accuracy: {100 * self.best_absolute:.2f}%",
        ]
        return "\n".join(lines)


class LinkPredictor:
    """Facade for metric-based link prediction with optional filtering.

    Parameters
    ----------
    metric:
        Any Table 3 metric name (see :func:`available_metrics`).
    pair_filter:
        Optional :data:`~repro.eval.experiment.PairFilter` — typically a
        :class:`~repro.temporal.filters.TemporalFilter` — applied to the
        candidate set before ranking.
    seed:
        RNG seed for tie-breaking and random fill.

    For classification-based prediction construct a
    :class:`~repro.classify.predictor.ClassificationPredictor` instead
    (re-exported from this module for convenience).
    """

    def __init__(
        self,
        metric: str = "RA",
        pair_filter: "PairFilter | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.metric_name = metric
        self._prototype = get_metric(metric)  # validates the name eagerly
        self.pair_filter = pair_filter
        self.rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def suggest(self, snapshot: Snapshot, k: int) -> list[Pair]:
        """Top-k link recommendations for a snapshot (highest score first)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        metric = get_metric(self.metric_name)
        metric.fit(snapshot)
        pairs = candidate_pairs(snapshot, metric.candidate_strategy)
        if self.pair_filter is not None and len(pairs):
            pairs = pairs[np.asarray(self.pair_filter(snapshot, pairs), dtype=bool)]
        if len(pairs) == 0:
            return []
        scores = metric.score(pairs)
        top = top_k_pairs(pairs, scores, k, self.rng)
        return [(int(u), int(v)) for u, v in top]

    def evaluate_sequence(
        self,
        trace: TemporalGraph,
        delta: int,
        start: "int | None" = None,
        max_steps: "int | None" = None,
    ) -> SequenceResult:
        """Run the paper's sequence evaluation over a full trace.

        ``delta`` is the snapshot delta (new edges per snapshot); ``start``
        is the edge count of the first snapshot (defaults to a third of the
        trace so evaluation runs on the mature network, like the paper's
        traces which begin with a substantial existing graph).
        """
        if start is None:
            start = max(delta, trace.num_edges // 3)
        snapshots = snapshot_sequence(trace, delta, start=start)
        result = SequenceResult(method=self.metric_name)
        for i, (prev, _current, truth) in enumerate(prediction_steps(snapshots)):
            if max_steps is not None and i >= max_steps:
                break
            step = evaluate_step(
                self.metric_name,
                prev,
                truth,
                rng=self.rng,
                pair_filter=self.pair_filter,
                step=i,
            )
            result.steps.append(SnapshotResult.from_step(step))
        return result

    def __repr__(self) -> str:
        filtered = ", filtered" if self.pair_filter is not None else ""
        return f"LinkPredictor(metric={self.metric_name!r}{filtered})"


# Convenience re-export so `from repro.core.api import ...` has everything.
__all__ = [
    "LinkPredictor",
    "ClassificationPredictor",
    "ExperimentResult",
    "ExperimentSpec",
    "SequenceResult",
    "SnapshotResult",
    "available_metrics",
    "available_classifiers",
    "run_experiment",
]
