"""repro — reproduction of "Network Growth and Link Prediction Through an
Empirical Lens" (IMC 2016).

The package implements, from scratch, every system the paper's evaluation
depends on:

- a temporal graph substrate with constant-edge-delta snapshot sequencing
  (:mod:`repro.graph`),
- synthetic trace generators standing in for the Facebook / Renren / YouTube
  traces (:mod:`repro.generators`),
- all 14 metric-based link predictors of Table 3 (:mod:`repro.metrics`),
- a small machine-learning library replacing scikit-learn: linear SVM,
  logistic regression, Gaussian naive Bayes, CART trees and random forests
  (:mod:`repro.ml`),
- classification-based link prediction with snowball sampling and
  undersampling (:mod:`repro.classify`),
- temporal activity analysis, the paper's temporal filters, and the
  time-series baseline they are compared against (:mod:`repro.temporal`),
- the sequence-based evaluation framework producing accuracy ratios
  (:mod:`repro.eval`),
- a high-level facade (:mod:`repro.core`).

Quickstart::

    from repro import datasets, LinkPredictor

    trace = datasets.facebook_like(seed=7)
    predictor = LinkPredictor(metric="RA")
    result = predictor.evaluate_sequence(trace, delta=400)
    print(result.summary())
"""

from repro.core.api import (
    LinkPredictor,
    SequenceResult,
    SnapshotResult,
    available_classifiers,
    available_metrics,
)
from repro.generators import presets as datasets
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, snapshot_sequence

__version__ = "1.0.0"

__all__ = [
    "LinkPredictor",
    "SequenceResult",
    "SnapshotResult",
    "Snapshot",
    "TemporalGraph",
    "available_classifiers",
    "available_metrics",
    "datasets",
    "snapshot_sequence",
    "__version__",
]
