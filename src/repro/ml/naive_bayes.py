"""Gaussian naive Bayes."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BinaryClassifier, check_xy


class GaussianNaiveBayes(BinaryClassifier):
    """Per-class independent Gaussians over each feature.

    ``decision_function`` is the positive-vs-negative log-posterior ratio,
    which ranks node pairs for the top-k prediction step.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be non-negative, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self._fitted = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        x, y = check_xy(x, y)
        signs = self._encode_labels(y)
        smoothing = self.var_smoothing * float(x.var(axis=0).max() or 1.0)
        self.theta_ = np.empty((2, x.shape[1]))
        self.var_ = np.empty((2, x.shape[1]))
        self.log_prior_ = np.empty(2)
        for idx, sign in enumerate((-1.0, 1.0)):
            rows = x[signs == sign]
            self.theta_[idx] = rows.mean(axis=0)
            self.var_[idx] = rows.var(axis=0) + smoothing
            self.log_prior_[idx] = np.log(len(rows) / len(x))
        self._fitted = True
        return self

    def _log_likelihood(self, x: np.ndarray, idx: int) -> np.ndarray:
        diff = x - self.theta_[idx]
        return -0.5 * np.sum(
            np.log(2.0 * np.pi * self.var_[idx]) + diff**2 / self.var_[idx], axis=1
        )

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("GaussianNaiveBayes: call fit before decision_function")
        x, _ = check_xy(x)
        pos = self._log_likelihood(x, 1) + self.log_prior_[1]
        neg = self._log_likelihood(x, 0) + self.log_prior_[0]
        return pos - neg

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Posterior probability of the positive class."""
        ratio = self.decision_function(x)
        return 1.0 / (1.0 + np.exp(-np.clip(ratio, -500, 500)))
