"""Classification quality measures."""

from __future__ import annotations

import numpy as np


def _binary_counts(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[int, int, int, int]:
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    return tp, fp, fn, tn


def accuracy_score(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if len(y_true) == 0:
        raise ValueError("accuracy undefined for empty input")
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred) -> float:
    tp, fp, _, _ = _binary_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred) -> float:
    tp, _, fn, _ = _binary_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred) -> float:
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    return 2 * p * r / (p + r) if p + r else 0.0


def roc_auc_score(y_true, scores) -> float:
    """Rank-based AUC (probability a positive outranks a negative).

    Ties get half credit, matching the Mann-Whitney U formulation — and the
    AUC convention of the link prediction survey [28].
    """
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires at least one positive and one negative")
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    pos_rank_sum = float(ranks[y_true].sum())
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
