"""Minimal machine-learning library (the scikit-learn substitute).

The paper's classification-based predictors (Section 5) use four classifiers
from scikit-learn [34]; that library is unavailable offline, so this package
implements the same models from scratch on numpy/scipy:

- :class:`~repro.ml.svm.LinearSVM` — L2-regularised squared-hinge linear SVM
  (the paper's consistently-best classifier; its ``coef_`` drives Fig. 12),
- :class:`~repro.ml.logistic.LogisticRegression`,
- :class:`~repro.ml.naive_bayes.GaussianNaiveBayes`,
- :class:`~repro.ml.tree.DecisionTreeClassifier` — CART, multiclass, with
  rule export for the Section 4.3 analysis,
- :class:`~repro.ml.forest.RandomForestClassifier`,

plus preprocessing (:class:`~repro.ml.preprocessing.StandardScaler`) and
evaluation metrics (accuracy / precision / recall / F1 / ROC AUC).
"""

from repro.ml.boosting import AdaBoostClassifier, GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.kernel_svm import KernelSVM
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import StandardScaler, train_test_split
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

#: classifier registry, keyed by the names used throughout the paper, plus
#: the boosted ensembles used to reproduce its "larger ensembles don't
#: noticeably help" negative result.
CLASSIFIERS = {
    "SVM": LinearSVM,
    "LR": LogisticRegression,
    "NB": GaussianNaiveBayes,
    "RF": RandomForestClassifier,
    "AdaBoost": AdaBoostClassifier,
    "GBT": GradientBoostingClassifier,
}

__all__ = [
    "AdaBoostClassifier",
    "GradientBoostingClassifier",
    "KernelSVM",
    "LinearSVM",
    "LogisticRegression",
    "GaussianNaiveBayes",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "StandardScaler",
    "train_test_split",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "roc_auc_score",
    "CLASSIFIERS",
]
