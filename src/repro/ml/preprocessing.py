"""Feature preprocessing helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class StandardScaler:
    """Zero-mean / unit-variance feature scaling.

    The similarity-metric features span wildly different ranges (PA in the
    thousands, LRW around 1e-4), so the linear classifiers require scaling —
    and Fig. 12's coefficient comparison is only meaningful on standardised
    features.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        # Constant features scale to 1 so they transform to exactly zero.
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler: call fit before transform")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: "int | np.random.Generator | None" = None,
):
    """Shuffle and split ``(x, y)`` into train and test portions."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    rng = ensure_rng(seed)
    order = rng.permutation(len(x))
    cut = int(round(len(x) * (1 - test_fraction)))
    train, test = order[:cut], order[cut:]
    return x[train], x[test], y[train], y[test]
