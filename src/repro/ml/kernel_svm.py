"""Kernel SVM (dual form).

The paper's classifier suite uses "default parameters" of scikit-learn
[34], whose stock ``SVC`` is an RBF-kernel machine; the linear primal SVM
in :mod:`repro.ml.svm` is the variant that scales to the big training
sets, but a kernel machine belongs in the library for the small-instance
regime (and for checking that the linear model isn't leaving accuracy on
the table — it isn't; see the test suite).

Formulation: hinge-loss dual with the bias absorbed into the kernel
(``K' = K + 1``), which removes the equality constraint, solved by
projected gradient ascent over the box ``0 <= alpha_i <= C``:

    max_a  sum a_i - 1/2 sum_ij a_i a_j y_i y_j K'_ij

Suitable for training sets up to a few thousand rows (the Gram matrix is
dense).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BinaryClassifier, check_xy


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """``exp(-gamma * ||x - y||^2)`` for all row pairs of a and b."""
    sq_a = np.sum(a**2, axis=1)[:, None]
    sq_b = np.sum(b**2, axis=1)[None, :]
    distances = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * distances)


def linear_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Plain inner products (gamma unused; kept for a uniform signature)."""
    return a @ b.T


KERNELS = {"rbf": rbf_kernel, "linear": linear_kernel}


class KernelSVM(BinaryClassifier):
    """Dual soft-margin SVM with an RBF (default) or linear kernel.

    Parameters
    ----------
    C:
        Box constraint (soft-margin strength).
    kernel:
        ``"rbf"`` or ``"linear"``.
    gamma:
        RBF width; ``None`` uses the scikit-learn "scale" heuristic
        ``1 / (d * Var(X))``.
    max_iter, tol:
        Projected-gradient budget and convergence threshold on the dual
        variables' movement.
    max_train:
        Guard rail: training sets above this size raise instead of
        silently building a huge Gram matrix (use the linear SVM there).
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: "float | None" = None,
        max_iter: int = 2000,
        tol: float = 1e-7,
        max_train: int = 6000,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {sorted(KERNELS)}, got {kernel!r}")
        if gamma is not None and gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self.max_train = max_train
        self.alpha_: np.ndarray | None = None

    def _gamma_value(self, x: np.ndarray) -> float:
        if self.gamma is not None:
            return self.gamma
        variance = float(x.var())
        return 1.0 / (x.shape[1] * variance) if variance > 0 else 1.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelSVM":
        x, y = check_xy(x, y)
        if len(x) > self.max_train:
            raise ValueError(
                f"training set of {len(x)} rows exceeds max_train="
                f"{self.max_train}; use LinearSVM for large sets"
            )
        signs = self._encode_labels(y)
        self._x = x
        self._signs = signs
        self._gamma = self._gamma_value(x)
        gram = KERNELS[self.kernel](x, x, self._gamma) + 1.0  # +1 absorbs bias
        q = gram * np.outer(signs, signs)
        n = len(x)
        alpha = np.zeros(n)
        # Lipschitz constant of the gradient is ||Q||_2 (the top eigenvalue,
        # O(n) for Gram matrices); a few power iterations estimate it.
        vec = np.ones(n) / np.sqrt(n)
        for _ in range(20):
            nxt = q @ vec
            norm = np.linalg.norm(nxt)
            if norm == 0:
                break
            vec = nxt / norm
        lipschitz = float(vec @ (q @ vec))
        step = 1.0 / max(lipschitz, q.diagonal().max(), 1e-12)
        for _ in range(self.max_iter):
            gradient = 1.0 - q @ alpha
            updated = np.clip(alpha + step * gradient, 0.0, self.C)
            if np.max(np.abs(updated - alpha)) < self.tol:
                alpha = updated
                break
            alpha = updated
        self.alpha_ = alpha
        return self

    @property
    def support_(self) -> np.ndarray:
        """Indices of the support vectors (alpha > 0)."""
        if self.alpha_ is None:
            raise RuntimeError("KernelSVM: call fit first")
        return np.flatnonzero(self.alpha_ > 1e-10)

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.alpha_ is None:
            raise RuntimeError("KernelSVM: call fit before decision_function")
        x, _ = check_xy(x)
        support = self.support_
        if len(support) == 0:
            return np.zeros(len(x))
        kernel = KERNELS[self.kernel](
            x, self._x[support], self._gamma
        ) + 1.0
        return kernel @ (self.alpha_[support] * self._signs[support])
