"""Logistic regression trained with L-BFGS on the regularised log-loss."""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import expit, log1p

from repro.ml.base import BinaryClassifier, check_xy


def _log1pexp(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(z))``."""
    out = np.empty_like(z)
    small = z <= 30
    out[small] = log1p(np.exp(z[small]))
    out[~small] = z[~small]
    return out


class LogisticRegression(BinaryClassifier):
    """L2-regularised logistic regression.

    ``C`` follows the scikit-learn convention (inverse regularisation).
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x, y = check_xy(x, y)
        signs = self._encode_labels(y)
        n, d = x.shape
        lam = 1.0 / (self.C * n)

        def objective(params: np.ndarray):
            w, b = params[:d], params[d]
            z = signs * (x @ w + b)
            loss = np.mean(_log1pexp(-z)) + 0.5 * lam * (w @ w)
            # d/dz log(1+e^-z) = -sigmoid(-z)
            coeff = -signs * expit(-z) / n
            grad_w = x.T @ coeff + lam * w
            grad_b = float(np.sum(coeff))
            return loss, np.concatenate([grad_w, [grad_b]])

        result = minimize(
            objective,
            np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression: call fit before decision_function")
        x, _ = check_xy(x)
        return x @ self.coef_ + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class (``classes_[1]``)."""
        return expit(self.decision_function(x))
