"""CART decision trees (classification).

Used in two places:

- Section 4.3 trains a *multi-class* tree mapping network-structure features
  to the best metric-based algorithm (Fig. 6), plus per-algorithm binary
  trees ("when is this algorithm within 90% of optimal?") — both need
  human-readable rule export, provided by :meth:`DecisionTreeClassifier.export_text`;
- :mod:`repro.ml.forest` builds its random forest from these trees.

Splits maximise Gini impurity decrease, evaluated for every threshold of
every (optionally subsampled) feature with vectorised prefix sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import check_xy
from repro.utils.rng import ensure_rng


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None
    counts: np.ndarray | None = None  # class counts of training rows here

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _gini_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """CART classifier supporting any number of classes.

    Parameters mirror the scikit-learn names: ``max_depth``,
    ``min_samples_split``, ``min_samples_leaf``, ``max_features`` (``None``,
    ``"sqrt"`` or an int — the latter two are what the random forest uses).
    """

    def __init__(
        self,
        max_depth: "int | None" = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = ensure_rng(seed)
        self.root_: _Node | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _feature_count(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, self.n_features_))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x, y = check_xy(x, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = x.shape[1]
        self._importance = np.zeros(self.n_features_)
        self.root_ = self._build(x, encoded, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance
        )
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=len(self.classes_))
        node = _Node(counts=counts)
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or counts.max() == len(y)  # pure node
        ):
            return node
        split = self._best_split(x, y, counts)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        self._importance[feature] += gain * len(y)
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x, y, counts):
        """Best (feature, threshold, gini gain) or None if no valid split."""
        n = len(y)
        parent_gini = _gini_from_counts(counts)
        k = len(self.classes_)
        features = np.arange(self.n_features_)
        m = self._feature_count()
        if m < self.n_features_:
            features = self.rng.choice(features, size=m, replace=False)
        best = None
        best_gain = 1e-12  # require a strictly positive gain
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            values = x[order, f]
            labels = y[order]
            # Prefix class counts after each row: shape (n, k).
            onehot = np.zeros((n, k))
            onehot[np.arange(n), labels] = 1.0
            prefix = np.cumsum(onehot, axis=0)
            # Candidate split after row i (0-based): left = rows [0..i].
            left_n = np.arange(1, n)
            valid = values[:-1] < values[1:]  # only between distinct values
            valid &= (left_n >= self.min_samples_leaf) & (
                n - left_n >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            left_counts = prefix[:-1]
            right_counts = counts - left_counts
            left_tot = left_n[:, None]
            right_tot = n - left_tot
            gini_left = 1.0 - np.sum((left_counts / left_tot) ** 2, axis=1)
            gini_right = 1.0 - np.sum((right_counts / right_tot) ** 2, axis=1)
            weighted = (left_n * gini_left + (n - left_n) * gini_right) / n
            gain = parent_gini - weighted
            gain[~valid] = -np.inf
            i = int(np.argmax(gain))
            if gain[i] > best_gain:
                best_gain = float(gain[i])
                threshold = float((values[i] + values[i + 1]) / 2.0)
                best = (int(f), threshold, best_gain)
        return best

    # ------------------------------------------------------------------
    def _leaf_counts(self, x: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("DecisionTreeClassifier: call fit before predict")
        out = np.empty((len(x), len(self.classes_)))
        for i, row in enumerate(x):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.counts
        return out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x, _ = check_xy(x)
        counts = self._leaf_counts(x)
        totals = counts.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return counts / totals

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Probability of the last class (binary convention).

        Trees produce coarse scores (the paper rejects them for exactly
        this lack of granularity) but the method keeps the interface
        uniform with the other classifiers.
        """
        if len(self.classes_) != 2:
            raise RuntimeError("decision_function requires a binary tree")
        return self.predict_proba(x)[:, 1]

    # ------------------------------------------------------------------
    def export_text(
        self,
        feature_names: "list[str] | None" = None,
        class_names: "list[str] | None" = None,
    ) -> str:
        """Readable if/else rendering of the learned rules (Fig. 6)."""
        if self.root_ is None:
            raise RuntimeError("DecisionTreeClassifier: call fit before export_text")

        def name(f: int) -> str:
            return feature_names[f] if feature_names else f"feature[{f}]"

        def label(counts: np.ndarray) -> str:
            cls = self.classes_[int(np.argmax(counts))]
            if class_names is not None:
                return str(class_names[int(np.argmax(counts))])
            return str(cls)

        lines: list[str] = []

        def walk(node: _Node, indent: str) -> None:
            if node.is_leaf:
                lines.append(f"{indent}=> {label(node.counts)} (n={int(node.counts.sum())})")
                return
            lines.append(f"{indent}if {name(node.feature)} <= {node.threshold:.3f}:")
            walk(node.left, indent + "  ")
            lines.append(f"{indent}else:  # {name(node.feature)} > {node.threshold:.3f}")
            walk(node.right, indent + "  ")

        walk(self.root_, "")
        return "\n".join(lines)

    def depth(self) -> int:
        """Height of the fitted tree (0 for a stump)."""
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self.root_ is None:
            raise RuntimeError("DecisionTreeClassifier: call fit before depth")
        return walk(self.root_)
