"""Linear support vector machine.

L2-regularised squared-hinge SVM trained with L-BFGS on the primal:

    min_w,b  0.5 ||w||^2 + C * sum_i max(0, 1 - y_i (x_i w + b))^2

The squared hinge is smooth, so quasi-Newton optimisation converges in a
handful of iterations even on the strongly imbalanced training sets of
Section 5.2 (the same formulation as liblinear's ``L2R_L2LOSS_SVC``, the
scikit-learn ``LinearSVC`` default the paper used).

``coef_`` exposes the learned weight per feature; Section 5.3 compares the
normalised absolute coefficients against the similarity-metric ranking
(Fig. 12).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import BinaryClassifier, check_xy


class LinearSVM(BinaryClassifier):
    """Primal linear SVM with squared-hinge loss.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = fit training data harder).
    class_weight:
        ``None`` or ``"balanced"``.  Balanced weighting scales each class's
        loss inversely to its frequency; useful at extreme undersampling
        ratios where even the undersampled negatives dominate.
    max_iter:
        L-BFGS iteration budget.
    """

    def __init__(
        self,
        C: float = 1.0,
        class_weight: "str | None" = None,
        max_iter: int = 200,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        self.C = C
        self.class_weight = class_weight
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x, y = check_xy(x, y)
        signs = self._encode_labels(y)
        n, d = x.shape
        sample_weight = np.ones(n)
        if self.class_weight == "balanced":
            pos = signs > 0
            n_pos, n_neg = int(pos.sum()), int((~pos).sum())
            if n_pos and n_neg:
                sample_weight[pos] = n / (2.0 * n_pos)
                sample_weight[~pos] = n / (2.0 * n_neg)

        def objective(params: np.ndarray):
            w, b = params[:d], params[d]
            margins = 1.0 - signs * (x @ w + b)
            active = margins > 0
            slack = np.where(active, margins, 0.0)
            loss = 0.5 * w @ w + self.C * np.sum(sample_weight * slack**2)
            # Gradient of the squared hinge: -2 C y x slack on active rows.
            coeff = -2.0 * self.C * sample_weight * signs * slack
            grad_w = w + x.T @ coeff
            grad_b = float(np.sum(coeff))
            return loss, np.concatenate([grad_w, [grad_b]])

        start = np.zeros(d + 1)
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearSVM: call fit before decision_function")
        x, _ = check_xy(x)
        return x @ self.coef_ + self.intercept_

    def normalized_coefficients(self) -> np.ndarray:
        """Per-feature |coef| normalised to sum to 1 (Fig. 12's quantity)."""
        if self.coef_ is None:
            raise RuntimeError("LinearSVM: call fit first")
        magnitude = np.abs(self.coef_)
        total = magnitude.sum()
        if total == 0:
            return np.full_like(magnitude, 1.0 / len(magnitude))
        return magnitude / total
