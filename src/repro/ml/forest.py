"""Random forest built on :mod:`repro.ml.tree`.

Bootstrap-sampled CART trees with sqrt-feature subsampling, probability
averaging across trees.  The paper finds random forests consistently weak
for link prediction (Fig. 9); having the real model lets the benches show
that, not assume it.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_xy
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng, spawn_rngs


class RandomForestClassifier:
    """Bagged CART ensemble."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: "int | None" = 12,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = "sqrt",
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x, y = check_xy(x, y)
        self.classes_ = np.unique(y)
        rng = ensure_rng(self.seed)
        tree_rngs = spawn_rngs(rng, self.n_estimators)
        self.trees_ = []
        n = len(x)
        for tree_rng in tree_rngs:
            rows = tree_rng.integers(0, n, size=n)  # bootstrap sample
            # Guarantee both classes appear so every tree is trainable.
            if len(np.unique(y[rows])) < len(self.classes_):
                for cls in self.classes_:
                    if cls not in y[rows]:
                        idx = np.flatnonzero(y == cls)
                        rows[int(tree_rng.integers(0, n))] = idx[
                            int(tree_rng.integers(0, len(idx)))
                        ]
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=tree_rng,
            )
            tree.fit(x[rows], y[rows])
            self.trees_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier: call fit before predict")
        x, _ = check_xy(x)
        # Trees may see different class subsets in bootstraps; align columns
        # by the forest-level class list.
        out = np.zeros((len(x), len(self.classes_)))
        for tree in self.trees_:
            proba = tree.predict_proba(x)
            cols = np.searchsorted(self.classes_, tree.classes_)
            out[:, cols] += proba
        return out / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Mean positive-class probability (binary convention)."""
        if len(self.classes_) != 2:
            raise RuntimeError("decision_function requires binary labels")
        return self.predict_proba(x)[:, 1]

    @property
    def feature_importances_(self) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier: call fit first")
        return np.mean([t.feature_importances_ for t in self.trees_], axis=0)
